//! Urban-sensing scenario (the paper's §I intelligent-transportation use
//! case): commuters report road closures. Two corridors are physically
//! coupled — when the bridge closes, its detour saturates — so this
//! example exercises the §VII-1 extension end to end: a trace with
//! correlated claim pairs, independent SSTD decoding, and the
//! dependency-smoothing pass, plus the trained naive-Bayes hedge
//! classifier from §VII-2 scoring a few raw commuter posts.
//!
//! Run with: `cargo run --example transit_monitor`

use sstd::core::{smooth_dependencies, ClaimDependency, SstdConfig, SstdEngine};
use sstd::data::{Scenario, TraceBuilder};
use sstd::eval::metrics::score_estimates;
use sstd::text::{NaiveBayesUncertaintyScorer, UncertaintyScorer};
use sstd::types::ClaimId;

fn main() {
    // A synthetic commuter-report trace where claims 2k and 2k+1 share
    // ground truth (closure ↔ detour congestion), for 12 pairs.
    let mut builder = TraceBuilder::scenario(Scenario::Synthetic).scale(0.004).seed(21);
    {
        let cfg = builder.config_mut();
        cfg.name = "transit-monitor".into();
        cfg.correlated_claim_pairs = 12;
        cfg.truth_flip_prob = 0.06; // closures open and close
    }
    let trace = builder.build();
    println!("{}\n", trace.stats());

    // Decode each corridor independently, then reconcile coupled pairs.
    let engine = SstdEngine::new(SstdConfig::default());
    let independent = engine.run(&trace);
    let deps: Vec<ClaimDependency> = (0..12u32)
        .map(|k| ClaimDependency::positive(ClaimId::new(2 * k), ClaimId::new(2 * k + 1)))
        .collect();
    let reconciled = smooth_dependencies(&independent, &deps);

    let before = score_estimates(trace.ground_truth(), &independent);
    let after = score_estimates(trace.ground_truth(), &reconciled);
    println!("independent decoding : {before}");
    println!("with coupling        : {after}");

    // The §VII-2 classifier scores commuter language.
    let scorer = NaiveBayesUncertaintyScorer::with_builtin_corpus();
    println!("\nhedge classifier on raw commuter posts:");
    for post in [
        "the bridge is closed both directions",
        "maybe the bridge is closed, heard it from a friend",
        "reportedly big backups on the detour route",
        "detour moving fine now, cleared in ten minutes",
    ] {
        println!("  kappa = {:.2}  {post:?}", scorer.uncertainty(post).value());
    }
}
