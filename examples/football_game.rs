//! Live-game scenario: score-change claims flip frequently and traffic
//! spikes on touchdowns. Streams the trace through the online SSTD engine
//! in arrival order and prints truth decisions as intervals close — the
//! paper's streaming use case.
//!
//! Run with: `cargo run --example football_game`

use sstd::core::{SstdConfig, StreamingSstd};
use sstd::data::{Scenario, TraceBuilder};
use sstd::eval::metrics::score_estimates;
use sstd::types::ClaimId;

fn main() {
    let trace = TraceBuilder::scenario(Scenario::CollegeFootball).scale(0.01).seed(3).build();
    println!("{}\n", trace.stats());

    // Follow the most-reported claim live.
    let mut counts = vec![0usize; trace.num_claims()];
    for r in trace.reports() {
        counts[r.claim().index()] += 1;
    }
    let hot = ClaimId::new(
        counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(i, _)| i as u32).unwrap_or(0),
    );
    println!("following the hottest claim {hot} ({} reports)\n", counts[hot.index()]);

    let mut engine = StreamingSstd::new(SstdConfig::default(), trace.timeline().clone());
    let mut last_shown = None;
    for report in trace.reports() {
        engine.push(report);
        let decision = engine.latest_decision(hot);
        if decision != last_shown {
            if let Some(d) = decision {
                println!(
                    "interval {:>3} closed → {hot} decided {d} ({} reports seen)",
                    engine.current_interval().saturating_sub(1),
                    engine.reports_seen(),
                );
            }
            last_shown = decision;
        }
    }

    let estimates = engine.finish();
    let m = score_estimates(trace.ground_truth(), &estimates);
    println!("\nstreaming SSTD effectiveness over the whole game: {m}");
}
