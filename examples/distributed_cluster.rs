//! Distributed execution demo: the interval workloads of a bursty trace
//! run as TD jobs on the simulated HTCondor cluster, with and without the
//! PID-controlled Dynamic Task Manager — the paper's §IV machinery.
//!
//! Run with: `cargo run --example distributed_cluster`

use sstd::control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd::data::{Scenario, TraceBuilder};
use sstd::runtime::{Cluster, ExecutionModel, JobId};

fn main() {
    let trace = TraceBuilder::scenario(Scenario::CollegeFootball).scale(0.02).seed(9).build();
    println!("{}\n", trace.stats());

    // One TD job per evaluation interval; data size = tweet volume.
    let deadline = 3.0; // seconds per interval
    let jobs: Vec<DtmJob> = (0..trace.timeline().num_intervals())
        .map(|iv| {
            let volume = trace.reports_in_interval(iv).len() as f64;
            DtmJob::new(JobId::new(iv as u32), volume.max(1.0), deadline, 4)
        })
        .collect();
    let volumes: Vec<f64> = jobs.iter().map(|j| j.data_size).collect();
    let max = volumes.iter().copied().fold(0.0f64, f64::max);
    let mean = volumes.iter().sum::<f64>() / volumes.len() as f64;
    println!("interval volumes: mean {mean:.0} tweets, burst max {max:.0} tweets");

    // Per-tweet cost representative of a TD task.
    let model = ExecutionModel::new(0.05, 0.002, 0.0024);
    let cluster = Cluster::notre_dame_like(32);

    for (label, control) in [("PID-controlled DTM", true), ("static allocation", false)] {
        let config = DtmConfig::builder()
            .control_enabled(control)
            .initial_workers(4)
            .max_workers(32)
            .build()
            .expect("valid DTM configuration");
        let mut dtm = DynamicTaskManager::new(config, cluster.clone(), model);
        let outcome = dtm.run(&jobs).expect("validated above");
        println!(
            "{label:<20} job deadline hit rate {:>5.1}%  final workers {}",
            outcome.job_hit_rate() * 100.0,
            outcome.final_workers
        );
    }
    println!("\nThe controller grows the worker pool through traffic bursts and");
    println!("raises the priority of lagging intervals, rescuing deadlines the");
    println!("static allocation misses.");
}
