//! Breaking-news scenario: a Boston-Bombing-like emergency with a
//! misinformation cohort and heavy retweet cascades. Compares SSTD against
//! majority voting and the strongest baseline (DynaTD) — the motivating
//! comparison of the paper's introduction.
//!
//! Run with: `cargo run --example breaking_news`

use sstd::data::{Scenario, TraceBuilder};
use sstd::eval::metrics::score_estimates;
use sstd::eval::{run_scheme, SchemeKind};

fn main() {
    // An emergency trace with extra misinformation: drop honest sources
    // to 65% and push the retweet cascade probability up.
    let mut builder = TraceBuilder::scenario(Scenario::BostonBombing).scale(0.01).seed(7);
    {
        let cfg = builder.config_mut();
        cfg.honest_fraction = 0.65;
        cfg.retweet_prob = 0.55;
    }
    let trace = builder.build();
    println!("{}\n", trace.stats());

    println!("scheme        accuracy  precision  recall   f1");
    let mut results: Vec<(SchemeKind, f64)> = Vec::new();
    for scheme in [
        SchemeKind::Sstd,
        SchemeKind::DynaTd,
        SchemeKind::Rtd,
        SchemeKind::MajorityVote,
        SchemeKind::WeightedVote,
    ] {
        let m = score_estimates(trace.ground_truth(), &run_scheme(scheme, &trace));
        println!(
            "{:<13} {:>7.3} {:>9.3} {:>7.3} {:>6.3}",
            scheme.name(),
            m.accuracy(),
            m.precision(),
            m.recall(),
            m.f1()
        );
        results.push((scheme, m.accuracy()));
    }

    let sstd = results[0].1;
    let best_other = results[1..].iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
    println!("\nSSTD vs best alternative: {:+.1}% accuracy", (sstd - best_other) * 100.0);
}
