//! Quickstart: generate a synthetic social-sensing trace and decode the
//! evolving truth of every claim with SSTD.
//!
//! Run with: `cargo run --example quickstart`

use sstd::core::{SstdConfig, SstdEngine};
use sstd::data::{Scenario, TraceBuilder};
use sstd::eval::metrics::score_estimates;
use sstd::types::ClaimId;

fn main() {
    // 1. A small Paris-Shooting-like trace (1% of the paper's volume).
    let trace = TraceBuilder::scenario(Scenario::ParisShooting).scale(0.01).seed(42).build();
    println!("{}", trace.stats());

    // 2. Run the SSTD engine: per-claim ACS aggregation + HMM decoding.
    let engine = SstdEngine::new(SstdConfig::default());
    let estimates = engine.run(&trace);

    // 3. Score against the generated ground truth.
    let matrix = score_estimates(trace.ground_truth(), &estimates);
    println!("SSTD effectiveness: {matrix}");

    // 4. Inspect one dynamic claim: decoded vs. true timeline.
    let claim = (0..trace.num_claims())
        .map(|i| ClaimId::new(i as u32))
        .max_by_key(|&c| {
            trace
                .ground_truth()
                .timeline(c)
                .map(|tl| tl.windows(2).filter(|w| w[0] != w[1]).count())
                .unwrap_or(0)
        })
        .expect("trace has claims");
    let truth = trace.ground_truth().timeline(claim).expect("labeled");
    let decoded = estimates.labels(claim).expect("estimated");
    let render = |labels: &[sstd::types::TruthLabel]| -> String {
        labels.iter().map(|l| if l.as_bool() { 'T' } else { 'f' }).collect()
    };
    println!("\nmost dynamic claim: {claim}");
    println!("truth  : {}", render(truth));
    println!("decoded: {}", render(decoded));
    let correct = truth.iter().zip(decoded).filter(|(a, b)| a == b).count();
    println!("agreement: {correct}/{} intervals", truth.len());
}
