//! Preprocessing demo: tweet-shaped raw posts go through the full text
//! pipeline — keyword filter, online claim clustering, attitude /
//! uncertainty / independence scoring — producing the scored reports the
//! truth-discovery layer consumes (paper §V-A2).
//!
//! Run with: `cargo run --example text_pipeline`

use sstd::data::{synthesize_posts, Scenario};
use sstd::text::{PipelineConfig, ReportPipeline};
use sstd::types::Attitude;

fn main() {
    let scenario = Scenario::BostonBombing;
    let posts = synthesize_posts(scenario, 2_000, 5, 24 * 3600, 11);
    println!("synthesized {} raw posts about {} topics\n", posts.len(), 5);

    for p in posts.iter().take(5) {
        println!("  [{}] {}", p.time(), p.text());
    }
    println!("  ...\n");

    let mut pipeline = ReportPipeline::new(PipelineConfig::for_event(scenario.keywords()));
    let mut agrees = 0u64;
    let mut disagrees = 0u64;
    let mut hedged = 0u64;
    let mut copies = 0u64;
    for post in &posts {
        if let Some(report) = pipeline.process(post) {
            match report.attitude() {
                Attitude::Agree => agrees += 1,
                Attitude::Disagree => disagrees += 1,
                Attitude::Silent => {}
            }
            if report.uncertainty().value() > 0.0 {
                hedged += 1;
            }
            if report.independence().value() < 0.5 {
                copies += 1;
            }
        }
    }

    let (processed, dropped) = pipeline.counters();
    println!("pipeline results:");
    println!("  reports produced : {processed}");
    println!("  posts filtered   : {dropped}");
    println!("  claims discovered: {}", pipeline.num_claims());
    println!("  agree / disagree : {agrees} / {disagrees}");
    println!("  hedged reports   : {hedged}");
    println!("  detected copies  : {copies}");
}
