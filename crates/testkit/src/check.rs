//! The property runner: seeded case generation, greedy shrinking, and
//! one-line reproduction of any failure.
//!
//! [`check`] draws `cases` values from a [`Gen`], runs the property on
//! each, and on the first failure shrinks the case greedily before
//! panicking with the failing seed and the minimized value. Every case
//! gets its own derived seed, so pasting the printed
//! `TESTKIT_SEED=… TESTKIT_CASES=1` line into the environment replays
//! exactly the failing draw.
//!
//! Environment knobs (read by [`CheckConfig::from_env`]):
//!
//! - `TESTKIT_CASES` — overrides the number of cases (CI runs an
//!   extended-iteration pass on main with this).
//! - `TESTKIT_SEED` — overrides the root seed.
//! - `TESTKIT_ARTIFACT_DIR` — when set, failing counterexamples are also
//!   written to `<dir>/<property>.counterexample.txt` so CI can upload
//!   them as artifacts.

use crate::gen::Gen;
use crate::rng::TestRng;
use std::fmt;

/// Root seed used when `TESTKIT_SEED` is not set: the paper's year.
pub const DEFAULT_SEED: u64 = 2017;

/// How a property run is sized and seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Root seed; case `i` draws from `TestRng::new(seed + i)`.
    pub seed: u64,
    /// Cap on accepted shrink steps (well-founded shrinkers finish far
    /// earlier; this bounds a buggy one).
    pub max_shrink_steps: usize,
    /// Cap on total property evaluations spent shrinking.
    pub max_shrink_evals: usize,
}

impl CheckConfig {
    /// A fixed-seed configuration with `cases` cases.
    #[must_use]
    pub fn new(cases: usize) -> Self {
        Self { cases, seed: DEFAULT_SEED, max_shrink_steps: 500, max_shrink_evals: 20_000 }
    }

    /// Like [`new`](Self::new) but honoring the `TESTKIT_CASES` and
    /// `TESTKIT_SEED` environment overrides.
    #[must_use]
    pub fn from_env(default_cases: usize) -> Self {
        let mut cfg = Self::new(default_cases);
        if let Some(cases) = env_parse("TESTKIT_CASES") {
            cfg.cases = cases;
        }
        if let Some(seed) = env_parse("TESTKIT_SEED") {
            cfg.seed = seed;
        }
        cfg
    }

    /// Replaces the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|v| v.parse().ok())
}

/// A failing case, minimized: everything needed to reproduce and debug
/// a property violation.
#[derive(Debug, Clone)]
pub struct CounterExample<T> {
    /// Root seed of the run.
    pub seed: u64,
    /// Index of the failing case within the run.
    pub case_index: usize,
    /// The derived seed that regenerates exactly this case
    /// (`TESTKIT_SEED=case_seed TESTKIT_CASES=1`).
    pub case_seed: u64,
    /// The value as originally drawn.
    pub original: T,
    /// The value after greedy shrinking (equal to `original` when no
    /// simpler value still fails).
    pub minimized: T,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// The property's failure message for the minimized value.
    pub message: String,
}

impl<T: fmt::Debug> CounterExample<T> {
    /// The full human-readable failure report.
    #[must_use]
    pub fn report(&self, property: &str) -> String {
        format!(
            "property '{property}' failed (case {idx}, root seed {seed})\n\
             reproduce: TESTKIT_SEED={case_seed} TESTKIT_CASES=1\n\
             error: {msg}\n\
             minimized after {steps} shrink step(s): {min:?}\n\
             originally drawn as: {orig:?}",
            idx = self.case_index,
            seed = self.seed,
            case_seed = self.case_seed,
            msg = self.message,
            steps = self.shrink_steps,
            min = self.minimized,
            orig = self.original,
        )
    }
}

/// Runs `prop` on `cfg.cases` draws from `gen`; returns the number of
/// passing cases, or the first failure minimized by greedy shrinking.
///
/// # Errors
///
/// The [`CounterExample`] for the first failing case.
pub fn check_with<T: Clone + fmt::Debug + 'static>(
    cfg: CheckConfig,
    gen: &Gen<T>,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) -> Result<usize, Box<CounterExample<T>>> {
    for case_index in 0..cfg.cases {
        let case_seed = cfg.seed.wrapping_add(case_index as u64);
        let mut rng = TestRng::new(case_seed);
        let original = gen.generate(&mut rng);
        if let Err(first_message) = prop(&original) {
            let mut minimized = original.clone();
            let mut message = first_message;
            let mut shrink_steps = 0usize;
            let mut evals = 0usize;
            'shrinking: while shrink_steps < cfg.max_shrink_steps {
                for candidate in gen.shrink(&minimized) {
                    evals += 1;
                    if evals > cfg.max_shrink_evals {
                        break 'shrinking;
                    }
                    if let Err(m) = prop(&candidate) {
                        minimized = candidate;
                        message = m;
                        shrink_steps += 1;
                        continue 'shrinking;
                    }
                }
                break;
            }
            return Err(Box::new(CounterExample {
                seed: cfg.seed,
                case_index,
                case_seed,
                original,
                minimized,
                shrink_steps,
                message,
            }));
        }
    }
    Ok(cfg.cases)
}

/// Runs a named property with [`CheckConfig::from_env`] sizing and panics
/// with a reproduction report (also written to `TESTKIT_ARTIFACT_DIR`
/// when set) on the first minimized failure.
///
/// # Panics
///
/// Panics with the counterexample report if the property fails.
pub fn check<T: Clone + fmt::Debug + 'static>(
    property: &str,
    default_cases: usize,
    gen: &Gen<T>,
    prop: impl FnMut(&T) -> Result<(), String>,
) {
    let cfg = CheckConfig::from_env(default_cases);
    if let Err(cex) = check_with(cfg, gen, prop) {
        let report = cex.report(property);
        write_artifact(property, &report);
        panic!("{report}");
    }
}

fn write_artifact(property: &str, report: &str) {
    let Ok(dir) = std::env::var("TESTKIT_ARTIFACT_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let sanitized: String =
        property.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
    let path = std::path::Path::new(&dir).join(format!("{sanitized}.counterexample.txt"));
    let _ = std::fs::write(path, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gens;

    #[test]
    fn passing_property_reports_case_count() {
        let g = gens::usize_in(0, 100);
        let n = check_with(CheckConfig::new(250), &g, |_| Ok(())).expect("passes");
        assert_eq!(n, 250);
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary() {
        // Fails for any value >= 10: greedy shrinking must land on 10.
        let g = gens::usize_in(0, 1_000);
        let cex = check_with(CheckConfig::new(500), &g, |&v| {
            if v >= 10 {
                Err(format!("{v} is too big"))
            } else {
                Ok(())
            }
        })
        .expect_err("most draws exceed 10");
        assert_eq!(cex.minimized, 10, "greedy shrink finds the exact boundary");
        assert!(cex.message.contains("too big"));
    }

    #[test]
    fn case_seed_replays_the_same_draw() {
        let g = gens::vec_of(gens::f64_in(-1.0, 1.0), 0, 12);
        let cex = check_with(CheckConfig::new(100), &g, |v: &Vec<f64>| {
            if v.len() >= 3 {
                Err("long".into())
            } else {
                Ok(())
            }
        })
        .expect_err("long vectors appear quickly");
        // Re-run with the printed one-liner: seed = case_seed, one case.
        let replay =
            check_with(CheckConfig::new(1).with_seed(cex.case_seed), &g, |v: &Vec<f64>| {
                if v.len() >= 3 {
                    Err("long".into())
                } else {
                    Ok(())
                }
            })
            .expect_err("replay fails identically");
        assert_eq!(replay.original, cex.original, "one line reproduces the exact case");
    }

    #[test]
    fn shrinking_respects_the_step_cap() {
        let g = gens::usize_in(0, usize::MAX / 2);
        let mut cfg = CheckConfig::new(10);
        cfg.max_shrink_steps = 3;
        let cex = check_with(cfg, &g, |&v| if v > 0 { Err("nonzero".into()) } else { Ok(()) })
            .expect_err("fails");
        assert!(cex.shrink_steps <= 3);
    }

    #[test]
    fn report_contains_the_reproduction_line() {
        let g = gens::usize_in(0, 9);
        let cex = check_with(CheckConfig::new(5), &g, |_| Err("always".into())).expect_err("fails");
        let report = cex.report("demo");
        assert!(report.contains("TESTKIT_SEED="));
        assert!(report.contains("TESTKIT_CASES=1"));
        assert!(report.contains("always"));
    }
}
