//! Adversarial truth-discovery scenarios with planted ground truth —
//! the workload family behind the `sstd-eval` tournament (ROADMAP
//! item 4).
//!
//! "Truth Discovery Algorithms: An Experimental Evaluation" shows that
//! algorithm rankings invert across source-coverage skew and conflict
//! ratio, and Yang et al. (social-network Bayesian truth discovery)
//! identify correlated communities — sources copying one another — as
//! the regime where independence-assuming models crack. Each
//! [`Family`] here is one of those axes, parameterized by a single
//! adversity `level` in `[0, 1]`:
//!
//! | Family | `level` controls |
//! |---|---|
//! | [`Family::CoverageSkew`] | Zipf exponent of the source-coverage distribution, plus how noisy the dominant source is |
//! | [`Family::ConflictRatio`] | probability that a report contradicts the planted truth |
//! | [`Family::LongTail`] | share of evidence coming from rarely-seen, unreliable tail sources |
//! | [`Family::Collusion`] | size of a copy community that replicates a misinformation template |
//! | [`Family::TruthDrift`] | per-interval probability that a claim's planted truth flips |
//!
//! A [`ScenarioSpec`] builds deterministically (same spec → same
//! [`Scenario`], bit for bit), so the same code serves both the
//! property harness ([`scenario`]/[`any_scenario`] with spec-level
//! shrinking) and the tournament grid, which pins one spec per cell.

use crate::gen::Gen;
use crate::rng::TestRng;
use sstd_types::{
    ClaimId, GroundTruth, Independence, Report, SourceId, Timeline, Timestamp, Trace, TruthLabel,
    Uncertainty,
};

use super::TraceCase;

/// One adversarial axis of the tournament grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Zipf-skewed source coverage with an increasingly noisy head
    /// source — per-source weighting schemes overfit the firehose.
    CoverageSkew,
    /// Reports contradict the planted truth with growing probability.
    ConflictRatio,
    /// Most evidence comes from sources seen once or twice, whose
    /// reliability cannot be point-estimated.
    LongTail,
    /// A misinformation template plus a community of copiers that
    /// replicate its reports (Yang et al.'s correlated communities).
    Collusion,
    /// The planted truth flips between intervals at a growing rate.
    TruthDrift,
}

impl Family {
    /// All five families, in grid order.
    pub const ALL: [Family; 5] = [
        Family::CoverageSkew,
        Family::ConflictRatio,
        Family::LongTail,
        Family::Collusion,
        Family::TruthDrift,
    ];

    /// Stable snake_case name (used as trace name and in
    /// `leaderboard.json`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::CoverageSkew => "coverage_skew",
            Family::ConflictRatio => "conflict_ratio",
            Family::LongTail => "long_tail",
            Family::Collusion => "collusion",
            Family::TruthDrift => "truth_drift",
        }
    }

    /// Position within [`Family::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Family::ALL.iter().position(|f| *f == self).expect("family is in ALL")
    }
}

/// Dishonesty rate of ordinary sources on every family at level 0 —
/// the "paper-like" noise floor.
const BASE_DISHONESTY: f64 = 0.1;

/// A deterministic recipe for one scenario: family, adversity level,
/// seed, and population sizes. `build()` is a pure function of this
/// struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// The adversarial axis.
    pub family: Family,
    /// Adversity level in `[0, 1]`; 0 is the benign end of the axis.
    pub level: f64,
    /// Seed for the deterministic build.
    pub seed: u64,
    /// Claim population (≥ 1).
    pub num_claims: usize,
    /// Source population (≥ 2).
    pub num_sources: usize,
    /// Timeline intervals (≥ 2).
    pub num_intervals: usize,
    /// Ordinary (non-collusion) reports generated per claim and
    /// interval (≥ 1).
    pub reports_per_cell: usize,
}

impl ScenarioSpec {
    /// Probability that an ordinary source contradicts the planted
    /// truth (before per-source overrides).
    #[must_use]
    pub fn dishonesty(&self) -> f64 {
        match self.family {
            Family::ConflictRatio => BASE_DISHONESTY + 0.4 * self.level,
            _ => BASE_DISHONESTY,
        }
    }

    /// Per-interval probability that a claim's planted truth flips.
    /// Directly proportional to `level` for [`Family::TruthDrift`], so
    /// shrinking the level shrinks the drift toward zero.
    #[must_use]
    pub fn drift(&self) -> f64 {
        match self.family {
            Family::TruthDrift => 0.45 * self.level,
            _ => 0.05,
        }
    }

    /// Zipf exponent of the coverage distribution (0 = uniform).
    #[must_use]
    pub fn skew_exponent(&self) -> f64 {
        match self.family {
            Family::CoverageSkew => 3.0 * self.level,
            _ => 0.0,
        }
    }

    /// Number of copier sources in the collusion community (0 outside
    /// [`Family::Collusion`] or at level 0). The community additionally
    /// contains one template source, so the minimal non-empty community
    /// is 2 sources — exactly where shrinking lands.
    #[must_use]
    pub fn colluders(&self) -> usize {
        if self.family != Family::Collusion || self.level <= 0.0 {
            return 0;
        }
        let extra = ((self.num_sources.saturating_sub(2)) as f64 * 0.5 * self.level).round();
        (1 + extra as usize).min(self.num_sources - 1)
    }

    /// Builds the scenario. Deterministic: equal specs build equal
    /// scenarios.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (`num_sources < 2`,
    /// `num_claims < 1`, `num_intervals < 2`, `reports_per_cell < 1`)
    /// or `level` is outside `[0, 1]`.
    #[must_use]
    pub fn build(&self) -> Scenario {
        assert!(self.num_sources >= 2, "scenario needs at least 2 sources");
        assert!(self.num_claims >= 1, "scenario needs at least 1 claim");
        assert!(self.num_intervals >= 2, "scenario needs at least 2 intervals");
        assert!(self.reports_per_cell >= 1, "scenario needs reports");
        assert!((0.0..=1.0).contains(&self.level), "level outside [0, 1]");

        let mut rng = TestRng::new(self.seed);
        let n = self.num_sources;

        // Planted truth: sticky per-claim chains flipping at the drift
        // rate.
        let drift = self.drift();
        let truth: Vec<Vec<TruthLabel>> = (0..self.num_claims)
            .map(|_| {
                let mut label = TruthLabel::from_bool(rng.chance(0.5));
                (0..self.num_intervals)
                    .map(|iv| {
                        if iv > 0 && rng.chance(drift) {
                            label = label.flipped();
                        }
                        label
                    })
                    .collect()
            })
            .collect();

        // Collusion community: source 0 is the misinformation template,
        // sources 1..=colluders copy it. Everyone else is ordinary.
        let colluders = self.colluders();
        let community = 1 + colluders;
        let collusion: Vec<(SourceId, SourceId)> = if colluders == 0 {
            Vec::new()
        } else {
            (1..community).map(|c| (SourceId::new(0), SourceId::new(c as u32))).collect()
        };
        let honest_pool: Vec<usize> =
            if colluders == 0 { (0..n).collect() } else { (community..n).collect() };

        // Per-source dishonesty, with family-specific overrides.
        let mut dishonesty = vec![self.dishonesty(); n];
        match self.family {
            Family::CoverageSkew => {
                // The dominant source becomes a noisy firehose.
                dishonesty[0] = BASE_DISHONESTY + 0.5 * self.level;
            }
            Family::LongTail => {
                for d in dishonesty.iter_mut().skip(LONG_TAIL_HEAD.min(n)) {
                    *d = BASE_DISHONESTY + 0.4 * self.level;
                }
            }
            _ => {}
        }

        // Coverage weights over the honest pool.
        let skew = self.skew_exponent();
        let weights: Vec<f64> = honest_pool.iter().map(|&s| ((s + 1) as f64).powf(-skew)).collect();
        let tail_share = if self.family == Family::LongTail { 0.2 + 0.7 * self.level } else { 0.0 };

        let mut reports = Vec::new();
        for (c, labels) in truth.iter().enumerate() {
            let claim = ClaimId::new(c as u32);
            for (iv, label) in labels.iter().enumerate() {
                let base = iv as u64 * TraceCase::SECS_PER_INTERVAL;
                // Ordinary reports from the honest pool.
                for _ in 0..self.reports_per_cell {
                    let Some(src) = self.pick_source(&mut rng, &honest_pool, &weights, tail_share)
                    else {
                        break; // the community swallowed every source
                    };
                    let honest = !rng.chance(dishonesty[src]);
                    let attitude = if honest {
                        label.honest_attitude()
                    } else {
                        label.honest_attitude().flipped()
                    };
                    reports.push(Report::new(
                        SourceId::new(src as u32),
                        claim,
                        Timestamp::from_secs(base + rng.usize_in(0, 9) as u64),
                        attitude,
                        Uncertainty::saturating(rng.f64_in(0.0, 0.25)),
                        Independence::saturating(rng.f64_in(0.85, 1.0)),
                    ));
                }
                // Collusion: the template pushes the flipped truth and
                // the community replicates it a second later.
                if colluders > 0 && rng.chance(0.95) {
                    let attitude = label.honest_attitude().flipped();
                    let t = base + rng.usize_in(0, 7) as u64;
                    let kappa = rng.f64_in(0.0, 0.15);
                    reports.push(Report::new(
                        SourceId::new(0),
                        claim,
                        Timestamp::from_secs(t),
                        attitude,
                        Uncertainty::saturating(kappa),
                        Independence::saturating(1.0),
                    ));
                    for copier in 1..community {
                        if rng.chance(0.85) {
                            reports.push(Report::new(
                                SourceId::new(copier as u32),
                                claim,
                                Timestamp::from_secs(t + 1),
                                attitude,
                                Uncertainty::saturating(kappa),
                                // Copies are only partially detected as
                                // such — the community keeps real weight.
                                Independence::saturating(0.45),
                            ));
                        }
                    }
                }
            }
        }

        Scenario { spec: *self, truth, reports, collusion }
    }

    fn pick_source(
        &self,
        rng: &mut TestRng,
        pool: &[usize],
        weights: &[f64],
        tail_share: f64,
    ) -> Option<usize> {
        if pool.is_empty() {
            return None;
        }
        match self.family {
            Family::CoverageSkew => {
                let total: f64 = weights.iter().sum();
                let mut ball = rng.f64_in(0.0, total);
                for (i, w) in weights.iter().enumerate() {
                    ball -= w;
                    if ball <= 0.0 {
                        return Some(pool[i]);
                    }
                }
                Some(pool[pool.len() - 1])
            }
            Family::LongTail => {
                let head = LONG_TAIL_HEAD.min(pool.len());
                if pool.len() > head && rng.chance(tail_share) {
                    Some(pool[rng.usize_in(head, pool.len() - 1)])
                } else {
                    Some(pool[rng.usize_in(0, head - 1)])
                }
            }
            _ => Some(*rng.pick(pool)),
        }
    }
}

/// Sources counted as the well-covered "head" in [`Family::LongTail`]
/// scenarios.
const LONG_TAIL_HEAD: usize = 3;

/// A built scenario: planted truth, the generated report stream, and
/// the collusion graph (empty outside the collusion family).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The recipe this scenario was built from.
    pub spec: ScenarioSpec,
    /// Planted truth: `truth[claim][interval]`.
    pub truth: Vec<Vec<TruthLabel>>,
    /// Generated reports (time-ordered once assembled into a trace).
    pub reports: Vec<Report>,
    /// Copy edges `(template, copier)`; non-empty only for
    /// [`Family::Collusion`] at level > 0.
    pub collusion: Vec<(SourceId, SourceId)>,
}

impl Scenario {
    /// Assembles the production [`Trace`] (named after the family).
    #[must_use]
    pub fn trace(&self) -> Trace {
        let horizon =
            Timestamp::from_secs(self.spec.num_intervals as u64 * TraceCase::SECS_PER_INTERVAL);
        let timeline = Timeline::new(horizon, self.spec.num_intervals);
        let mut gt = GroundTruth::new(self.spec.num_intervals);
        for (c, labels) in self.truth.iter().enumerate() {
            gt.insert(ClaimId::new(c as u32), labels.clone());
        }
        Trace::new(
            self.spec.family.name(),
            self.reports.clone(),
            self.spec.num_sources,
            self.spec.num_claims,
            timeline,
            gt,
        )
    }

    /// Fraction of reports whose attitude contradicts the planted truth
    /// at their interval.
    #[must_use]
    pub fn conflict_ratio(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        let conflicting = self
            .reports
            .iter()
            .filter(|r| {
                let iv = (r.time().as_secs() / TraceCase::SECS_PER_INTERVAL) as usize;
                let label = self.truth[r.claim().index()][iv.min(self.spec.num_intervals - 1)];
                r.attitude() != label.honest_attitude()
            })
            .count();
        conflicting as f64 / self.reports.len() as f64
    }

    /// Reports per source (`coverage()[s]` is source `s`'s count).
    #[must_use]
    pub fn coverage(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.spec.num_sources];
        for r in &self.reports {
            counts[r.source().index()] += 1;
        }
        counts
    }

    /// Number of planted truth transitions across all claims.
    #[must_use]
    pub fn truth_flips(&self) -> usize {
        self.truth.iter().map(|labels| labels.windows(2).filter(|w| w[0] != w[1]).count()).sum()
    }
}

fn quantize(level: f64) -> f64 {
    (level * 10.0).round() / 10.0
}

fn shrink_specs(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |s: ScenarioSpec| {
        if !out.contains(&s) {
            out.push(s);
        }
    };
    if spec.level > 0.0 {
        push(ScenarioSpec { level: 0.0, ..*spec });
        let half = quantize(spec.level / 2.0);
        if half < spec.level {
            push(ScenarioSpec { level: half, ..*spec });
        }
    }
    if spec.num_claims > 1 {
        push(ScenarioSpec { num_claims: 1, ..*spec });
        push(ScenarioSpec { num_claims: spec.num_claims / 2, ..*spec });
    }
    if spec.num_sources > 2 {
        push(ScenarioSpec { num_sources: 2, ..*spec });
        push(ScenarioSpec { num_sources: (spec.num_sources / 2).max(2), ..*spec });
    }
    if spec.num_intervals > 2 {
        push(ScenarioSpec { num_intervals: 2, ..*spec });
        push(ScenarioSpec { num_intervals: (spec.num_intervals / 2).max(2), ..*spec });
    }
    if spec.reports_per_cell > 1 {
        push(ScenarioSpec { reports_per_cell: 1, ..*spec });
    }
    out
}

fn draw_spec(rng: &mut TestRng, family: Family) -> ScenarioSpec {
    ScenarioSpec {
        family,
        level: rng.usize_in(0, 10) as f64 / 10.0,
        seed: rng.next_u64(),
        num_claims: rng.usize_in(1, 5),
        num_sources: rng.usize_in(2, 12),
        num_intervals: rng.usize_in(2, 8),
        reports_per_cell: rng.usize_in(1, 3),
    }
}

/// Generates scenarios of one family across the full level range.
/// Shrinking simplifies the *spec* — level toward 0, populations toward
/// the 2-source / 1-claim / 2-interval floor — and rebuilds, so every
/// shrunk candidate still satisfies the family's invariants.
#[must_use]
pub fn scenario(family: Family) -> Gen<Scenario> {
    Gen::new(move |rng| draw_spec(rng, family).build())
        .with_shrink(|s| shrink_specs(&s.spec).into_iter().map(|sp| sp.build()).collect())
}

/// Generates scenarios across all five families.
#[must_use]
pub fn any_scenario() -> Gen<Scenario> {
    Gen::new(move |rng| {
        let family = *rng.pick(&Family::ALL);
        draw_spec(rng, family).build()
    })
    .with_shrink(|s| shrink_specs(&s.spec).into_iter().map(|sp| sp.build()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(family: Family, level: f64) -> ScenarioSpec {
        ScenarioSpec {
            family,
            level,
            seed: 2017,
            num_claims: 4,
            num_sources: 10,
            num_intervals: 8,
            reports_per_cell: 3,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let s = spec(Family::Collusion, 0.7);
        assert_eq!(s.build(), s.build());
    }

    #[test]
    fn trace_assembles_for_every_family_and_level() {
        for family in Family::ALL {
            for level in [0.0, 0.5, 1.0] {
                let sc = spec(family, level).build();
                let trace = sc.trace();
                assert_eq!(trace.num_claims(), 4, "{family:?}");
                assert_eq!(trace.timeline().num_intervals(), 8);
                assert!(!trace.reports().is_empty());
            }
        }
    }

    #[test]
    fn collusion_community_scales_with_level() {
        assert!(spec(Family::Collusion, 0.0).build().collusion.is_empty());
        let low = spec(Family::Collusion, 0.2).build().collusion.len();
        let high = spec(Family::Collusion, 1.0).build().collusion.len();
        assert!(low >= 1 && high > low, "low {low}, high {high}");
    }

    #[test]
    fn two_source_collusion_is_the_minimal_community() {
        let s = ScenarioSpec { num_sources: 2, ..spec(Family::Collusion, 0.5) };
        let sc = s.build();
        assert_eq!(sc.collusion.len(), 1);
        assert_eq!(sc.collusion[0], (SourceId::new(0), SourceId::new(1)));
    }

    #[test]
    fn conflict_grows_with_level() {
        let lo = spec(Family::ConflictRatio, 0.0).build().conflict_ratio();
        let hi = spec(Family::ConflictRatio, 1.0).build().conflict_ratio();
        assert!(hi > lo + 0.15, "conflict {lo} -> {hi}");
    }

    #[test]
    fn drift_is_zero_at_level_zero() {
        let sc = spec(Family::TruthDrift, 0.0).build();
        assert_eq!(sc.truth_flips(), 0);
    }
}
