//! Brute-force reference oracles: obviously correct, unashamedly slow.
//!
//! Each oracle recomputes from the definition what a production code
//! path computes incrementally or by dynamic programming, so the
//! differential suites can compare the two on thousands of seeded cases.
//! The HMM oracles (exhaustive Viterbi over all `N^T` sequences,
//! direct-sum likelihood, enumerated posteriors) live in
//! [`sstd_hmm::exhaustive`] and are re-exported here under [`hmm`] so the
//! testkit is a one-stop import for every oracle.

/// Exhaustive-enumeration HMM oracles (`best_path`, `log_likelihood`,
/// `posteriors`, `log_joint`), re-exported from `sstd_hmm`.
pub mod hmm {
    pub use sstd_hmm::exhaustive::{best_path, log_joint, log_likelihood, posteriors};
}

/// Compares the allocating HMM kernels against their workspace `_into`
/// twins on one model + observation sequence, reusing the caller's
/// scratch arenas (the reuse is the point: a dirty workspace must not
/// leak into the next case). The contract is *bit*-equality — the
/// workspace kernels are refactorings of the same arithmetic, not
/// approximations of it.
///
/// # Errors
///
/// Returns a description of the first divergence: log-likelihood bits,
/// γ/ξ table shape or entries, or the Viterbi path.
pub fn check_workspace_kernels<E: sstd_hmm::Emission>(
    hmm: &sstd_hmm::Hmm<E>,
    obs: &[E::Obs],
    em: &mut sstd_hmm::EmWorkspace,
    decode: &mut sstd_hmm::DecodeWorkspace,
) -> Result<(), String> {
    let reference = sstd_hmm::forward_backward(hmm, obs);
    let ll = sstd_hmm::forward_backward_into(hmm, obs, em);
    if ll.to_bits() != reference.log_likelihood.to_bits() {
        return Err(format!(
            "log-likelihood diverged: workspace {ll} vs allocating {}",
            reference.log_likelihood
        ));
    }
    let gamma = em.gamma();
    if gamma.rows() != reference.gamma.len() {
        return Err(format!(
            "gamma has {} rows, allocating has {}",
            gamma.rows(),
            reference.gamma.len()
        ));
    }
    for (t, want) in reference.gamma.iter().enumerate() {
        let got = gamma.row(t);
        for (s, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(format!("gamma[{t}][{s}] = {g}, allocating says {w}"));
            }
        }
    }
    let xi = em.xi_sum();
    for (i, want) in reference.xi_sum.iter().enumerate() {
        let got = xi.row(i);
        for (j, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(format!("xi_sum[{i}][{j}] = {g}, allocating says {w}"));
            }
        }
    }
    let want_path = sstd_hmm::viterbi(hmm, obs);
    let got_path = sstd_hmm::viterbi_into(hmm, obs, decode);
    if got_path != want_path {
        return Err(format!("viterbi path diverged: workspace {got_path:?} vs {want_path:?}"));
    }
    Ok(())
}

/// Compares [`BaumWelch::train`](sstd_hmm::BaumWelch::train) against
/// [`train_into`](sstd_hmm::BaumWelch::train_into) on one starting model:
/// the trained parameters, final log-likelihood bits, iteration count,
/// and convergence flag must all agree.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_workspace_training<E>(
    trainer: &sstd_hmm::BaumWelch,
    initial: &sstd_hmm::Hmm<E>,
    obs: &[E::Obs],
    em: &mut sstd_hmm::EmWorkspace,
) -> Result<(), String>
where
    E: sstd_hmm::TrainableEmission + Clone + PartialEq + std::fmt::Debug,
{
    let reference = trainer.train(initial.clone(), obs);
    let mut model = initial.clone();
    let stats = trainer.train_into(&mut model, obs, em);
    if model != reference.model {
        return Err(format!(
            "trained models diverged:\n  workspace  {model:?}\n  allocating {:?}",
            reference.model
        ));
    }
    if stats.log_likelihood.to_bits() != reference.log_likelihood.to_bits() {
        return Err(format!(
            "final log-likelihood diverged: workspace {} vs allocating {}",
            stats.log_likelihood, reference.log_likelihood
        ));
    }
    if stats.iterations != reference.iterations || stats.converged != reference.converged {
        return Err(format!(
            "convergence diverged: workspace ({}, {}) vs allocating ({}, {})",
            stats.iterations, stats.converged, reference.iterations, reference.converged
        ));
    }
    Ok(())
}

/// Naive sliding-window ACS recomputation (paper Eq. 4, from the
/// definition): `ACS_u^t = Σ_{max(0, t−sw+1)}^{t} cs_i`, one windowed
/// sum per interval, each computed from scratch in O(window).
///
/// Differential partner of `AcsAggregator::sequence` (O(T) rolling) and
/// `AcsAggregator::acs_at`.
///
/// # Examples
///
/// ```
/// use sstd_testkit::oracle::naive_acs;
///
/// assert_eq!(naive_acs(&[1.0, 2.0, 4.0], 2), vec![1.0, 3.0, 6.0]);
/// ```
#[must_use]
pub fn naive_acs(interval_sums: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be at least one interval");
    (0..interval_sums.len())
        .map(|t| {
            let lo = (t + 1).saturating_sub(window);
            interval_sums[lo..=t].iter().sum()
        })
        .collect()
}

/// Exact `p`-quantile of a finite sample by sorting, with linear
/// interpolation between order statistics (the "type 7" definition used
/// by R and NumPy): `h = (n−1)p`, `q = x_(⌊h⌋) + (h−⌊h⌋)(x_(⌊h⌋+1) −
/// x_(⌊h⌋))`.
///
/// This definition is continuous in `p` and symmetric under reflection
/// (`q_p(x) = −q_{1−p}(−x)`), which the differential suite checks the
/// P² estimator's small-sample path against.
///
/// Delegates to [`sstd_stats::exact_quantile`] — the one shared
/// implementation across the workspace — and is kept here so oracle
/// imports stay stable.
///
/// # Panics
///
/// Panics if `samples` is empty, contains a NaN, or `p` is outside
/// `[0, 1]`.
#[must_use]
pub fn exact_quantile(samples: &[f64], p: f64) -> f64 {
    sstd_stats::exact_quantile(samples, p)
}

/// The bin a sample falls into, by linear scan over explicit bin edges:
/// bin `k` covers `[lo + k·w, lo + (k+1)·w)` with `w = (hi − lo)/bins`,
/// out-of-range samples clamp to the end bins.
///
/// Differential partner of `Histogram::bin_of`. Near a bin edge the two
/// can legitimately disagree by one bin when the edge itself is not
/// exactly representable; [`near_bin_edge`] identifies those samples so
/// a differential test can exclude them.
///
/// # Panics
///
/// Panics if `bins == 0` or the range is not an ordered pair of finite
/// bounds.
#[must_use]
pub fn scan_bin_of(lo: f64, hi: f64, bins: usize, x: f64) -> usize {
    assert!(bins > 0 && lo.is_finite() && hi.is_finite() && lo < hi, "bad histogram shape");
    if x.is_nan() {
        return 0;
    }
    for k in 0..bins {
        let upper = lo + (hi - lo) * (k as f64 + 1.0) / bins as f64;
        if x < upper {
            return k;
        }
    }
    bins - 1
}

/// Whether `x` lies within `tol` (relative to the bin width) of any bin
/// edge of the `[lo, hi]`/`bins` histogram.
#[must_use]
pub fn near_bin_edge(lo: f64, hi: f64, bins: usize, x: f64, tol: f64) -> bool {
    if x.is_nan() {
        return false;
    }
    let width = (hi - lo) / bins as f64;
    (0..=bins).any(|k| {
        let edge = lo + (hi - lo) * k as f64 / bins as f64;
        (x - edge).abs() <= tol * width
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_acs_matches_hand_computation() {
        // window 3 over sums [1, 0, 2, 0, 1].
        assert_eq!(naive_acs(&[1.0, 0.0, 2.0, 0.0, 1.0], 3), vec![1.0, 1.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn naive_acs_window_one_is_identity() {
        let sums = [0.5, -1.0, 2.0];
        assert_eq!(naive_acs(&sums, 1), sums.to_vec());
    }

    #[test]
    fn naive_acs_huge_window_is_running_total() {
        assert_eq!(naive_acs(&[1.0, 1.0, 1.0], 99), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn exact_quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(exact_quantile(&xs, 0.5), 2.0);
        assert_eq!(exact_quantile(&xs, 0.25), 1.5);
        assert_eq!(exact_quantile(&xs, 0.0), 1.0);
        assert_eq!(exact_quantile(&xs, 1.0), 3.0);
    }

    #[test]
    fn exact_quantile_is_reflection_symmetric() {
        let xs = [3.0, -1.0, 7.0, 2.0];
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        for p in [0.1, 0.25, 0.4, 0.75, 0.9] {
            let q = exact_quantile(&xs, p);
            let mirrored = -exact_quantile(&neg, 1.0 - p);
            assert!((q - mirrored).abs() < 1e-12, "p={p}: {q} vs {mirrored}");
        }
    }

    #[test]
    fn scan_bin_clamps_and_covers() {
        assert_eq!(scan_bin_of(0.0, 1.0, 4, -3.0), 0);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, 0.3), 1);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, 99.0), 3);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, f64::NAN), 0);
    }

    #[test]
    fn near_bin_edge_flags_boundaries_only() {
        assert!(near_bin_edge(0.0, 1.0, 10, 0.300000000001, 1e-9));
        assert!(!near_bin_edge(0.0, 1.0, 10, 0.35, 1e-9));
    }
}
