//! Brute-force reference oracles: obviously correct, unashamedly slow.
//!
//! Each oracle recomputes from the definition what a production code
//! path computes incrementally or by dynamic programming, so the
//! differential suites can compare the two on thousands of seeded cases.
//! The HMM oracles (exhaustive Viterbi over all `N^T` sequences,
//! direct-sum likelihood, enumerated posteriors) live in
//! [`sstd_hmm::exhaustive`] and are re-exported here under [`hmm`] so the
//! testkit is a one-stop import for every oracle.

/// Exhaustive-enumeration HMM oracles (`best_path`, `log_likelihood`,
/// `posteriors`, `log_joint`), re-exported from `sstd_hmm`.
pub mod hmm {
    pub use sstd_hmm::exhaustive::{best_path, log_joint, log_likelihood, posteriors};
}

/// Naive sliding-window ACS recomputation (paper Eq. 4, from the
/// definition): `ACS_u^t = Σ_{max(0, t−sw+1)}^{t} cs_i`, one windowed
/// sum per interval, each computed from scratch in O(window).
///
/// Differential partner of `AcsAggregator::sequence` (O(T) rolling) and
/// `AcsAggregator::acs_at`.
///
/// # Examples
///
/// ```
/// use sstd_testkit::oracle::naive_acs;
///
/// assert_eq!(naive_acs(&[1.0, 2.0, 4.0], 2), vec![1.0, 3.0, 6.0]);
/// ```
#[must_use]
pub fn naive_acs(interval_sums: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be at least one interval");
    (0..interval_sums.len())
        .map(|t| {
            let lo = (t + 1).saturating_sub(window);
            interval_sums[lo..=t].iter().sum()
        })
        .collect()
}

/// Exact `p`-quantile of a finite sample by sorting, with linear
/// interpolation between order statistics (the "type 7" definition used
/// by R and NumPy): `h = (n−1)p`, `q = x_(⌊h⌋) + (h−⌊h⌋)(x_(⌊h⌋+1) −
/// x_(⌊h⌋))`.
///
/// This definition is continuous in `p` and symmetric under reflection
/// (`q_p(x) = −q_{1−p}(−x)`), which the differential suite checks the
/// P² estimator's small-sample path against.
///
/// # Panics
///
/// Panics if `samples` is empty, contains a non-finite value, or `p` is
/// outside `[0, 1]`.
#[must_use]
pub fn exact_quantile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let h = (v.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let frac = h - lo as f64;
    if frac == 0.0 || lo + 1 >= v.len() {
        v[lo]
    } else {
        v[lo] + frac * (v[lo + 1] - v[lo])
    }
}

/// The bin a sample falls into, by linear scan over explicit bin edges:
/// bin `k` covers `[lo + k·w, lo + (k+1)·w)` with `w = (hi − lo)/bins`,
/// out-of-range samples clamp to the end bins.
///
/// Differential partner of `Histogram::bin_of`. Near a bin edge the two
/// can legitimately disagree by one bin when the edge itself is not
/// exactly representable; [`near_bin_edge`] identifies those samples so
/// a differential test can exclude them.
///
/// # Panics
///
/// Panics if `bins == 0` or the range is not an ordered pair of finite
/// bounds.
#[must_use]
pub fn scan_bin_of(lo: f64, hi: f64, bins: usize, x: f64) -> usize {
    assert!(bins > 0 && lo.is_finite() && hi.is_finite() && lo < hi, "bad histogram shape");
    if x.is_nan() {
        return 0;
    }
    for k in 0..bins {
        let upper = lo + (hi - lo) * (k as f64 + 1.0) / bins as f64;
        if x < upper {
            return k;
        }
    }
    bins - 1
}

/// Whether `x` lies within `tol` (relative to the bin width) of any bin
/// edge of the `[lo, hi]`/`bins` histogram.
#[must_use]
pub fn near_bin_edge(lo: f64, hi: f64, bins: usize, x: f64, tol: f64) -> bool {
    if x.is_nan() {
        return false;
    }
    let width = (hi - lo) / bins as f64;
    (0..=bins).any(|k| {
        let edge = lo + (hi - lo) * k as f64 / bins as f64;
        (x - edge).abs() <= tol * width
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_acs_matches_hand_computation() {
        // window 3 over sums [1, 0, 2, 0, 1].
        assert_eq!(naive_acs(&[1.0, 0.0, 2.0, 0.0, 1.0], 3), vec![1.0, 1.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn naive_acs_window_one_is_identity() {
        let sums = [0.5, -1.0, 2.0];
        assert_eq!(naive_acs(&sums, 1), sums.to_vec());
    }

    #[test]
    fn naive_acs_huge_window_is_running_total() {
        assert_eq!(naive_acs(&[1.0, 1.0, 1.0], 99), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn exact_quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(exact_quantile(&xs, 0.5), 2.0);
        assert_eq!(exact_quantile(&xs, 0.25), 1.5);
        assert_eq!(exact_quantile(&xs, 0.0), 1.0);
        assert_eq!(exact_quantile(&xs, 1.0), 3.0);
    }

    #[test]
    fn exact_quantile_is_reflection_symmetric() {
        let xs = [3.0, -1.0, 7.0, 2.0];
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        for p in [0.1, 0.25, 0.4, 0.75, 0.9] {
            let q = exact_quantile(&xs, p);
            let mirrored = -exact_quantile(&neg, 1.0 - p);
            assert!((q - mirrored).abs() < 1e-12, "p={p}: {q} vs {mirrored}");
        }
    }

    #[test]
    fn scan_bin_clamps_and_covers() {
        assert_eq!(scan_bin_of(0.0, 1.0, 4, -3.0), 0);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, 0.3), 1);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, 99.0), 3);
        assert_eq!(scan_bin_of(0.0, 1.0, 4, f64::NAN), 0);
    }

    #[test]
    fn near_bin_edge_flags_boundaries_only() {
        assert!(near_bin_edge(0.0, 1.0, 10, 0.300000000001, 1e-9));
        assert!(!near_bin_edge(0.0, 1.0, 10, 0.35, 1e-9));
    }
}
