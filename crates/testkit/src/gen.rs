//! `Gen<T>`: seeded value generators with integrated greedy shrinking.
//!
//! A generator couples two functions: one that draws an
//! arbitrary-but-valid value from a [`TestRng`], and one that proposes
//! strictly simpler variants of a value for the shrinker. The runner in
//! [`crate::check`] walks the shrink proposals greedily — it takes the
//! first proposal that still fails the property and repeats — so shrink
//! functions must make *progress*: every proposal must be simpler than
//! its input by some well-founded measure (shorter, closer to zero,
//! closer to uniform), or shrinking will be cut off by the step cap.

use crate::rng::TestRng;
use std::rc::Rc;

/// A shared shrink function: proposes strictly simpler variants of a
/// value.
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A seeded generator of `T` with integrated shrinking.
///
/// # Examples
///
/// ```
/// use sstd_testkit::{gens, TestRng};
///
/// let gen = gens::vec_of(gens::f64_in(-1.0, 1.0), 0, 8);
/// let mut rng = TestRng::new(9);
/// let v = gen.generate(&mut rng);
/// assert!(v.len() <= 8);
/// // Every shrink proposal is strictly shorter or element-wise simpler.
/// for s in gen.shrink(&v) {
///     assert!(s.len() <= v.len());
/// }
/// ```
pub struct Gen<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self { generate: Rc::clone(&self.generate), shrink: Rc::clone(&self.shrink) }
    }
}

impl<T> std::fmt::Debug for Gen<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gen").finish_non_exhaustive()
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a draw function, with no shrinking.
    pub fn new(generate: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { generate: Rc::new(generate), shrink: Rc::new(|_| Vec::new()) }
    }

    /// Attaches (or replaces) the shrink function.
    #[must_use]
    pub fn with_shrink(mut self, shrink: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        self.shrink = Rc::new(shrink);
        self
    }

    /// Draws one value.
    pub fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }

    /// Proposes simpler variants of `value`, simplest first.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps the generated value through `f`. Shrinking does not transport
    /// through an arbitrary map, so the result proposes no shrinks; attach
    /// new ones with [`with_shrink`](Self::with_shrink) if needed.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let generate = self.generate;
        Gen::new(move |rng| f((generate)(rng)))
    }
}

/// Ready-made generators for common shapes.
pub mod gens {
    use super::*;

    /// Uniform `usize` in `[lo, hi]`, shrinking toward `lo`.
    pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        Gen::new(move |rng| rng.usize_in(lo, hi)).with_shrink(move |&v| {
            let mut out = Vec::new();
            if v > lo {
                out.push(lo);
                let half = lo + (v - lo) / 2;
                if half != lo && half != v {
                    out.push(half);
                }
                if v - 1 != lo && v - 1 != half {
                    out.push(v - 1);
                }
            }
            out
        })
    }

    /// Uniform `f64` in `[lo, hi)`, shrinking toward the simplest value in
    /// range (`0` when the range straddles it, else `lo`) by halving the
    /// remaining distance.
    pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        let target = if lo <= 0.0 && 0.0 < hi { 0.0 } else { lo };
        Gen::new(move |rng| rng.f64_in(lo, hi)).with_shrink(move |&v| {
            if (v - target).abs() < 1e-9 {
                return Vec::new();
            }
            let mut out = vec![target];
            let half = target + (v - target) / 2.0;
            if (half - target).abs() >= 1e-9 {
                out.push(half);
            }
            out
        })
    }

    /// A coin flip; `true` shrinks to `false`.
    pub fn boolean() -> Gen<bool> {
        Gen::new(|rng| rng.chance(0.5)).with_shrink(|&v| if v { vec![false] } else { Vec::new() })
    }

    /// A uniformly chosen element of `choices` (no shrinking — the
    /// choices carry no simplicity order).
    pub fn one_of<T: Clone + 'static>(choices: Vec<T>) -> Gen<T> {
        assert!(!choices.is_empty(), "one_of needs at least one choice");
        Gen::new(move |rng| rng.pick(&choices).clone())
    }

    /// A vector of `min..=max` elements drawn from `elem`.
    ///
    /// Shrinks by dropping the front/back half, dropping single elements,
    /// and shrinking individual elements in place — always respecting
    /// `min`.
    pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min: usize, max: usize) -> Gen<Vec<T>> {
        assert!(min <= max, "bad length range [{min}, {max}]");
        let draw_elem = elem.clone();
        Gen::new(move |rng| {
            let len = rng.usize_in(min, max);
            (0..len).map(|_| draw_elem.generate(rng)).collect()
        })
        .with_shrink(move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let len = v.len();
            // Structural shrinks first: halves, then single removals.
            if len > min {
                let keep = (len / 2).max(min);
                out.push(v[..keep].to_vec());
                out.push(v[len - keep..].to_vec());
                for i in 0..len.min(16) {
                    let mut shorter = v.clone();
                    shorter.remove(i);
                    if shorter.len() >= min {
                        out.push(shorter);
                    }
                }
            }
            // Element-wise shrinks: replace one element with its first
            // proposal.
            for i in 0..len.min(16) {
                if let Some(simpler) = elem.shrink(&v[i]).into_iter().next() {
                    let mut w = v.clone();
                    w[i] = simpler;
                    out.push(w);
                }
            }
            out
        })
    }

    /// A pair of independent draws.
    pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
        let (ga, gb) = (a.clone(), b.clone());
        Gen::new(move |rng| (ga.generate(rng), gb.generate(rng))).with_shrink(move |(va, vb)| {
            let mut out: Vec<(A, B)> = Vec::new();
            for sa in a.shrink(va) {
                out.push((sa, vb.clone()));
            }
            for sb in b.shrink(vb) {
                out.push((va.clone(), sb));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::gens;
    use crate::rng::TestRng;

    #[test]
    fn usize_shrinks_toward_lower_bound() {
        let g = gens::usize_in(2, 50);
        let proposals = g.shrink(&40);
        assert_eq!(proposals[0], 2, "lower bound is the first proposal");
        assert!(proposals.iter().all(|&p| p < 40));
        assert!(g.shrink(&2).is_empty(), "the bound itself cannot shrink");
    }

    #[test]
    fn f64_shrinks_toward_zero_when_straddling() {
        let g = gens::f64_in(-5.0, 5.0);
        let proposals = g.shrink(&4.0);
        assert_eq!(proposals[0], 0.0);
        assert!(g.shrink(&0.0).is_empty());
    }

    #[test]
    fn f64_shrinks_toward_lo_otherwise() {
        let g = gens::f64_in(2.0, 5.0);
        assert_eq!(g.shrink(&4.0)[0], 2.0);
    }

    #[test]
    fn vec_shrinks_respect_min_len() {
        let g = gens::vec_of(gens::usize_in(0, 9), 2, 6);
        let v = vec![5usize, 6, 7, 8];
        for s in g.shrink(&v) {
            assert!(s.len() >= 2, "proposal {s:?} violates min length");
        }
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
        }
    }

    #[test]
    fn pair_shrinks_each_side() {
        let g = gens::pair(gens::usize_in(0, 9), gens::usize_in(0, 9));
        let proposals = g.shrink(&(4, 7));
        assert!(proposals.contains(&(0, 7)));
        assert!(proposals.contains(&(4, 0)));
    }

    #[test]
    fn map_draws_through() {
        let g = gens::usize_in(1, 3).map(|n| vec![0u8; n]);
        let mut rng = TestRng::new(5);
        for _ in 0..20 {
            assert!((1..=3).contains(&g.generate(&mut rng).len()));
        }
    }
}
