//! Property-based + differential correctness harness for SSTD.
//!
//! The SSTD pipeline is an unsupervised EM + Viterbi system whose batch,
//! streaming, and distributed paths must stay interchangeable as hot
//! paths get optimized. This crate is the substrate that keeps them
//! honest, with zero new dependencies:
//!
//! - [`TestRng`] — a SplitMix64 PRNG, so every case is a 64-bit seed;
//! - [`Gen`] — seeded generators of arbitrary-but-valid domain values
//!   ([`domain`]: report streams, ACS sequences, HMM parameter sets,
//!   fault plans, engine configs, and the adversarial truth-discovery
//!   scenarios of [`domain::scenario`]) with integrated greedy
//!   shrinking;
//! - [`oracle`] — brute-force reference implementations (exhaustive
//!   Viterbi, direct-sum likelihood, naive sliding-window ACS, sorted
//!   quantiles, scanned histogram bins);
//! - [`check`] — the runner: on failure it shrinks the case and prints a
//!   `TESTKIT_SEED=… TESTKIT_CASES=1` line that replays it exactly.
//!
//! # Examples
//!
//! A differential property: the engine's rolling ACS must match the
//! naive windowed recomputation on every generated case.
//!
//! ```
//! use sstd_core::AcsAggregator;
//! use sstd_testkit::{check, domain, oracle};
//!
//! check("acs_rolling_matches_naive", 200, &domain::acs_case(8, 12), |case| {
//!     let mut agg = AcsAggregator::new(case.num_intervals, case.window);
//!     for &(interval, cs) in &case.scores {
//!         agg.add_score(interval, cs);
//!     }
//!     let expected = oracle::naive_acs(agg.interval_sums(), case.window);
//!     let got = agg.sequence();
//!     if got.iter().zip(&expected).all(|(a, b)| (a - b).abs() < 1e-9) {
//!         Ok(())
//!     } else {
//!         Err(format!("rolling {got:?} != naive {expected:?}"))
//!     }
//! });
//! ```
//!
//! Reproducing a failure is one environment line — the panic message
//! prints it: `TESTKIT_SEED=<case seed> TESTKIT_CASES=1 cargo test -p
//! <crate> <property>`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod check;
pub mod domain;
mod gen;
pub mod oracle;
mod rng;

pub use check::{check, check_with, CheckConfig, CounterExample, DEFAULT_SEED};
pub use gen::{gens, Gen};
pub use rng::{mix64, TestRng};
