//! A tiny, dependency-free, splittable PRNG for property tests.
//!
//! [`TestRng`] is a SplitMix64 generator (Steele, Lea & Flood, OOPSLA
//! 2014): a 64-bit counter passed through a fixed avalanche mix. It is
//! deliberately *not* the runtime's fault-injection hash — the harness
//! must stay an independent source of randomness — but uses the same
//! well-known constants, so the stream is easy to reproduce in any
//! language from nothing but the seed.

/// The SplitMix64 finalizer: maps a 64-bit value to a well-mixed one.
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 stream.
///
/// # Examples
///
/// ```
/// use sstd_testkit::TestRng;
///
/// let mut a = TestRng::new(42);
/// let mut b = TestRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// let x = a.f64_in(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range [{lo}, {hi})");
        lo + self.unit() * (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }

    /// Splits off an independent child generator. The child's stream is
    /// decorrelated from the parent's by an extra mix round.
    pub fn split(&mut self) -> Self {
        Self { state: mix64(self.next_u64()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| TestRng::new(7).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]), "fresh rng always starts the same");
        let mut r = TestRng::new(7);
        let seq: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(seq.len(), 8);
        assert_ne!(seq[0], seq[1], "stream advances");
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = TestRng::new(1);
        for _ in 0..10_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_in_covers_bounds() {
        let mut r = TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.usize_in(0, 3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn split_decorrelates() {
        let mut r = TestRng::new(3);
        let mut child = r.split();
        assert_ne!(r.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = TestRng::new(0).usize_in(3, 1);
    }
}
