//! Arbitrary-but-valid SSTD domain values: report streams, claim
//! windows, ACS sequences, HMM parameter sets, fault plans, and engine
//! configurations — each with a shrinker that only proposes *still
//! valid* simpler cases.
//!
//! Validity is the point: every value these generators produce satisfies
//! the constructor invariants of the production types (stochastic rows,
//! in-range intervals, claims below `num_claims`, …), so a property
//! failure is always a real finding, never a malformed input.

pub mod scenario;

use crate::gen::{gens, Gen};
use crate::rng::TestRng;
use sstd_control::DtmConfig;
use sstd_core::{CheckpointPolicy, SstdConfig};
use sstd_hmm::{CategoricalEmission, Hmm};
use sstd_runtime::FaultPlan;
use sstd_types::{
    ClaimId, GroundTruth, Independence, Report, SourceId, Timeline, Timestamp, Trace, TruthLabel,
    Uncertainty,
};

// ---------------------------------------------------------------------
// HMM parameter sets
// ---------------------------------------------------------------------

/// A categorical HMM plus an observation sequence, kept as raw
/// probability tables so the shrinker can simplify them.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmCase {
    /// Initial distribution (stochastic).
    pub init: Vec<f64>,
    /// Transition matrix (row-stochastic).
    pub trans: Vec<Vec<f64>>,
    /// Per-state emission distributions over symbols (row-stochastic).
    pub emit: Vec<Vec<f64>>,
    /// Observed symbol sequence; every entry is a valid symbol.
    pub obs: Vec<usize>,
}

impl HmmCase {
    /// Number of hidden states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.init.len()
    }

    /// Builds the production model from the tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables are not stochastic — generated and shrunk
    /// cases always are.
    #[must_use]
    pub fn hmm(&self) -> Hmm<CategoricalEmission> {
        Hmm::new(
            self.init.clone(),
            self.trans.clone(),
            CategoricalEmission::new(self.emit.clone()).expect("generated rows are stochastic"),
        )
        .expect("generated parameters are stochastic")
    }
}

/// Draws a stochastic row of `n` entries, floored away from zero so no
/// path has probability exactly 0 (ties and -inf scores would otherwise
/// make oracle comparisons ambiguous).
fn stochastic_row(rng: &mut TestRng, n: usize) -> Vec<f64> {
    let mut row: Vec<f64> = (0..n).map(|_| rng.f64_in(0.05, 1.0)).collect();
    let sum: f64 = row.iter().sum();
    for p in &mut row {
        *p /= sum;
    }
    row
}

fn uniform_row(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}

/// Generates [`HmmCase`]s: 2–3 states, 2–4 symbols, observation length
/// `1..=max_obs`. Shrinking shortens the observations, then snaps
/// probability rows to uniform (the simplest stochastic row) one table
/// at a time.
///
/// # Panics
///
/// Panics if `max_obs` is zero.
#[must_use]
pub fn hmm_case(max_obs: usize) -> Gen<HmmCase> {
    assert!(max_obs > 0, "need at least one observation");
    Gen::new(move |rng| {
        let n = rng.usize_in(2, 3);
        let m = rng.usize_in(2, 4);
        let init = stochastic_row(rng, n);
        let trans = (0..n).map(|_| stochastic_row(rng, n)).collect();
        let emit = (0..n).map(|_| stochastic_row(rng, m)).collect();
        let len = rng.usize_in(1, max_obs);
        let obs = (0..len).map(|_| rng.usize_in(0, m - 1)).collect();
        HmmCase { init, trans, emit, obs }
    })
    .with_shrink(|case: &HmmCase| {
        let mut out = Vec::new();
        let t = case.obs.len();
        if t > 1 {
            let keep = (t / 2).max(1);
            out.push(HmmCase { obs: case.obs[..keep].to_vec(), ..case.clone() });
            out.push(HmmCase { obs: case.obs[t - keep..].to_vec(), ..case.clone() });
            for i in 0..t.min(12) {
                let mut obs = case.obs.clone();
                obs.remove(i);
                out.push(HmmCase { obs, ..case.clone() });
            }
        }
        let n = case.num_states();
        let m = case.emit[0].len();
        if case.init != uniform_row(n) {
            out.push(HmmCase { init: uniform_row(n), ..case.clone() });
        }
        for i in 0..n {
            if case.trans[i] != uniform_row(n) {
                let mut trans = case.trans.clone();
                trans[i] = uniform_row(n);
                out.push(HmmCase { trans, ..case.clone() });
            }
            if case.emit[i] != uniform_row(m) {
                let mut emit = case.emit.clone();
                emit[i] = uniform_row(m);
                out.push(HmmCase { emit, ..case.clone() });
            }
        }
        out
    })
}

// ---------------------------------------------------------------------
// ACS sequences and claim windows
// ---------------------------------------------------------------------

/// A claim's raw per-interval contribution scores plus the sliding
/// window to aggregate them with.
#[derive(Debug, Clone, PartialEq)]
pub struct AcsCase {
    /// Number of timeline intervals (≥ 1).
    pub num_intervals: usize,
    /// Sliding window `sw` (≥ 1; may exceed `num_intervals`).
    pub window: usize,
    /// `(interval, contribution score)` pairs, every interval in range.
    pub scores: Vec<(usize, f64)>,
}

/// Generates [`AcsCase`]s with up to `max_intervals` intervals and up to
/// `max_scores` individual scores. Shrinks by dropping scores, zeroing
/// score values, and pulling the window toward 1.
///
/// # Panics
///
/// Panics if `max_intervals` is zero.
#[must_use]
pub fn acs_case(max_intervals: usize, max_scores: usize) -> Gen<AcsCase> {
    assert!(max_intervals > 0, "need at least one interval");
    Gen::new(move |rng| {
        let num_intervals = rng.usize_in(1, max_intervals);
        let window = rng.usize_in(1, max_intervals + 4);
        let count = rng.usize_in(0, max_scores);
        let scores = (0..count)
            .map(|_| (rng.usize_in(0, num_intervals - 1), rng.f64_in(-2.0, 2.0)))
            .collect();
        AcsCase { num_intervals, window, scores }
    })
    .with_shrink(|case: &AcsCase| {
        let mut out = Vec::new();
        let k = case.scores.len();
        if k > 0 {
            out.push(AcsCase { scores: case.scores[..k / 2].to_vec(), ..case.clone() });
            for i in 0..k.min(12) {
                let mut scores = case.scores.clone();
                scores.remove(i);
                out.push(AcsCase { scores, ..case.clone() });
            }
        }
        if case.window > 1 {
            out.push(AcsCase { window: 1, ..case.clone() });
            out.push(AcsCase { window: case.window / 2, ..case.clone() });
        }
        for i in 0..k.min(8) {
            if case.scores[i].1 != 0.0 {
                let mut scores = case.scores.clone();
                scores[i].1 = 0.0;
                out.push(AcsCase { scores, ..case.clone() });
            }
        }
        out
    })
}

// ---------------------------------------------------------------------
// Report streams / traces
// ---------------------------------------------------------------------

/// Bounds for [`trace_case`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceShape {
    /// Maximum number of claims (≥ 1).
    pub max_claims: usize,
    /// Maximum number of sources (≥ 1).
    pub max_sources: usize,
    /// Maximum timeline intervals (≥ 2).
    pub max_intervals: usize,
    /// Maximum reports per (claim, interval) pair.
    pub max_reports_per_interval: usize,
    /// Lower bound on the fraction of honest reports (the rest flip
    /// their attitude).
    pub min_honest_rate: f64,
}

impl Default for TraceShape {
    fn default() -> Self {
        Self {
            max_claims: 4,
            max_sources: 5,
            max_intervals: 8,
            max_reports_per_interval: 3,
            min_honest_rate: 0.6,
        }
    }
}

/// A generated report stream with its ground truth, kept in raw parts so
/// the shrinker can drop reports and rebuild the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCase {
    /// Claims in the trace (every report's claim is below this).
    pub num_claims: usize,
    /// Sources in the trace.
    pub num_sources: usize,
    /// Timeline intervals; the horizon is `10` seconds per interval.
    pub num_intervals: usize,
    /// Per-claim hidden truth timelines (`num_claims` rows of
    /// `num_intervals` labels).
    pub truth: Vec<Vec<TruthLabel>>,
    /// The scored report stream.
    pub reports: Vec<Report>,
}

impl TraceCase {
    /// Seconds per timeline interval in generated traces.
    pub const SECS_PER_INTERVAL: u64 = 10;

    /// Assembles the production [`Trace`] (reports are sorted by time by
    /// the constructor).
    #[must_use]
    pub fn trace(&self) -> Trace {
        let horizon = Timestamp::from_secs(self.num_intervals as u64 * Self::SECS_PER_INTERVAL);
        let timeline = Timeline::new(horizon, self.num_intervals);
        let mut gt = GroundTruth::new(self.num_intervals);
        for (c, labels) in self.truth.iter().enumerate() {
            gt.insert(ClaimId::new(c as u32), labels.clone());
        }
        Trace::new("testkit", self.reports.clone(), self.num_sources, self.num_claims, timeline, gt)
    }
}

/// Generates [`TraceCase`]s within `shape`: sticky per-claim truth
/// chains, and for each (claim, interval) a burst of reports whose
/// attitudes are honest with a per-trace rate in
/// `[shape.min_honest_rate, 1]`. Shrinking drops reports — halves
/// first, then singles — which is the lever that matters when a
/// pipeline property fails.
///
/// # Panics
///
/// Panics if `shape` has a zero bound or an honest rate outside `[0, 1]`.
#[must_use]
pub fn trace_case(shape: TraceShape) -> Gen<TraceCase> {
    assert!(
        shape.max_claims > 0 && shape.max_sources > 0 && shape.max_intervals > 1,
        "degenerate trace shape"
    );
    assert!((0.0..=1.0).contains(&shape.min_honest_rate), "honest rate outside [0, 1]");
    Gen::new(move |rng| {
        let num_claims = rng.usize_in(1, shape.max_claims);
        let num_sources = rng.usize_in(1, shape.max_sources);
        let num_intervals = rng.usize_in(2, shape.max_intervals);
        let honest_rate = rng.f64_in(shape.min_honest_rate, 1.0);
        let truth: Vec<Vec<TruthLabel>> = (0..num_claims)
            .map(|_| {
                let mut label = TruthLabel::from_bool(rng.chance(0.5));
                (0..num_intervals)
                    .map(|_| {
                        if rng.chance(0.2) {
                            label = label.flipped();
                        }
                        label
                    })
                    .collect()
            })
            .collect();
        let mut reports = Vec::new();
        for (c, labels) in truth.iter().enumerate() {
            for (iv, label) in labels.iter().enumerate() {
                for _ in 0..rng.usize_in(0, shape.max_reports_per_interval) {
                    let t = iv as u64 * TraceCase::SECS_PER_INTERVAL
                        + rng.usize_in(0, TraceCase::SECS_PER_INTERVAL as usize - 1) as u64;
                    let honest = rng.chance(honest_rate);
                    let attitude = if honest {
                        label.honest_attitude()
                    } else {
                        label.honest_attitude().flipped()
                    };
                    reports.push(Report::new(
                        SourceId::new(rng.usize_in(0, num_sources - 1) as u32),
                        ClaimId::new(c as u32),
                        Timestamp::from_secs(t),
                        attitude,
                        Uncertainty::saturating(rng.f64_in(0.0, 0.5)),
                        Independence::saturating(rng.f64_in(0.5, 1.0)),
                    ));
                }
            }
        }
        TraceCase { num_claims, num_sources, num_intervals, truth, reports }
    })
    .with_shrink(|case: &TraceCase| {
        let mut out = Vec::new();
        let k = case.reports.len();
        if k > 0 {
            out.push(TraceCase { reports: case.reports[..k / 2].to_vec(), ..case.clone() });
            out.push(TraceCase { reports: case.reports[k / 2..].to_vec(), ..case.clone() });
            for i in 0..k.min(16) {
                let mut reports = case.reports.clone();
                reports.remove(i);
                out.push(TraceCase { reports, ..case.clone() });
            }
        }
        out
    })
}

// ---------------------------------------------------------------------
// Fault plans and configurations
// ---------------------------------------------------------------------

/// A seeded fault plan in raw parts, shrinkable toward the fault-free
/// plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanCase {
    /// Plan seed (decisions are pure in `(seed, task, attempt)`).
    pub seed: u64,
    /// Transient task-failure probability.
    pub transient_rate: f64,
    /// Straggler probability.
    pub straggler_rate: f64,
    /// Straggler slowdown factor (≥ 1).
    pub slowdown: f64,
}

impl FaultPlanCase {
    /// Builds the runtime [`FaultPlan`].
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_transient_rate(self.transient_rate)
            .with_stragglers(self.straggler_rate, self.slowdown)
    }
}

/// Generates [`FaultPlanCase`]s with transient failures and stragglers
/// (no crashes — crash recovery is a liveness concern, not an
/// equivalence one). Shrinks rates toward zero, i.e. toward the
/// fault-free plan.
#[must_use]
pub fn fault_plan_case() -> Gen<FaultPlanCase> {
    Gen::new(|rng| FaultPlanCase {
        seed: rng.next_u64() % 1_000_000,
        transient_rate: rng.f64_in(0.0, 0.45),
        straggler_rate: rng.f64_in(0.0, 0.3),
        slowdown: rng.f64_in(1.5, 4.0),
    })
    .with_shrink(|case: &FaultPlanCase| {
        let mut out = Vec::new();
        if case.transient_rate != 0.0 || case.straggler_rate != 0.0 {
            out.push(FaultPlanCase { transient_rate: 0.0, straggler_rate: 0.0, ..*case });
        }
        if case.transient_rate != 0.0 {
            out.push(FaultPlanCase { transient_rate: 0.0, ..*case });
        }
        if case.straggler_rate != 0.0 {
            out.push(FaultPlanCase { straggler_rate: 0.0, ..*case });
        }
        if case.seed != 0 {
            out.push(FaultPlanCase { seed: 0, ..*case });
        }
        out
    })
}

/// Generates valid [`SstdConfig`]s across the engine's knob space:
/// fixed or adaptive windows, variable stickiness, EM on/off, and
/// different streaming refit periods. Every draw passes the fallible
/// builder's validation by construction.
#[must_use]
pub fn sstd_config() -> Gen<SstdConfig> {
    Gen::new(|rng| {
        let mut b = SstdConfig::builder()
            .stay_probability(rng.f64_in(0.55, 0.95))
            .em_iterations(rng.usize_in(1, 8))
            .em_tolerance(1e-4)
            .train(rng.chance(0.8))
            .streaming_refit(rng.usize_in(0, 8));
        if rng.chance(0.5) {
            b = b.window(rng.usize_in(1, 6));
        } else {
            b = b.adaptive_window(true).max_window(rng.usize_in(1, 10));
        }
        b.build().expect("generated configuration is valid")
    })
}

/// Generates valid [`DtmConfig`]s: PID gains, knob multipliers, worker
/// bounds, and control on/off. Every draw passes `DtmConfig::validate`.
#[must_use]
pub fn dtm_config() -> Gen<DtmConfig> {
    Gen::new(|rng| {
        let initial = rng.usize_in(1, 8);
        let max = rng.usize_in(initial, 32);
        DtmConfig::builder()
            .kp(rng.f64_in(0.1, 3.0))
            .ki(rng.f64_in(0.0, 1.0))
            .kd(rng.f64_in(0.0, 1.0))
            .theta3(rng.f64_in(1.0, 4.0))
            .theta4(rng.f64_in(1.0, 3.0))
            .sample_period(rng.f64_in(0.5, 2.0))
            .initial_workers(initial)
            .max_workers(max)
            .control_enabled(rng.chance(0.5))
            .build()
            .expect("generated configuration is valid")
    })
}

// ---------------------------------------------------------------------
// Crash/recovery scenarios
// ---------------------------------------------------------------------

/// A complete crash-recovery scenario: a report stream, a seeded chaos
/// plan for the data path, a crash schedule, and a checkpoint cadence —
/// everything the differential suite needs to compare a crashed-and-
/// recovered ingest run against an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryCase {
    /// The underlying report stream with planted truth.
    pub trace: TraceCase,
    /// Chaos plan seed.
    pub seed: u64,
    /// Ingest drop probability.
    pub drop_rate: f64,
    /// Ingest duplicate probability.
    pub duplicate_rate: f64,
    /// Ingest reorder probability.
    pub reorder_rate: f64,
    /// Maximum reorder displacement (≥ 1).
    pub reorder_depth: u32,
    /// Payload-corruption probability.
    pub corrupt_rate: f64,
    /// Crash points as fractions of the delivered stream length, in
    /// `[0, 1)`; resolve with [`crash_positions`](Self::crash_positions).
    pub crash_fracs: Vec<f64>,
    /// Records the at-least-once transport re-delivers after each crash.
    pub redelivery: usize,
    /// Checkpoint cadence in applied reports (`0` = never checkpoint, so
    /// recovery replays the whole journal).
    pub checkpoint_every: u64,
}

impl RecoveryCase {
    /// Builds the runtime [`FaultPlan`] carrying the ingest chaos.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_ingest_drop_rate(self.drop_rate)
            .with_ingest_duplicate_rate(self.duplicate_rate)
            .with_ingest_reorder(self.reorder_rate, self.reorder_depth)
            .with_ingest_corrupt_rate(self.corrupt_rate)
    }

    /// The supervisor's checkpoint cadence.
    #[must_use]
    pub fn policy(&self) -> CheckpointPolicy {
        if self.checkpoint_every == 0 {
            CheckpointPolicy::DISABLED
        } else {
            CheckpointPolicy::every_reports(self.checkpoint_every)
        }
    }

    /// Resolves the crash fractions against a delivered stream of
    /// `delivered_len` records: sorted, deduplicated consume indices.
    #[must_use]
    pub fn crash_positions(&self, delivered_len: usize) -> Vec<usize> {
        if delivered_len == 0 {
            return Vec::new();
        }
        let mut out: Vec<usize> = self
            .crash_fracs
            .iter()
            .map(|f| ((f * delivered_len as f64) as usize).min(delivered_len - 1))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Generates [`RecoveryCase`]s: a generated trace, moderate seeded chaos
/// on the data path (rates low enough that the combined budget stays
/// well under 1), up to three crash points, and a checkpoint cadence
/// that is sometimes disabled. Shrinking removes the chaos first, then
/// the crashes, then thins the report stream — so a minimized failure
/// names the smallest interference that still breaks the guarantee.
#[must_use]
pub fn recovery_case(shape: TraceShape) -> Gen<RecoveryCase> {
    let traces = trace_case(shape);
    Gen::new(move |rng| RecoveryCase {
        trace: traces.generate(rng),
        seed: rng.next_u64() % 1_000_000,
        drop_rate: rng.f64_in(0.0, 0.08),
        duplicate_rate: rng.f64_in(0.0, 0.08),
        reorder_rate: rng.f64_in(0.0, 0.12),
        reorder_depth: rng.usize_in(1, 5) as u32,
        corrupt_rate: rng.f64_in(0.0, 0.05),
        crash_fracs: (0..rng.usize_in(0, 3)).map(|_| rng.f64_in(0.0, 0.999)).collect(),
        redelivery: rng.usize_in(0, 6),
        checkpoint_every: if rng.chance(0.2) { 0 } else { rng.usize_in(1, 64) as u64 },
    })
    .with_shrink(|case: &RecoveryCase| {
        let mut out = Vec::new();
        let chaotic = case.drop_rate != 0.0
            || case.duplicate_rate != 0.0
            || case.reorder_rate != 0.0
            || case.corrupt_rate != 0.0;
        if chaotic {
            out.push(RecoveryCase {
                drop_rate: 0.0,
                duplicate_rate: 0.0,
                reorder_rate: 0.0,
                corrupt_rate: 0.0,
                ..case.clone()
            });
        }
        if !case.crash_fracs.is_empty() {
            out.push(RecoveryCase { crash_fracs: Vec::new(), ..case.clone() });
            for i in 0..case.crash_fracs.len() {
                let mut fracs = case.crash_fracs.clone();
                fracs.remove(i);
                out.push(RecoveryCase { crash_fracs: fracs, ..case.clone() });
            }
        }
        if case.checkpoint_every != 0 {
            out.push(RecoveryCase { checkpoint_every: 0, ..case.clone() });
        }
        let k = case.trace.reports.len();
        if k > 0 {
            let mut half = case.trace.clone();
            half.reports.truncate(k / 2);
            out.push(RecoveryCase { trace: half, ..case.clone() });
        }
        out
    })
}

// ---------------------------------------------------------------------
// Sharded live-ingest scenarios
// ---------------------------------------------------------------------

/// A complete sharded-service scenario: a report stream (to be fed in
/// global time order), a shard count, queue and checkpoint parameters,
/// and a shard-crash schedule — everything the `serve_differential`
/// suite needs to compare the sharded service against one streaming
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCase {
    /// The underlying report stream with planted truth.
    pub trace: TraceCase,
    /// Shards to run (≥ 1).
    pub shards: usize,
    /// Per-shard ingest queue bound (≥ 1).
    pub queue_capacity: usize,
    /// Per-shard checkpoint cadence in applied reports (0 = never).
    pub checkpoint_every: usize,
    /// Crash points as fractions of the time-sorted stream, in
    /// `[0, 1)`; every shard crashes at each point.
    pub crash_fracs: Vec<f64>,
}

impl ServiceCase {
    /// The stream in global time order (stable, so each claim's
    /// relative report order is preserved) — the ordering under which
    /// the sharded service promises bit-identity with a single engine.
    #[must_use]
    pub fn sorted_reports(&self) -> Vec<Report> {
        let mut reports = self.trace.reports.clone();
        reports.sort_by_key(Report::time);
        reports
    }

    /// The trace's timeline.
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        let horizon =
            Timestamp::from_secs(self.trace.num_intervals as u64 * TraceCase::SECS_PER_INTERVAL);
        Timeline::new(horizon, self.trace.num_intervals)
    }

    /// Resolves the crash fractions against a stream of `len` reports:
    /// sorted, deduplicated ingest indices.
    #[must_use]
    pub fn crash_positions(&self, len: usize) -> Vec<usize> {
        if len == 0 {
            return Vec::new();
        }
        let mut out: Vec<usize> =
            self.crash_fracs.iter().map(|f| ((f * len as f64) as usize).min(len - 1)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Generates [`ServiceCase`]s: a generated trace, 1–4 shards, a small
/// bounded queue, a checkpoint cadence that is sometimes disabled, and
/// up to three crash points. Shrinking removes the crashes first, then
/// collapses to one shard, then disables checkpointing, then thins the
/// report stream — so a minimized failure names the smallest service
/// configuration that still breaks the equivalence.
#[must_use]
pub fn service_case(shape: TraceShape) -> Gen<ServiceCase> {
    let traces = trace_case(shape);
    Gen::new(move |rng| ServiceCase {
        trace: traces.generate(rng),
        shards: rng.usize_in(1, 4),
        queue_capacity: rng.usize_in(4, 64),
        checkpoint_every: if rng.chance(0.25) { 0 } else { rng.usize_in(1, 48) },
        crash_fracs: (0..rng.usize_in(0, 3)).map(|_| rng.f64_in(0.0, 0.999)).collect(),
    })
    .with_shrink(|case: &ServiceCase| {
        let mut out = Vec::new();
        if !case.crash_fracs.is_empty() {
            out.push(ServiceCase { crash_fracs: Vec::new(), ..case.clone() });
            for i in 0..case.crash_fracs.len() {
                let mut fracs = case.crash_fracs.clone();
                fracs.remove(i);
                out.push(ServiceCase { crash_fracs: fracs, ..case.clone() });
            }
        }
        if case.shards > 1 {
            out.push(ServiceCase { shards: 1, ..case.clone() });
            out.push(ServiceCase { shards: case.shards - 1, ..case.clone() });
        }
        if case.checkpoint_every != 0 {
            out.push(ServiceCase { checkpoint_every: 0, ..case.clone() });
        }
        let k = case.trace.reports.len();
        if k > 0 {
            let mut half = case.trace.clone();
            half.reports.truncate(k / 2);
            out.push(ServiceCase { trace: half, ..case.clone() });
        }
        out
    })
}

// ---------------------------------------------------------------------
// Social-media text
// ---------------------------------------------------------------------

/// A word pool that exercises the text substrate's edge cases: ASCII,
/// accented latin, CJK, Cyrillic, emoji, apostrophes, digits, and pure
/// punctuation.
#[must_use]
pub fn unicode_words() -> Vec<String> {
    [
        "the",
        "flood",
        "bridge",
        "closed",
        "Explosion",
        "DOWNTOWN",
        "café",
        "naïve",
        "日本語",
        "서울",
        "москва",
        "🔥",
        "🚒",
        "😱",
        "it's",
        "don't",
        "42",
        "no1",
        "#hashtag",
        "@user",
        "...",
        "—",
        "",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect()
}

/// Generates token lists over [`unicode_words`] (0–10 words), shrinking
/// by dropping words. Join with spaces for a post string.
#[must_use]
pub fn post_tokens() -> Gen<Vec<String>> {
    gens::vec_of(gens::one_of(unicode_words()), 0, 10)
}

/// Generates whole post strings (space-joined [`post_tokens`]).
#[must_use]
pub fn post_text() -> Gen<String> {
    post_tokens().map(|words| words.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_with, CheckConfig};

    #[test]
    fn hmm_cases_are_always_stochastic() {
        let g = hmm_case(12);
        let n = check_with(CheckConfig::new(300), &g, |case| {
            let hmm = case.hmm(); // panics if any row is not stochastic
            if case.obs.iter().all(|&o| o < hmm.emission().num_symbols()) {
                Ok(())
            } else {
                Err("observation symbol out of range".into())
            }
        })
        .expect("every generated HMM is valid");
        assert_eq!(n, 300);
    }

    #[test]
    fn hmm_shrinks_stay_valid() {
        let g = hmm_case(12);
        let mut rng = TestRng::new(31);
        for _ in 0..50 {
            let case = g.generate(&mut rng);
            for s in g.shrink(&case) {
                let _ = s.hmm();
                assert!(!s.obs.is_empty(), "shrinker never drops below one observation");
            }
        }
    }

    #[test]
    fn acs_cases_keep_intervals_in_range() {
        let g = acs_case(16, 30);
        let n = check_with(CheckConfig::new(300), &g, |case| {
            if case.scores.iter().all(|&(i, _)| i < case.num_intervals) {
                Ok(())
            } else {
                Err("score interval out of range".into())
            }
        })
        .expect("every case is in range");
        assert_eq!(n, 300);
        let mut rng = TestRng::new(7);
        let case = g.generate(&mut rng);
        for s in g.shrink(&case) {
            assert!(s.scores.iter().all(|&(i, _)| i < s.num_intervals));
            assert!(s.window >= 1);
        }
    }

    #[test]
    fn trace_cases_build_valid_traces() {
        let g = trace_case(TraceShape::default());
        let n = check_with(CheckConfig::new(100), &g, |case| {
            let trace = case.trace(); // panics on invalid references
            if trace.timeline().num_intervals() == case.num_intervals {
                Ok(())
            } else {
                Err("interval mismatch".into())
            }
        })
        .expect("every trace is valid");
        assert_eq!(n, 100);
    }

    #[test]
    fn trace_shrinks_only_drop_reports() {
        let g = trace_case(TraceShape::default());
        let mut rng = TestRng::new(3);
        let case = g.generate(&mut rng);
        for s in g.shrink(&case) {
            assert!(s.reports.len() < case.reports.len());
            assert_eq!(s.truth, case.truth, "truth timelines are preserved");
            let _ = s.trace();
        }
    }

    #[test]
    fn fault_plans_shrink_toward_fault_free() {
        let g = fault_plan_case();
        let mut rng = TestRng::new(9);
        let case = g.generate(&mut rng);
        let _ = case.plan();
        if case.transient_rate != 0.0 || case.straggler_rate != 0.0 {
            let first = g.shrink(&case)[0];
            assert_eq!((first.transient_rate, first.straggler_rate), (0.0, 0.0));
        }
    }

    #[test]
    fn recovery_cases_are_valid_and_shrink_toward_calm() {
        let g = recovery_case(TraceShape::default());
        let n = check_with(CheckConfig::new(200), &g, |case| {
            let _ = case.plan(); // panics if the fault budget is invalid
            let _ = case.policy();
            let positions = case.crash_positions(37);
            if positions.iter().all(|&p| p < 37) && positions.windows(2).all(|w| w[0] < w[1]) {
                Ok(())
            } else {
                Err("crash positions out of range or unsorted".into())
            }
        })
        .expect("every recovery case is valid");
        assert_eq!(n, 200);

        let mut rng = TestRng::new(41);
        let case = g.generate(&mut rng);
        if case.drop_rate != 0.0 || case.corrupt_rate != 0.0 {
            let first = &g.shrink(&case)[0];
            assert_eq!(first.drop_rate, 0.0);
            assert_eq!(first.corrupt_rate, 0.0);
        }
        for s in g.shrink(&case) {
            let _ = s.plan();
            let _ = s.trace.trace();
        }
    }

    #[test]
    fn service_cases_are_valid_and_shrink_toward_one_calm_shard() {
        let g = service_case(TraceShape::default());
        let n = check_with(CheckConfig::new(200), &g, |case| {
            if case.shards == 0 || case.queue_capacity == 0 {
                return Err("degenerate service shape".into());
            }
            let sorted = case.sorted_reports();
            if sorted.windows(2).any(|w| w[0].time() > w[1].time()) {
                return Err("sorted_reports is not time-ordered".into());
            }
            let positions = case.crash_positions(sorted.len().max(1));
            if positions.windows(2).any(|w| w[0] >= w[1]) {
                return Err("crash positions unsorted or duplicated".into());
            }
            let _ = case.timeline();
            Ok(())
        })
        .expect("every service case is valid");
        assert_eq!(n, 200);

        let mut rng = TestRng::new(23);
        let case = g.generate(&mut rng);
        if !case.crash_fracs.is_empty() {
            assert!(g.shrink(&case)[0].crash_fracs.is_empty(), "crashes shrink away first");
        }
        for s in g.shrink(&case) {
            assert!(s.shards >= 1);
            let _ = s.timeline();
        }
    }

    #[test]
    fn generated_configs_validate() {
        let mut rng = TestRng::new(17);
        let sg = sstd_config();
        let dg = dtm_config();
        for _ in 0..200 {
            let c = sg.generate(&mut rng);
            assert!(c.window >= 1 && c.em_iterations >= 1);
            let d = dg.generate(&mut rng);
            d.validate().expect("generated DTM config is valid");
            assert!(d.initial_workers <= d.max_workers);
        }
    }

    #[test]
    fn post_text_is_deterministic_per_seed() {
        let g = post_text();
        let a = g.generate(&mut TestRng::new(5));
        let b = g.generate(&mut TestRng::new(5));
        assert_eq!(a, b);
    }
}
