//! The harness must catch a deliberately broken implementation — and
//! report it with a reproducible seed and a *small* shrunk case.
//!
//! The mutant here is the classic transcription bug: decoding with the
//! transition matrix transposed. The differential property (mutant
//! Viterbi vs. the exhaustive-enumeration oracle) has to flag it within
//! the default case budget, replay it from the printed seed, and shrink
//! the counterexample to a handful of observations.

use sstd_hmm::{viterbi, CategoricalEmission, Hmm};
use sstd_testkit::{check_with, domain, oracle, CheckConfig};

/// Decodes with the rows and columns of the transition matrix swapped —
/// a bug an optimized reimplementation could plausibly introduce.
fn transposed_viterbi(case: &domain::HmmCase) -> Vec<usize> {
    let n = case.trans.len();
    let mut transposed = vec![vec![0.0; n]; n];
    for (i, row) in case.trans.iter().enumerate() {
        for (j, &p) in row.iter().enumerate() {
            transposed[j][i] = p;
        }
    }
    // Transposing a stochastic matrix does not keep rows stochastic, so
    // renormalize each row: the mutant is still a "valid-looking" model.
    for row in &mut transposed {
        let sum: f64 = row.iter().sum();
        for p in row.iter_mut() {
            *p /= sum;
        }
    }
    let mutant = Hmm::new(
        case.init.clone(),
        transposed,
        CategoricalEmission::new(case.emit.clone()).expect("rows stochastic"),
    )
    .expect("renormalized mutant is a valid model");
    viterbi(&mutant, &case.obs)
}

fn mutant_disagrees_with_oracle(case: &domain::HmmCase) -> Result<(), String> {
    let expected = oracle::hmm::best_path(&case.hmm(), &case.obs);
    let got = transposed_viterbi(case);
    // Compare by achieved score, not by path: a different path with the
    // same joint probability is not a bug.
    let hmm = case.hmm();
    let best = oracle::hmm::log_joint(&hmm, &case.obs, &expected);
    let achieved = oracle::hmm::log_joint(&hmm, &case.obs, &got);
    if achieved < best - 1e-9 {
        Err(format!("mutant path {got:?} scores {achieved}, oracle {expected:?} scores {best}"))
    } else {
        Ok(())
    }
}

#[test]
fn transposed_transition_matrix_is_caught_and_shrunk() {
    let gen = domain::hmm_case(10);
    let cex = check_with(CheckConfig::new(1_000), &gen, mutant_disagrees_with_oracle)
        .expect_err("the transposed-matrix mutant must be caught within 1000 cases");

    // The report carries everything needed to reproduce by hand.
    let report = cex.report("transposed_transition_matrix");
    assert!(report.contains(&format!("TESTKIT_SEED={}", cex.case_seed)), "{report}");
    assert!(report.contains("TESTKIT_CASES=1"), "{report}");

    // The shrinker must have reduced the case to a genuinely small one.
    assert!(
        cex.minimized.obs.len() <= 4,
        "expected a minimal counterexample of at most 4 observations, got {:?}",
        cex.minimized
    );
    assert!(
        mutant_disagrees_with_oracle(&cex.minimized).is_err(),
        "the minimized case must still expose the mutant"
    );

    // And the printed seed must replay the same failing draw.
    let replay = check_with(
        CheckConfig::new(1).with_seed(cex.case_seed),
        &gen,
        mutant_disagrees_with_oracle,
    )
    .expect_err("replay from the printed seed fails identically");
    assert_eq!(replay.original, cex.original, "seed line reproduces the exact case");
}

#[test]
fn unmutated_viterbi_survives_the_same_property() {
    // Control: the real implementation passes the identical differential
    // property, so the mutant test above measures the harness, not noise.
    let gen = domain::hmm_case(10);
    let n = check_with(CheckConfig::new(1_000), &gen, |case| {
        let hmm = case.hmm();
        let expected = oracle::hmm::best_path(&hmm, &case.obs);
        let got = viterbi(&hmm, &case.obs);
        let best = oracle::hmm::log_joint(&hmm, &case.obs, &expected);
        let achieved = oracle::hmm::log_joint(&hmm, &case.obs, &got);
        if achieved < best - 1e-9 {
            Err(format!("production path {got:?} underscores oracle {expected:?}"))
        } else {
            Ok(())
        }
    })
    .expect("production Viterbi is score-optimal on every case");
    assert_eq!(n, 1_000);
}
