//! The adversarial scenario generators must be trustworthy before the
//! tournament can lean on them: every generated scenario has to satisfy
//! its own family invariants, the adversity `level` has to actually
//! steer the statistic it claims to control, and a property failure has
//! to shrink to the family's *minimal* counterexample (a two-source
//! collusion community; a single planted truth flip) with a seed line
//! that replays the exact draw.

use sstd_testkit::domain::scenario::{any_scenario, scenario, Family, Scenario, ScenarioSpec};
use sstd_testkit::domain::TraceCase;
use sstd_testkit::{check, check_with, CheckConfig};
use sstd_types::SourceId;

/// A population large enough that empirical rates concentrate near the
/// generator's configured probabilities.
fn big_spec(family: Family, level: f64) -> ScenarioSpec {
    ScenarioSpec {
        family,
        level,
        seed: 2017,
        num_claims: 20,
        num_sources: 10,
        num_intervals: 10,
        reports_per_cell: 5,
    }
}

fn family_invariants(sc: &Scenario) -> Result<(), String> {
    let spec = &sc.spec;

    // Planted truth is a full claims × intervals matrix.
    if sc.truth.len() != spec.num_claims
        || sc.truth.iter().any(|labels| labels.len() != spec.num_intervals)
    {
        return Err(format!("truth matrix is not {} x {}", spec.num_claims, spec.num_intervals));
    }

    // Every report stays inside the declared populations and timeline.
    let horizon = spec.num_intervals as u64 * TraceCase::SECS_PER_INTERVAL;
    for r in &sc.reports {
        if r.source().index() >= spec.num_sources {
            return Err(format!("report from out-of-range source {:?}", r.source()));
        }
        if r.claim().index() >= spec.num_claims {
            return Err(format!("report on out-of-range claim {:?}", r.claim()));
        }
        if r.time().as_secs() >= horizon {
            return Err(format!("report at {:?} is past the {horizon}s horizon", r.time()));
        }
    }

    // The collusion graph exists exactly when the family and level call
    // for it, always as edges from the template (source 0) to distinct
    // copiers.
    let expected_edges = spec.colluders();
    if sc.collusion.len() != expected_edges {
        return Err(format!(
            "collusion graph has {} edges, spec says {expected_edges}",
            sc.collusion.len()
        ));
    }
    if (spec.family != Family::Collusion || spec.level <= 0.0) && !sc.collusion.is_empty() {
        return Err("collusion edges outside the collusion regime".to_string());
    }
    for (i, &(template, copier)) in sc.collusion.iter().enumerate() {
        if template != SourceId::new(0) || copier != SourceId::new(i as u32 + 1) {
            return Err(format!("edge {i} is {template:?} -> {copier:?}"));
        }
    }

    // Derived statistics are coherent with the report stream.
    if sc.coverage().iter().sum::<usize>() != sc.reports.len() {
        return Err("coverage histogram does not sum to the report count".to_string());
    }
    let ratio = sc.conflict_ratio();
    if !(0.0..=1.0).contains(&ratio) {
        return Err(format!("conflict ratio {ratio} outside [0, 1]"));
    }
    if spec.family == Family::TruthDrift && spec.level == 0.0 && sc.truth_flips() != 0 {
        return Err("drift level 0 planted a truth flip".to_string());
    }

    // The build is a pure function of the spec, and the trace assembles
    // with matching dimensions.
    if spec.build() != *sc {
        return Err("rebuilding the spec produced a different scenario".to_string());
    }
    let trace = sc.trace();
    if trace.num_claims() != spec.num_claims
        || trace.timeline().num_intervals() != spec.num_intervals
    {
        return Err("trace dimensions disagree with the spec".to_string());
    }
    Ok(())
}

#[test]
fn every_scenario_satisfies_its_family_invariants() {
    check("scenario_invariants", 1_000, &any_scenario(), family_invariants);
}

#[test]
fn conflict_ratio_tracks_the_level_axis() {
    // ~1000 honest-pool reports per level: the empirical conflict ratio
    // must land near the configured dishonesty 0.1 + 0.4·level.
    for k in 0..=10 {
        let level = f64::from(k) / 10.0;
        let sc = big_spec(Family::ConflictRatio, level).build();
        let expected = sc.spec.dishonesty();
        let got = sc.conflict_ratio();
        assert!(
            (got - expected).abs() < 0.07,
            "level {level}: conflict ratio {got} far from configured {expected}"
        );
    }
}

#[test]
fn coverage_skew_concentrates_reports_on_the_head() {
    let uniform = big_spec(Family::CoverageSkew, 0.0).build().coverage();
    let total: usize = uniform.iter().sum();
    let fair = total / uniform.len();
    assert!(
        uniform[0] < fair * 2,
        "level 0 must be near-uniform, head got {} of {total}",
        uniform[0]
    );

    let skewed = big_spec(Family::CoverageSkew, 1.0).build().coverage();
    let total: usize = skewed.iter().sum();
    assert!(
        skewed[0] * 2 > total,
        "Zipf exponent 3 must route most reports through the head, got {} of {total}",
        skewed[0]
    );
}

#[test]
fn long_tail_shifts_reports_to_tail_sources() {
    let head_heavy = big_spec(Family::LongTail, 0.0).build().coverage();
    let head: usize = head_heavy.iter().take(3).sum();
    let tail: usize = head_heavy.iter().skip(3).sum();
    assert!(head > tail, "level 0 keeps evidence on the head: {head} vs {tail}");

    let tail_heavy = big_spec(Family::LongTail, 1.0).build().coverage();
    let head: usize = tail_heavy.iter().take(3).sum();
    let tail: usize = tail_heavy.iter().skip(3).sum();
    assert!(tail > head * 2, "level 1 drowns the head in tail evidence: {head} vs {tail}");
}

#[test]
fn collusion_failures_shrink_to_the_two_source_community() {
    // A property that rejects any collusion community at all must shrink
    // to the minimal one: two sources, a single template → copier edge,
    // at the smallest level (0.1) that still forms a community, with
    // every other population knob at its floor.
    let gen = scenario(Family::Collusion);
    let cex = check_with(CheckConfig::new(300), &gen, |sc: &Scenario| {
        if sc.collusion.is_empty() {
            Ok(())
        } else {
            Err(format!("{} copy edge(s) present", sc.collusion.len()))
        }
    })
    .expect_err("level > 0 collusion scenarios appear within 300 cases");

    let min = &cex.minimized;
    assert_eq!(min.spec.num_sources, 2, "{:?}", min.spec);
    assert_eq!(min.spec.num_claims, 1, "{:?}", min.spec);
    assert_eq!(min.spec.num_intervals, 2, "{:?}", min.spec);
    assert_eq!(min.spec.reports_per_cell, 1, "{:?}", min.spec);
    assert!((min.spec.level - 0.1).abs() < 1e-9, "{:?}", min.spec);
    assert_eq!(min.collusion, vec![(SourceId::new(0), SourceId::new(1))]);

    // The printed seed line replays the exact original draw.
    let replay = check_with(CheckConfig::new(1).with_seed(cex.case_seed), &gen, |sc: &Scenario| {
        if sc.collusion.is_empty() {
            Ok(())
        } else {
            Err("edges".into())
        }
    })
    .expect_err("replay from the printed seed fails identically");
    assert_eq!(replay.original, cex.original);
}

#[test]
fn drift_failures_shrink_toward_zero_flips() {
    // A property that rejects any planted truth flip: shrinking drives
    // the level down (drift is directly proportional to it) and the
    // populations toward the floor, landing on a scenario with the
    // fewest flips that still fails — while level 0 itself is flip-free
    // by construction, which is exactly why it cannot be the minimum.
    let gen = scenario(Family::TruthDrift);
    let cex = check_with(CheckConfig::new(300), &gen, |sc: &Scenario| {
        let flips = sc.truth_flips();
        if flips == 0 {
            Ok(())
        } else {
            Err(format!("{flips} truth flip(s)"))
        }
    })
    .expect_err("drifting scenarios appear within 300 cases");

    let (orig, min) = (&cex.original, &cex.minimized);
    assert!(min.truth_flips() >= 1, "the minimized case must still fail");
    assert!(min.truth_flips() <= orig.truth_flips());
    assert!(min.spec.level <= orig.spec.level, "shrinking never raises the level");
    assert!(min.spec.level > 0.0, "level 0 has zero drift and cannot fail");
    assert!(
        min.spec.num_claims * min.spec.num_intervals
            <= orig.spec.num_claims * orig.spec.num_intervals,
        "shrinking never grows the truth matrix"
    );
    // The benign end of the axis really is flip-free for this very spec.
    let benign = ScenarioSpec { level: 0.0, ..min.spec }.build();
    assert_eq!(benign.truth_flips(), 0);
}
