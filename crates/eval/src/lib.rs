//! The SSTD evaluation harness (paper §V).
//!
//! This crate regenerates every table and figure of the paper's
//! evaluation:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table II (trace statistics) | [`exp::table2`] | `table2` |
//! | Tables III–V (accuracy/precision/recall/F1 × 3 traces) | [`exp::accuracy`] | `table3_4_5` |
//! | Fig. 4 (execution time vs. data size) | [`exp::fig4`] | `fig4` |
//! | Fig. 5 (running time vs. streaming speed) | [`exp::fig5`] | `fig5` |
//! | Fig. 6 (deadline hit rate vs. deadline) | [`exp::fig6`] | `fig6` |
//! | Fig. 7 (speedup vs. workers) | [`exp::fig7`] | `fig7` |
//!
//! Shared infrastructure: [`metrics`] (the four effectiveness metrics),
//! [`schemes`] (a uniform adapter running SSTD and every baseline on a
//! trace, interval by interval), and [`timing`] (wall-clock measurement).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod exp;
pub mod metrics;
pub mod schemes;
pub mod timing;

pub use metrics::ConfusionMatrix;
pub use schemes::{run_scheme, streaming_scheme, SchemeKind};
