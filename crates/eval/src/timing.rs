//! Wall-clock measurement helpers for the efficiency experiments.

use crate::{run_scheme, SchemeKind};
use sstd_types::Trace;
use std::time::{Duration, Instant};

/// Measures the wall-clock time `kind` takes to process `trace` end to
/// end (the Fig. 4 quantity).
#[must_use]
pub fn time_scheme(kind: SchemeKind, trace: &Trace) -> Duration {
    let start = Instant::now();
    let estimates = run_scheme(kind, trace);
    let elapsed = start.elapsed();
    // Keep the optimizer from discarding the run.
    std::hint::black_box(estimates.num_claims());
    elapsed
}

/// Measures the per-report processing cost of `kind` on a calibration
/// trace — the `θ₁` the DES-based experiments feed their execution
/// models.
///
/// # Panics
///
/// Panics if the trace has no reports.
#[must_use]
pub fn per_report_cost(kind: SchemeKind, trace: &Trace) -> Duration {
    assert!(!trace.reports().is_empty(), "calibration trace must have reports");
    let total = time_scheme(kind, trace);
    total / trace.reports().len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_data::{Scenario, TraceBuilder};

    #[test]
    fn timing_is_positive_and_cost_is_per_report() {
        let trace = TraceBuilder::scenario(Scenario::Synthetic).scale(0.001).seed(2).build();
        let t = time_scheme(SchemeKind::MajorityVote, &trace);
        assert!(t > Duration::ZERO);
        let c = per_report_cost(SchemeKind::MajorityVote, &trace);
        assert!(c <= t);
    }
}
