//! Recovery-cost extension experiment: checkpoint cadence vs. replay
//! work under injected ingest crashes and data-path chaos.
//!
//! Not a figure in the paper — but the paper's streaming deployment
//! (§III-D, §IV) runs for the lifetime of an event, and on the HTCondor
//! substrate of §IV-A1 eviction is routine, so the ingest loop *will*
//! die mid-event. This sweep quantifies the durability tradeoff the
//! [`sstd_core::Supervisor`] exposes: checkpointing often costs bytes
//! written per applied report; checkpointing rarely costs journal replay
//! (and so recovery latency) per crash. In every cell the recovered
//! estimates are required to be bit-identical to the uninterrupted
//! run's — the sweep measures the *price* of the guarantee, never a
//! relaxation of it.

use sstd_core::{chaos_stream, CheckpointPolicy, SstdConfig, Supervisor};
use sstd_data::{Scenario, TraceBuilder};
use sstd_runtime::{FaultPlan, RetryPolicy};

/// One measured grid cell: a checkpoint cadence under a crash schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPoint {
    /// Checkpoint cadence in applied reports (`0` = never).
    pub checkpoint_every: u64,
    /// Crashes injected over the run.
    pub num_crashes: usize,
    /// Whether ingest chaos (drop/duplicate/reorder/corrupt) was on.
    pub chaos: bool,
    /// Reports applied to the engine (unique, intact).
    pub applied_reports: u64,
    /// Checkpoints written over the run.
    pub checkpoints: u64,
    /// Total bytes of checkpoint state written.
    pub checkpoint_bytes: u64,
    /// Journal entries replayed across all recoveries.
    pub replayed: u64,
    /// Mean replay length per recovery (0 when no crash).
    pub mean_replay: f64,
    /// Recovered estimates were bit-identical to the uninterrupted run.
    pub identical: bool,
}

/// The standard event for the sweep: a small deterministic Boston
/// Bombing trace (~hundreds of reports — big enough that cadence
/// matters, small enough for CI).
fn trace() -> sstd_types::Trace {
    TraceBuilder::scenario(Scenario::BostonBombing).scale(0.02).seed(42).build()
}

/// The chaos plan used when `chaos` is on: moderate seeded drop,
/// duplication, bounded reorder, and payload corruption.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(2017)
        .with_ingest_drop_rate(0.05)
        .with_ingest_duplicate_rate(0.05)
        .with_ingest_reorder(0.08, 4)
        .with_ingest_corrupt_rate(0.02)
}

/// Evenly spaced crash positions over a stream of `len` records.
fn crash_schedule(num_crashes: usize, len: usize) -> Vec<usize> {
    (1..=num_crashes).map(|i| i * len / (num_crashes + 1)).collect()
}

/// Runs the sweep: every checkpoint cadence × crash count, with and
/// without data-path chaos. Deterministic: fixed trace seed, fixed
/// chaos seed, evenly spaced crashes.
#[must_use]
pub fn run(cadences: &[u64], crash_counts: &[usize]) -> Vec<RecoveryPoint> {
    let trace = trace();
    let config = SstdConfig::default();
    let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
    let mut out = Vec::new();
    for &chaos in &[false, true] {
        let records = if chaos {
            chaos_stream(&chaos_plan(), trace.reports())
        } else {
            chaos_stream(&FaultPlan::new(0), trace.reports())
        };
        for &cadence in cadences {
            let policy = if cadence == 0 {
                CheckpointPolicy::DISABLED
            } else {
                CheckpointPolicy::every_reports(cadence)
            };
            // Uninterrupted reference for this (chaos, cadence) row.
            let mut reference =
                Supervisor::new(config, trace.timeline().clone(), policy).with_retry(retry);
            reference.run(&records, &[], 0).expect("reference run cannot crash");
            let (want, _) = reference.finish();

            for &n in crash_counts {
                let crashes = crash_schedule(n, records.len());
                let mut sup =
                    Supervisor::new(config, trace.timeline().clone(), policy).with_retry(retry);
                sup.run(&records, &crashes, 4).expect("crash budget is generous");
                let applied = sup.applied_reports();
                let (got, telemetry) = sup.finish();
                out.push(RecoveryPoint {
                    checkpoint_every: cadence,
                    num_crashes: n,
                    chaos,
                    applied_reports: applied,
                    checkpoints: telemetry.checkpoints_written(),
                    checkpoint_bytes: telemetry.checkpoint_bytes(),
                    replayed: telemetry.reports_replayed(),
                    mean_replay: telemetry.mean_replay_len(),
                    identical: got == want,
                });
            }
        }
    }
    out
}

/// Formats the sweep as a grid, one line per cell.
#[must_use]
pub fn format(points: &[RecoveryPoint]) -> String {
    let mut out = String::from(
        "Recovery — checkpoint cadence vs. replay work (identical = bit-identical estimates)\n\
         chaos  cadence  crashes  applied  checkpoints  ckpt-bytes  replayed  mean-replay  identical\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>7}  {:>7}  {:>11}  {:>10}  {:>8}  {:>11.1}  {}\n",
            if p.chaos { "on" } else { "off" },
            p.checkpoint_every,
            p.num_crashes,
            p.applied_reports,
            p.checkpoints,
            p.checkpoint_bytes,
            p.replayed,
            p.mean_replay,
            if p.identical { "yes" } else { "NO" },
        ));
    }
    out
}

/// Serializes the sweep as a JSON array (hand-rolled: every field is a
/// number or bool, so no escaping is needed).
#[must_use]
pub fn to_json(points: &[RecoveryPoint]) -> String {
    let cells: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"chaos\":{},\"checkpoint_every\":{},\"num_crashes\":{},\
                 \"applied_reports\":{},\"checkpoints\":{},\"checkpoint_bytes\":{},\
                 \"replayed\":{},\"mean_replay\":{},\"identical\":{}}}",
                p.chaos,
                p.checkpoint_every,
                p.num_crashes,
                p.applied_reports,
                p.checkpoints,
                p.checkpoint_bytes,
                p.replayed,
                p.mean_replay,
                p.identical
            )
        })
        .collect();
    format!("{{\"experiment\":\"recovery_sweep\",\"points\":[{}]}}\n", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_recovers_bit_identically() {
        let pts = run(&[0, 64], &[0, 2]);
        // 2 chaos modes × 2 cadences × 2 crash counts.
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|p| p.identical), "{pts:?}");
    }

    #[test]
    fn tighter_cadence_replays_less_but_writes_more() {
        let pts = run(&[16, 0], &[3]);
        let cell = |chaos: bool, cadence: u64| {
            *pts.iter().find(|p| p.chaos == chaos && p.checkpoint_every == cadence).unwrap()
        };
        for chaos in [false, true] {
            let tight = cell(chaos, 16);
            let never = cell(chaos, 0);
            assert!(tight.checkpoints > 0 && never.checkpoints == 0);
            assert!(tight.checkpoint_bytes > 0 && never.checkpoint_bytes == 0);
            // Never checkpointing replays the whole applied prefix at
            // every crash; a 16-report cadence bounds each replay.
            assert!(
                tight.replayed < never.replayed,
                "chaos={chaos}: tight replayed {} vs never {}",
                tight.replayed,
                never.replayed
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(&[32], &[1]), run(&[32], &[1]));
    }

    #[test]
    fn chaos_prunes_the_applied_stream() {
        let pts = run(&[0], &[0]);
        let clean = pts.iter().find(|p| !p.chaos).unwrap();
        let chaotic = pts.iter().find(|p| p.chaos).unwrap();
        // Drops and corruption strictly reduce the applied set.
        assert!(chaotic.applied_reports < clean.applied_reports, "{pts:?}");
    }

    #[test]
    fn json_lists_every_cell() {
        let pts = run(&[0, 32], &[1]);
        let s = to_json(&pts);
        assert_eq!(s.matches("\"checkpoint_every\"").count(), pts.len());
        assert!(s.contains("\"experiment\":\"recovery_sweep\""));
    }

    #[test]
    fn format_flags_identity() {
        let s = format(&run(&[64], &[1]));
        assert!(s.contains("identical"));
        assert!(s.contains("yes"));
        assert!(!s.contains(" NO\n"));
    }
}
