//! Robustness extension experiment: deadline hit rates under worker
//! eviction storms.
//!
//! Not a figure in the paper — but the paper's §IV-A1 substrate
//! (HTCondor desktops "typically idle 90% of the day") makes preemption
//! the dominant failure mode, and Work Queue's elastic pool plus the
//! DTM's feedback loop are exactly the machinery that absorbs it. This
//! experiment quantifies that: the same job set under increasing eviction
//! rates, allocated statically vs. PID-controlled.

use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd_runtime::{Cluster, ExecutionModel, JobId};

/// One measured point: an allocation policy under an eviction rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Whether PID control was active.
    pub controlled: bool,
    /// Worker evictions injected over the run.
    pub num_evictions: usize,
    /// Fraction of jobs that met their deadline.
    pub job_hit_rate: f64,
    /// Tasks restarted after losing their worker.
    pub wasted_restarts: u64,
}

/// Standard job set: `n_jobs` equal jobs with a deadline sized so the
/// healthy static pool barely meets it — any loss of capacity shows.
fn job_set(n_jobs: u32) -> Vec<DtmJob> {
    (0..n_jobs).map(|i| DtmJob::new(JobId::new(i), 8_000.0, 7.5, 4)).collect()
}

/// Runs the sweep: each eviction count × {static, controlled}.
///
/// Evictions are spread evenly over the first 10 virtual seconds — the
/// busy ramp-up phase where losing a worker hurts most.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::robustness;
///
/// let pts = robustness::run(&[0, 4]);
/// assert_eq!(pts.len(), 4);
/// ```
#[must_use]
pub fn run(eviction_counts: &[usize]) -> Vec<RobustnessPoint> {
    let mut out = Vec::new();
    for &n in eviction_counts {
        let evictions: Vec<f64> = (0..n).map(|i| 1.0 + 9.0 * i as f64 / n.max(1) as f64).collect();
        for controlled in [false, true] {
            let config = DtmConfig {
                control_enabled: controlled,
                initial_workers: 8,
                max_workers: 32,
                ..DtmConfig::default()
            };
            let mut dtm = DynamicTaskManager::new(
                config,
                Cluster::homogeneous(32, 1.0),
                ExecutionModel::default(),
            );
            let outcome = dtm.run_with_evictions(&job_set(6), &evictions);
            out.push(RobustnessPoint {
                controlled,
                num_evictions: n,
                job_hit_rate: outcome.job_hit_rate(),
                wasted_restarts: outcome.retries,
            });
        }
    }
    out
}

/// Formats the sweep as two series.
#[must_use]
pub fn format(points: &[RobustnessPoint]) -> String {
    let mut out = String::from("Robustness — job deadline hit rate under worker evictions\n");
    for controlled in [true, false] {
        out.push_str(if controlled { "PID-controlled" } else { "static pool  " });
        for p in points.iter().filter(|p| p.controlled == controlled) {
            out.push_str(&format!(
                " {:>2} evictions: {:>5.1}% |",
                p.num_evictions,
                p.job_hit_rate * 100.0
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_dominates_static_under_failures() {
        let pts = run(&[0, 6]);
        let rate = |controlled: bool, n: usize| {
            pts.iter()
                .find(|p| p.controlled == controlled && p.num_evictions == n)
                .map(|p| p.job_hit_rate)
                .unwrap()
        };
        // Healthy cluster: both fine.
        assert!(rate(true, 0) >= rate(false, 0));
        // Under a storm: control must not be worse, and must stay high.
        assert!(rate(true, 6) >= rate(false, 6));
        assert!(rate(true, 6) > 0.8, "controlled under storm: {}", rate(true, 6));
    }

    #[test]
    fn hit_rate_degrades_gracefully_for_static() {
        let pts = run(&[0, 8]);
        let static_healthy = pts
            .iter()
            .find(|p| !p.controlled && p.num_evictions == 0)
            .unwrap()
            .job_hit_rate;
        let static_storm = pts
            .iter()
            .find(|p| !p.controlled && p.num_evictions == 8)
            .unwrap()
            .job_hit_rate;
        assert!(static_storm <= static_healthy + 1e-9);
    }

    #[test]
    fn format_names_both_series() {
        let s = format(&run(&[0]));
        assert!(s.contains("PID-controlled"));
        assert!(s.contains("static"));
    }
}
