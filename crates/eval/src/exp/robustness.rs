//! Robustness extension experiment: deadline hit rates under worker
//! eviction storms and injected task faults.
//!
//! Not a figure in the paper — but the paper's §IV-A1 substrate
//! (HTCondor desktops "typically idle 90% of the day") makes preemption
//! the dominant failure mode, and Work Queue's elastic pool plus the
//! DTM's feedback loop are exactly the machinery that absorbs it. Two
//! sweeps quantify that:
//!
//! - [`run`] — the original eviction-storm sweep (static vs. PID);
//! - [`run_fault_sweep`] — the full robustness grid: eviction rate ×
//!   transient-fault rate × retry policy, reporting deadline hit rate
//!   and wasted work (failed-attempt time burned), static vs. PID.
//!
//! Both sweeps measure through [`ExecutionBackend`]: the default entry
//! points run the DES, and the `*_on` variants accept a backend factory
//! (e.g. a `ThreadedEngine` per grid cell) with no backend-specific
//! forks in the measurement itself. Retry and exhaustion counters come
//! from the trace store: each grid cell installs a fresh
//! [`EventStore`] recorder on its backend and reads the counts back
//! through the query layer, cross-checked against the scheduler's own
//! ledger in debug builds.

use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd_obs::EventStore;
use sstd_runtime::{
    Cluster, DesEngine, ExecutionBackend, ExecutionModel, FaultPlan, JobId, RetryPolicy,
};
use std::sync::Arc;

/// Task counters of one run, read back through the trace-store query
/// layer: `(retries, exhausted)`.
///
/// Every settled loss that still has retry budget re-queues the task
/// (one retry per non-terminal failure event), so `retries = failures −
/// exhausted`; the scheduler's own ledger agrees, which the sweeps
/// cross-check with a debug assertion.
fn store_task_counts(store: &EventStore) -> (u64, u64) {
    let failures = store.query().failures().count();
    let exhausted = store.query().tasks().label("exhausted").count();
    (failures - exhausted, exhausted)
}

/// One measured point: an allocation policy under an eviction rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Whether PID control was active.
    pub controlled: bool,
    /// Worker evictions injected over the run.
    pub num_evictions: usize,
    /// Fraction of jobs that met their deadline.
    pub job_hit_rate: f64,
    /// Tasks restarted after losing their worker.
    pub wasted_restarts: u64,
}

/// Standard job set: `n_jobs` equal jobs with a deadline sized so the
/// healthy static pool barely meets it — any loss of capacity shows.
fn job_set(n_jobs: u32) -> Vec<DtmJob> {
    (0..n_jobs).map(|i| DtmJob::new(JobId::new(i), 8_000.0, 7.5, 4)).collect()
}

/// The standard DES backend for one grid cell (the worker count is
/// overwritten by the DTM's config before the run).
fn des_backend() -> DesEngine {
    DesEngine::new(Cluster::homogeneous(32, 1.0), ExecutionModel::default(), 8)
}

/// The standard DTM for one grid cell.
fn dtm(controlled: bool, retry: RetryPolicy) -> DynamicTaskManager {
    let config = DtmConfig {
        control_enabled: controlled,
        initial_workers: 8,
        max_workers: 32,
        retry,
        ..DtmConfig::default()
    };
    DynamicTaskManager::new(config, Cluster::homogeneous(32, 1.0), ExecutionModel::default())
}

/// Runs the sweep on the DES: each eviction count × {static, controlled}.
///
/// Evictions are spread evenly over the first 10 virtual seconds — the
/// busy ramp-up phase where losing a worker hurts most.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::robustness;
///
/// let pts = robustness::run(&[0, 4]);
/// assert_eq!(pts.len(), 4);
/// ```
#[must_use]
pub fn run(eviction_counts: &[usize]) -> Vec<RobustnessPoint> {
    run_on(eviction_counts, des_backend)
}

/// Runs the eviction sweep on backends built by `make_backend` (one fresh
/// backend per grid cell).
#[must_use]
pub fn run_on<B, F>(eviction_counts: &[usize], mut make_backend: F) -> Vec<RobustnessPoint>
where
    B: ExecutionBackend,
    F: FnMut() -> B,
{
    let mut out = Vec::new();
    for &n in eviction_counts {
        let evictions: Vec<f64> = (0..n).map(|i| 1.0 + 9.0 * i as f64 / n.max(1) as f64).collect();
        for controlled in [false, true] {
            let mut backend = make_backend();
            let store = Arc::new(EventStore::new());
            backend.set_recorder(Some(store.clone()));
            let outcome = dtm(controlled, RetryPolicy::default())
                .run_on(&mut backend, &job_set(6), &evictions, None)
                .expect("valid config");
            let (restarts, _) = store_task_counts(&store);
            debug_assert_eq!(restarts, outcome.retries, "store must agree with the ledger");
            out.push(RobustnessPoint {
                controlled,
                num_evictions: n,
                job_hit_rate: outcome.job_hit_rate(),
                wasted_restarts: restarts,
            });
        }
    }
    out
}

/// Formats the sweep as two series.
#[must_use]
pub fn format(points: &[RobustnessPoint]) -> String {
    let mut out = String::from("Robustness — job deadline hit rate under worker evictions\n");
    for controlled in [true, false] {
        out.push_str(if controlled { "PID-controlled" } else { "static pool  " });
        for p in points.iter().filter(|p| p.controlled == controlled) {
            out.push_str(&format!(
                " {:>2} evictions: {:>5.1}% |",
                p.num_evictions,
                p.job_hit_rate * 100.0
            ));
        }
        out.push('\n');
    }
    out
}

/// One measured point of the full fault sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepPoint {
    /// Whether PID control was active.
    pub controlled: bool,
    /// Worker evictions injected over the run.
    pub num_evictions: usize,
    /// Per-attempt transient-fault probability.
    pub transient_rate: f64,
    /// Name of the retry policy used.
    pub retry_label: &'static str,
    /// Fraction of jobs that met their deadline.
    pub job_hit_rate: f64,
    /// Virtual seconds burned in failed or aborted attempts.
    pub wasted_time: f64,
    /// Attempts re-queued after a loss.
    pub retries: u64,
    /// Tasks dropped after exhausting their retry budget.
    pub exhausted: u64,
}

/// Named retry policies for the sweep's third axis.
#[must_use]
pub fn retry_policies() -> Vec<(&'static str, RetryPolicy)> {
    vec![
        ("no-retry", RetryPolicy::no_retries()),
        ("default", RetryPolicy::default()),
        (
            "aggressive",
            RetryPolicy {
                max_attempts: 8,
                backoff_base: 0.01,
                backoff_cap: 0.5,
                ..RetryPolicy::default()
            },
        ),
    ]
}

/// Runs the full grid on the DES: eviction count × transient-fault rate ×
/// retry policy, each under static and PID-controlled allocation. Fault
/// schedules are seeded per grid point, so the sweep is deterministic.
#[must_use]
pub fn run_fault_sweep(
    eviction_counts: &[usize],
    transient_rates: &[f64],
    retries: &[(&'static str, RetryPolicy)],
) -> Vec<FaultSweepPoint> {
    run_fault_sweep_on(eviction_counts, transient_rates, retries, des_backend)
}

/// Runs the fault grid on backends built by `make_backend` (one fresh
/// backend per grid cell).
#[must_use]
pub fn run_fault_sweep_on<B, F>(
    eviction_counts: &[usize],
    transient_rates: &[f64],
    retries: &[(&'static str, RetryPolicy)],
    mut make_backend: F,
) -> Vec<FaultSweepPoint>
where
    B: ExecutionBackend,
    F: FnMut() -> B,
{
    let mut out = Vec::new();
    for &n in eviction_counts {
        let evictions: Vec<f64> = (0..n).map(|i| 1.0 + 9.0 * i as f64 / n.max(1) as f64).collect();
        for &rate in transient_rates {
            for &(label, retry) in retries {
                // Seed is a pure function of the grid point: re-running
                // the sweep replays the exact same fault schedule.
                let seed = 1_000 + n as u64 * 97 + (rate * 1_000.0) as u64;
                let plan = FaultPlan::new(seed).with_transient_rate(rate);
                for controlled in [false, true] {
                    let mut backend = make_backend();
                    let store = Arc::new(EventStore::new());
                    backend.set_recorder(Some(store.clone()));
                    let outcome = dtm(controlled, retry)
                        .run_on(&mut backend, &job_set(6), &evictions, Some(plan))
                        .expect("valid config");
                    debug_assert!(outcome.faults.reconciles(), "{}", outcome.faults);
                    let (retries, exhausted) = store_task_counts(&store);
                    debug_assert_eq!(retries, outcome.retries, "store vs ledger");
                    debug_assert_eq!(
                        exhausted, outcome.faults.exhausted_tasks,
                        "store vs fault stats"
                    );
                    out.push(FaultSweepPoint {
                        controlled,
                        num_evictions: n,
                        transient_rate: rate,
                        retry_label: label,
                        job_hit_rate: outcome.job_hit_rate(),
                        wasted_time: outcome.faults.wasted_time,
                        retries,
                        exhausted,
                    });
                }
            }
        }
    }
    out
}

/// Formats the fault sweep as a grid, one line per
/// (evictions, fault rate, retry policy), both allocation policies.
#[must_use]
pub fn format_fault_sweep(points: &[FaultSweepPoint]) -> String {
    let mut out = String::from(
        "Robustness — deadline hit rate and wasted work under faults\n\
         evictions  fault-rate  retry       static-hit  pid-hit  pid-wasted  pid-exhausted\n",
    );
    let mut i = 0;
    while i + 1 < points.len() {
        let (s, c) = (&points[i], &points[i + 1]);
        // Points come in (static, controlled) pairs per grid cell.
        if s.controlled || !c.controlled {
            i += 1;
            continue;
        }
        out.push_str(&format!(
            "{:>9}  {:>10.2}  {:<10}  {:>9.1}%  {:>6.1}%  {:>10.1}  {:>13}\n",
            s.num_evictions,
            s.transient_rate,
            s.retry_label,
            s.job_hit_rate * 100.0,
            c.job_hit_rate * 100.0,
            c.wasted_time,
            c.exhausted,
        ));
        i += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_dominates_static_under_failures() {
        let pts = run(&[0, 6]);
        let rate = |controlled: bool, n: usize| {
            pts.iter()
                .find(|p| p.controlled == controlled && p.num_evictions == n)
                .map(|p| p.job_hit_rate)
                .unwrap()
        };
        // Healthy cluster: both fine.
        assert!(rate(true, 0) >= rate(false, 0));
        // Under a storm: control must not be worse, and must stay high.
        assert!(rate(true, 6) >= rate(false, 6));
        assert!(rate(true, 6) > 0.8, "controlled under storm: {}", rate(true, 6));
    }

    #[test]
    fn hit_rate_degrades_gracefully_for_static() {
        let pts = run(&[0, 8]);
        let static_healthy =
            pts.iter().find(|p| !p.controlled && p.num_evictions == 0).unwrap().job_hit_rate;
        let static_storm =
            pts.iter().find(|p| !p.controlled && p.num_evictions == 8).unwrap().job_hit_rate;
        assert!(static_storm <= static_healthy + 1e-9);
    }

    #[test]
    fn format_names_both_series() {
        let s = format(&run(&[0]));
        assert!(s.contains("PID-controlled"));
        assert!(s.contains("static"));
    }

    #[test]
    fn fault_sweep_covers_the_grid_and_reconciles() {
        let retries = retry_policies();
        let pts = run_fault_sweep(&[0, 4], &[0.0, 0.15], &retries);
        // 2 eviction counts × 2 rates × 3 policies × 2 allocations.
        assert_eq!(pts.len(), 24);
        // No faults, no evictions, default policy: nothing wasted.
        let clean = pts
            .iter()
            .find(|p| {
                p.num_evictions == 0
                    && p.transient_rate == 0.0
                    && p.retry_label == "default"
                    && p.controlled
            })
            .unwrap();
        assert_eq!(clean.retries, 0);
        assert!(clean.wasted_time.abs() < 1e-12);
    }

    #[test]
    fn pid_beats_static_under_faults_in_the_sweep() {
        // The acceptance scenario: ≥10% transient faults plus evictions.
        let retries = [("default", RetryPolicy::default())];
        let pts = run_fault_sweep(&[6], &[0.15], &retries);
        let hit = |controlled: bool| {
            pts.iter().find(|p| p.controlled == controlled).map(|p| p.job_hit_rate).unwrap()
        };
        assert!(hit(true) >= hit(false), "pid {} vs static {}", hit(true), hit(false));
        assert!(hit(true) > 0.8, "pid under faults: {}", hit(true));
        // Faults actually fired and were retried.
        assert!(pts.iter().all(|p| p.retries > 0));
    }

    #[test]
    fn retrying_beats_no_retry_on_hit_rate() {
        let retries = retry_policies();
        let pts = run_fault_sweep(&[0], &[0.25], &retries);
        let hit = |label: &str| {
            pts.iter()
                .find(|p| p.retry_label == label && p.controlled)
                .map(|p| p.job_hit_rate)
                .unwrap()
        };
        // Without retries every faulted task is lost, so its job misses.
        assert!(
            hit("default") >= hit("no-retry"),
            "default {} vs no-retry {}",
            hit("default"),
            hit("no-retry")
        );
        let no_retry_exhausted: u64 =
            pts.iter().filter(|p| p.retry_label == "no-retry").map(|p| p.exhausted).sum();
        assert!(no_retry_exhausted > 0, "rate 0.25 must exhaust no-retry tasks");
    }

    #[test]
    fn sweeps_run_on_real_threads() {
        // The same measurement code drives a ThreadedEngine per grid
        // cell: simulated durations compressed 500×. Wall-clock jitter
        // makes hit rates unstable, so assertions stick to structure and
        // fault accounting.
        use sstd_runtime::ThreadedEngine;
        let threaded = || {
            let engine: ThreadedEngine<()> = ThreadedEngine::new(8);
            engine.set_simulation(ExecutionModel::default(), 2.0e-3);
            engine
        };
        let pts = run_on(&[4], threaded);
        assert_eq!(pts.len(), 2, "one eviction count, both allocation policies");
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.job_hit_rate)));

        let fpts =
            run_fault_sweep_on(&[0], &[0.2], &[("default", RetryPolicy::default())], threaded);
        assert_eq!(fpts.len(), 2);
        assert!(fpts.iter().all(|p| p.retries > 0), "20% transient faults must retry: {fpts:?}");
        assert!(fpts.iter().all(|p| p.exhausted == 0), "default policy rescues every task");
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let retries = [("default", RetryPolicy::default())];
        let a = run_fault_sweep(&[2], &[0.1], &retries);
        let b = run_fault_sweep(&[2], &[0.1], &retries);
        assert_eq!(a, b);
    }

    #[test]
    fn fault_sweep_format_lists_every_cell() {
        let retries = [("default", RetryPolicy::default())];
        let pts = run_fault_sweep(&[0, 2], &[0.0, 0.1], &retries);
        let s = format_fault_sweep(&pts);
        assert_eq!(s.lines().count(), 2 + 4, "header + one line per grid cell");
        assert!(s.contains("default"));
    }
}
