//! The paper's PID tuning procedure (§V-A3): "we increase each
//! coefficient from 0.0 to 3.0 by 0.1. We pick the set of coefficients
//! that maximize the number of jobs that can meet their deadlines."
//!
//! A full 31³ grid on the DES is cheap but pointless to print; this
//! module sweeps a coarse grid, reports the best cell, and verifies the
//! paper's chosen gains land in the high-performing region.

use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd_runtime::{Cluster, ExecutionModel, JobId};

/// One grid cell of the gain sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainPoint {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Job deadline hit rate under these gains.
    pub hit_rate: f64,
}

/// The tuning workload: heterogeneous jobs whose deadlines a well-tuned
/// controller can mostly meet from a cold 2-worker pool, while a
/// mis-tuned one (sluggish or oscillating) misses.
fn workload() -> Vec<DtmJob> {
    (0..8u32)
        .map(|i| {
            let data = 4_000.0 + 2_000.0 * f64::from(i % 4);
            let deadline = 6.0 + f64::from(i % 3) * 4.0;
            DtmJob::new(JobId::new(i), data, deadline, 4)
        })
        .collect()
}

fn hit_rate(kp: f64, ki: f64, kd: f64) -> f64 {
    let config =
        DtmConfig { kp, ki, kd, initial_workers: 2, max_workers: 32, ..DtmConfig::default() };
    let mut dtm =
        DynamicTaskManager::new(config, Cluster::homogeneous(32, 1.0), ExecutionModel::default());
    dtm.run(&workload()).expect("valid gains").job_hit_rate()
}

/// Sweeps the gain grid (each axis over `values`) and returns every cell.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::tuning;
///
/// let pts = tuning::run(&[0.0, 1.2]);
/// assert_eq!(pts.len(), 8);
/// ```
#[must_use]
pub fn run(values: &[f64]) -> Vec<GainPoint> {
    let mut out = Vec::with_capacity(values.len().pow(3));
    for &kp in values {
        for &ki in values {
            for &kd in values {
                out.push(GainPoint { kp, ki, kd, hit_rate: hit_rate(kp, ki, kd) });
            }
        }
    }
    out
}

/// The best cell of a sweep (ties break toward smaller gains, the
/// conservative choice).
///
/// # Panics
///
/// Panics on an empty sweep.
#[must_use]
pub fn best(points: &[GainPoint]) -> GainPoint {
    *points
        .iter()
        .max_by(|a, b| {
            a.hit_rate
                .partial_cmp(&b.hit_rate)
                .expect("finite rates")
                .then((b.kp + b.ki + b.kd).partial_cmp(&(a.kp + a.ki + a.kd)).expect("finite"))
        })
        .expect("non-empty sweep")
}

/// Formats the sweep summary.
#[must_use]
pub fn format(points: &[GainPoint]) -> String {
    let top = best(points);
    let paper = points
        .iter()
        .filter(|p| {
            (p.kp - 1.2).abs() < 0.26 && (p.ki - 0.3).abs() < 0.26 && (p.kd - 0.2).abs() < 0.26
        })
        .map(|p| p.hit_rate)
        .fold(f64::NAN, f64::max);
    let mut out = String::from("PID gain sweep (paper §V-A3 tuning procedure)\n");
    out.push_str(&format!(
        "best grid cell: Kp={} Ki={} Kd={} → {:.1}% of jobs meet their deadline\n",
        top.kp,
        top.ki,
        top.kd,
        top.hit_rate * 100.0
    ));
    if paper.is_finite() {
        out.push_str(&format!("near the paper's (1.2, 0.3, 0.2): {:.1}%\n", paper * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gains_are_worse_than_tuned_gains() {
        // Kp=Ki=Kd=0 emits a zero control signal: the pool never grows
        // past the cold-start 2 workers and deadlines suffer.
        let dead = hit_rate(0.0, 0.0, 0.0);
        let tuned = hit_rate(1.2, 0.3, 0.2);
        assert!(tuned > dead, "paper-tuned gains {tuned} must beat a disabled controller {dead}");
        assert!(tuned > 0.5, "tuned controller rescues most jobs: {tuned}");
    }

    #[test]
    fn paper_gains_are_near_the_grid_optimum() {
        let pts = run(&[0.0, 0.4, 1.2, 2.4]);
        let top = best(&pts);
        let paper = hit_rate(1.2, 0.3, 0.2);
        assert!(
            paper + 0.15 >= top.hit_rate,
            "paper gains ({paper}) should be competitive with the grid best ({})",
            top.hit_rate
        );
    }

    #[test]
    fn format_reports_the_best_cell() {
        let pts = run(&[0.0, 1.2]);
        let s = format(&pts);
        assert!(s.contains("best grid cell"));
    }
}
