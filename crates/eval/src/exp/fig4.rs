//! Fig. 4: execution time of all schemes vs. data size.
//!
//! The paper runs each scheme on progressively larger cuts of each trace
//! and reports wall-clock execution time; SSTD stays fastest and its lead
//! grows with data size. We reproduce the measurement literally: every
//! scheme (SSTD included) processes the same generated trace end to end
//! and is timed.

use crate::timing::time_scheme;
use crate::SchemeKind;
use sstd_data::{Scenario, TraceBuilder};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTimePoint {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Number of reports in the trace cut.
    pub num_reports: usize,
    /// Wall-clock seconds to process it.
    pub seconds: f64,
}

/// Runs the sweep: `base_scale × multipliers` trace cuts × all schemes.
///
/// # Examples
///
/// ```
/// use sstd_data::Scenario;
/// use sstd_eval::exp::fig4;
///
/// let pts = fig4::run(Scenario::ParisShooting, 0.0005, &[1.0, 2.0], 3);
/// assert_eq!(pts.len(), 2 * 7);
/// ```
#[must_use]
pub fn run(
    scenario: Scenario,
    base_scale: f64,
    multipliers: &[f64],
    seed: u64,
) -> Vec<ExecTimePoint> {
    let mut out = Vec::new();
    for &m in multipliers {
        let trace = TraceBuilder::scenario(scenario).scale(base_scale * m).seed(seed).build();
        let n = trace.reports().len();
        for scheme in SchemeKind::paper_table() {
            let t = time_scheme(scheme, &trace);
            out.push(ExecTimePoint { scheme, num_reports: n, seconds: t.as_secs_f64() });
        }
    }
    out
}

/// Formats points as one series per scheme.
#[must_use]
pub fn format(title: &str, points: &[ExecTimePoint]) -> String {
    let mut out = format!("Fig. 4 — Execution time vs. data size — {title}\n");
    for scheme in SchemeKind::paper_table() {
        out.push_str(&format!("{:<13}", scheme.name()));
        for p in points.iter().filter(|p| p.scheme == scheme) {
            out.push_str(&format!(" {:>8} reports: {:>8.3}s |", p.num_reports, p.seconds));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_grows_with_data() {
        let pts = run(Scenario::ParisShooting, 0.0005, &[1.0, 4.0], 5);
        for scheme in SchemeKind::paper_table() {
            let series: Vec<&ExecTimePoint> = pts.iter().filter(|p| p.scheme == scheme).collect();
            assert_eq!(series.len(), 2);
            assert!(series[1].num_reports > series[0].num_reports);
        }
    }

    #[test]
    fn sstd_beats_every_batch_baseline_at_scale() {
        // The Fig. 4 shape: SSTD's cost is dominated by per-claim model
        // fitting (independent of report volume), while batch baselines
        // re-solve over the report set and grow linearly — so past a
        // modest size SSTD is faster than all of them, and the gap keeps
        // widening. (Our DynaTD re-implementation is a lean single-pass
        // vote and stays cheap; see EXPERIMENTS.md for the discussion.)
        // Two measurement passes, keeping each scheme's best time: on a
        // shared machine a single pass can be distorted by a load spike.
        let a = run(Scenario::ParisShooting, 0.016, &[4.0], 5);
        let b = run(Scenario::ParisShooting, 0.016, &[4.0], 5);
        let best = |scheme: SchemeKind| {
            a.iter()
                .chain(&b)
                .filter(|p| p.scheme == scheme)
                .map(|p| p.seconds)
                .fold(f64::INFINITY, f64::min)
        };
        let sstd = best(SchemeKind::Sstd);
        for scheme in SchemeKind::paper_table() {
            if scheme.is_streaming() {
                continue;
            }
            let t = best(scheme);
            assert!(sstd < t, "SSTD {sstd}s should beat {} at {t}s", scheme.name());
        }
    }

    #[test]
    fn sstd_lead_grows_with_data_size() {
        let pts = run(Scenario::ParisShooting, 0.004, &[1.0, 8.0], 5);
        let gap_at = |mult_idx: usize| {
            let sizes: Vec<usize> = {
                let mut s: Vec<usize> = pts.iter().map(|p| p.num_reports).collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let n = sizes[mult_idx];
            let sstd = pts
                .iter()
                .find(|p| p.scheme == SchemeKind::Sstd && p.num_reports == n)
                .unwrap()
                .seconds;
            let slowest_batch = pts
                .iter()
                .filter(|p| !p.scheme.is_streaming() && p.num_reports == n)
                .map(|p| p.seconds)
                .fold(0.0f64, f64::max);
            slowest_batch - sstd
        };
        assert!(
            gap_at(1) > gap_at(0),
            "the gap between SSTD and the slowest batch baseline should widen"
        );
    }
}
