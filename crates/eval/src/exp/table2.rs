//! Table II: data trace statistics.

use sstd_data::{Scenario, TraceBuilder};
use sstd_types::TraceStats;

/// Generates the three paper traces at `scale` and returns their
/// statistics in Table II order (Paris, Boston, Football).
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::table2;
///
/// let rows = table2::run(0.001, 7);
/// assert_eq!(rows.len(), 3);
/// assert!(rows.iter().all(|r| r.num_reports > 0));
/// ```
#[must_use]
pub fn run(scale: f64, seed: u64) -> Vec<TraceStats> {
    Scenario::paper_traces()
        .into_iter()
        .map(|s| TraceBuilder::scenario(s).scale(scale).seed(seed).build().stats())
        .collect()
}

/// Formats the rows as the paper's Table II layout.
#[must_use]
pub fn format(rows: &[TraceStats]) -> String {
    let mut out = String::from(
        "TABLE II: DATA TRACE STATISTICS\n\
         trace                 reports   sources   active    claims  intervals  transitions\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>9} {:>9} {:>8} {:>9} {:>10} {:>12}\n",
            r.name,
            r.num_reports,
            r.num_sources,
            r.active_sources,
            r.num_claims,
            r.num_intervals,
            r.truth_transitions,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_follow_table2_ratios() {
        let rows = run(0.001, 3);
        // Boston is the largest trace, Paris the smallest (Table II).
        let paris = &rows[0];
        let boston = &rows[1];
        let football = &rows[2];
        assert!(boston.num_reports > football.num_reports);
        assert!(football.num_reports > paris.num_reports);
        assert!(boston.num_sources > paris.num_sources);
    }

    #[test]
    fn format_contains_all_traces() {
        let s = format(&run(0.001, 3));
        for name in ["paris-shooting", "boston-bombing", "college-football"] {
            assert!(s.contains(name), "{s}");
        }
    }
}
