//! CI regression gate for the trace-store query layer.
//!
//! Runs a seeded fault-injected DES workload with an [`EventStore`]
//! installed as the recorder, then audits the run *through the query
//! layer only*: completion counts, retry accounting cross-checked
//! against the scheduler ledger, causal [`sstd_obs::AttemptChain`]
//! reconstruction,
//! and tail latencies. A second pass replays the captured trace into a
//! bounded store to prove that whole-segment eviction keeps truthful
//! drop accounting under pressure.
//!
//! The gate is wired into CI (`.github/workflows/ci.yml`, `obs-sweep`
//! job): any violation makes the `trace_gate` binary exit non-zero, so a
//! regression in the store or the query layer fails the build rather
//! than silently skewing the evaluation sweeps that now read their
//! fault metrics from the same store.

use sstd_obs::{EventStore, StoreConfig};
use sstd_runtime::prelude::{
    Cluster, DesEngine, ExecutionModel, FaultPlan, JobId, RetryPolicy, TaskSpec,
};
use sstd_stats::exact_quantile;
use std::sync::Arc;

/// Default task count for the gate workload.
pub const DEFAULT_TASKS: u32 = 400;
/// Default worker count for the gate workload.
pub const DEFAULT_WORKERS: usize = 8;
/// Default fault-plan seed for the gate workload.
pub const DEFAULT_SEED: u64 = 7777;

/// Segment budget for the bounded replay: small enough that a
/// [`DEFAULT_TASKS`]-sized trace is guaranteed to overflow it.
const BOUNDED_REPLAY_EVENTS: usize = 256;

/// Formats an `f64` as a JSON value (`null` when not finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Everything the gate measured, plus the list of violated invariants
/// (empty on a clean run).
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Tasks submitted.
    pub tasks: u64,
    /// Events captured by the unbounded store.
    pub events: u64,
    /// Completions counted through the query layer.
    pub completed: u64,
    /// Retries derived from the store (failed attempts minus exhausted
    /// tasks).
    pub retries: u64,
    /// Attempt chains that record at least one retry.
    pub retry_chains: u64,
    /// Tasks that exhausted their retry budget (must be zero under the
    /// generous gate policy).
    pub exhausted: u64,
    /// P99 of per-attempt latency (dispatch → settle), seconds.
    pub p99_attempt_latency: f64,
    /// P99 of per-task turnaround (queue → final settle), seconds.
    pub p99_turnaround: f64,
    /// Events dropped by the unbounded store (must be zero).
    pub dropped_events: u64,
    /// Violated invariants; empty means the gate passed.
    pub violations: Vec<String>,
}

impl GateReport {
    /// `true` when every audited invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as a small JSON object (same hand-rolled style
    /// as the repo's other `BENCH_*.json` artifacts).
    #[must_use]
    pub fn to_json(&self) -> String {
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            concat!(
                "{{\n",
                "  \"gate\": \"trace_store\",\n",
                "  \"tasks\": {},\n",
                "  \"events\": {},\n",
                "  \"completed\": {},\n",
                "  \"retries\": {},\n",
                "  \"retry_chains\": {},\n",
                "  \"exhausted\": {},\n",
                "  \"p99_attempt_latency\": {},\n",
                "  \"p99_turnaround\": {},\n",
                "  \"dropped_events\": {},\n",
                "  \"violations\": [{}]\n",
                "}}\n"
            ),
            self.tasks,
            self.events,
            self.completed,
            self.retries,
            self.retry_chains,
            self.exhausted,
            json_f64(self.p99_attempt_latency),
            json_f64(self.p99_turnaround),
            self.dropped_events,
            violations,
        )
    }

    /// Renders a human-readable summary for the CI log.
    #[must_use]
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str("trace-store query gate\n");
        out.push_str(&format!(
            "  tasks {}  events {}  completed {}  retries {}  retry-chains {}\n",
            self.tasks, self.events, self.completed, self.retries, self.retry_chains
        ));
        out.push_str(&format!(
            "  p99 attempt latency {:.4}s  p99 turnaround {:.4}s  dropped {}\n",
            self.p99_attempt_latency, self.p99_turnaround, self.dropped_events
        ));
        if self.passed() {
            out.push_str("  PASS: all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("  VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Runs the gate with its default workload.
#[must_use]
pub fn run() -> GateReport {
    run_with(DEFAULT_TASKS, DEFAULT_WORKERS, DEFAULT_SEED)
}

/// Runs the gate on a seeded fault-injected DES workload and audits the
/// captured trace through the query layer.
#[must_use]
pub fn run_with(tasks: u32, workers: usize, seed: u64) -> GateReport {
    let store = Arc::new(EventStore::new());
    let mut des = DesEngine::new(
        Cluster::homogeneous(workers, 1.0),
        ExecutionModel::new(0.0, 0.01, 0.01),
        workers,
    );
    des.set_fault_plan(
        FaultPlan::new(seed)
            .with_transient_rate(0.2)
            .with_crash_rate(0.05)
            .with_restart_delay(0.05),
    );
    des.set_retry_policy(RetryPolicy { max_attempts: 64, ..RetryPolicy::default() });
    des.set_recorder(Some(store.clone()));
    for i in 0..tasks {
        des.submit(TaskSpec::new(JobId::new(i % 3), 100.0));
    }
    let report = des.run_to_completion();

    let mut violations = Vec::new();
    let completed = store.query().tasks().label("completed").count();
    let failures = store.query().failures().count();
    let exhausted = store.query().tasks().label("exhausted").count();
    let retries = failures - exhausted;
    let chains = store.attempt_chains();
    let retry_chains = chains.iter().filter(|c| c.retries() > 0).count() as u64;

    let attempt_latencies: Vec<f64> =
        chains.iter().flat_map(|c| c.attempts.iter().filter_map(|a| a.latency())).collect();
    let turnarounds: Vec<f64> = chains.iter().filter_map(|c| c.turnaround()).collect();
    let p99_attempt_latency = if attempt_latencies.is_empty() {
        f64::NAN
    } else {
        exact_quantile(&attempt_latencies, 0.99)
    };
    let p99_turnaround =
        if turnarounds.is_empty() { f64::NAN } else { exact_quantile(&turnarounds, 0.99) };

    if completed != u64::from(tasks) {
        violations.push(format!("completed {completed} != submitted {tasks}"));
    }
    if report.completed.len() != tasks as usize {
        violations.push(format!(
            "backend report has {} completions, expected {tasks}",
            report.completed.len()
        ));
    }
    if retries != des.retries() {
        violations
            .push(format!("store-derived retries {retries} != ledger retries {}", des.retries()));
    }
    if exhausted != 0 {
        violations.push(format!("{exhausted} tasks exhausted a 64-attempt budget"));
    }
    if retry_chains == 0 {
        violations.push("no retry chains found despite injected faults".to_string());
    }
    if chains.len() != tasks as usize {
        violations.push(format!("{} attempt chains for {tasks} tasks", chains.len()));
    }
    if !(p99_attempt_latency.is_finite() && p99_attempt_latency > 0.0) {
        violations.push(format!("p99 attempt latency {p99_attempt_latency} is not positive"));
    } else if p99_attempt_latency > report.makespan {
        violations.push(format!(
            "p99 attempt latency {p99_attempt_latency} exceeds makespan {}",
            report.makespan
        ));
    }
    if !(p99_turnaround.is_finite() && p99_turnaround > 0.0) {
        violations.push(format!("p99 turnaround {p99_turnaround} is not positive"));
    } else if p99_turnaround > report.makespan + 1e-9 {
        violations
            .push(format!("p99 turnaround {p99_turnaround} exceeds makespan {}", report.makespan));
    }
    if store.dropped_events() != 0 {
        violations.push(format!("unbounded store dropped {} events", store.dropped_events()));
    }

    // Replay the trace into a deliberately tiny bounded store to prove
    // eviction fires and its accounting stays truthful under pressure.
    let bounded = EventStore::with_config(StoreConfig::bounded(BOUNDED_REPLAY_EVENTS))
        .expect("bounded gate config is valid");
    for event in store.events() {
        if let Some(t) = event.timeline_event() {
            bounded.record_task(t);
        }
    }
    if bounded.dropped_events() == 0 {
        violations.push("bounded replay evicted nothing; eviction path untested".to_string());
    }
    if bounded.total_appended() != bounded.len() as u64 + bounded.dropped_events() {
        violations.push(format!(
            "bounded store accounting broken: appended {} != len {} + dropped {}",
            bounded.total_appended(),
            bounded.len(),
            bounded.dropped_events()
        ));
    }

    GateReport {
        tasks: u64::from(tasks),
        events: store.len() as u64,
        completed,
        retries,
        retry_chains,
        exhausted,
        p99_attempt_latency,
        p99_turnaround,
        dropped_events: store.dropped_events(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_gate_passes_on_a_quick_workload() {
        let report = run_with(120, 4, DEFAULT_SEED);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.completed, 120);
        assert!(report.retry_chains > 0);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn the_json_report_carries_every_field() {
        let report = run_with(60, 4, 11);
        let json = report.to_json();
        for key in [
            "\"gate\"",
            "\"tasks\"",
            "\"events\"",
            "\"completed\"",
            "\"retries\"",
            "\"retry_chains\"",
            "\"exhausted\"",
            "\"p99_attempt_latency\"",
            "\"p99_turnaround\"",
            "\"dropped_events\"",
            "\"violations\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
