//! Fig. 5: total running time vs. streaming speed (tweets/second).
//!
//! The experiment streams data for a fixed duration at increasing rates.
//! Streaming schemes (SSTD, DynaTD) process each second of data as it
//! arrives; batch schemes wake every 5 seconds and re-solve over all data
//! retrieved so far (they have no incremental state, so maintaining an
//! up-to-date estimate means re-processing). Total running time is the
//! completion time of the last work item when each item can only start
//! after its data has arrived (and after the previous item finished):
//! a scheme that keeps up finishes at ≈ the stream duration; one that
//! falls behind keeps computing long after the stream ends.

use crate::SchemeKind;
use sstd_baselines::{
    Catd, DynaTd, Invest, Rtd, SnapshotInput, StreamingTruthDiscovery, ThreeEstimates,
    TruthDiscovery, TruthFinder,
};
use sstd_core::{SstdConfig, StreamingSstd};
use sstd_data::{Scenario, TraceBuilder};
use sstd_types::{Report, Trace};
use std::time::Instant;

/// One measured point of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingPoint {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Stream rate in tweets per second.
    pub tweets_per_sec: usize,
    /// Completion time of the last work item (seconds, ≥ the stream
    /// duration).
    pub total_running_secs: f64,
    /// Pure compute time summed over work items (seconds).
    pub compute_secs: f64,
}

/// Batch wake-up period (paper: "process 5 seconds of data each time").
const BATCH_PERIOD: u64 = 5;

/// Runs the sweep over `rates` for a virtual stream of `duration_secs`.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::fig5;
///
/// let pts = fig5::run(&[50], 20, 3);
/// assert!(!pts.is_empty());
/// assert!(pts.iter().all(|p| p.total_running_secs >= 20.0));
/// ```
#[must_use]
pub fn run(rates: &[usize], duration_secs: u64, seed: u64) -> Vec<StreamingPoint> {
    let mut out = Vec::new();
    for &rate in rates {
        let mut builder = TraceBuilder::scenario(Scenario::Synthetic).seed(seed);
        {
            let c = builder.config_mut();
            c.horizon_secs = duration_secs;
            c.num_intervals = duration_secs as usize;
            c.target_reports = rate * duration_secs as usize;
            c.num_sources = (rate * 20).max(100);
            c.burst_intervals = 0;
            c.burst_multiplier = 1.0;
        }
        let trace = builder.build();

        for scheme in [
            SchemeKind::Sstd,
            SchemeKind::DynaTd,
            SchemeKind::TruthFinder,
            SchemeKind::Rtd,
            SchemeKind::Catd,
            SchemeKind::Invest,
            SchemeKind::ThreeEstimates,
        ] {
            let (total, compute) = measure(scheme, &trace, duration_secs);
            out.push(StreamingPoint {
                scheme,
                tweets_per_sec: rate,
                total_running_secs: total,
                compute_secs: compute,
            });
        }
    }
    out
}

/// Work items as `(release_time_secs, measured_compute_secs)` folded into
/// the serialized completion time.
fn serialize_items(duration: u64, items: &[(f64, f64)]) -> (f64, f64) {
    let mut finish = 0.0f64;
    let mut compute = 0.0f64;
    for &(release, work) in items {
        finish = finish.max(release) + work;
        compute += work;
    }
    (finish.max(duration as f64), compute)
}

fn measure(scheme: SchemeKind, trace: &Trace, duration: u64) -> (f64, f64) {
    match scheme {
        SchemeKind::Sstd => {
            let mut engine = StreamingSstd::new(SstdConfig::default(), trace.timeline().clone());
            let items = per_second_items(trace, duration, |reports| {
                for r in reports {
                    engine.push(r);
                }
            });
            serialize_items(duration, &items)
        }
        SchemeKind::DynaTd => {
            let mut dt = DynaTd::new();
            let items = per_second_items(trace, duration, |reports| {
                let _ = dt.observe_interval(reports);
            });
            serialize_items(duration, &items)
        }
        SchemeKind::TruthFinder => batch_items(trace, duration, &TruthFinder::new()),
        SchemeKind::Rtd => batch_items(trace, duration, &Rtd::new()),
        SchemeKind::Catd => batch_items(trace, duration, &Catd::new()),
        SchemeKind::Invest => batch_items(trace, duration, &Invest::new()),
        SchemeKind::ThreeEstimates => batch_items(trace, duration, &ThreeEstimates::new()),
        _ => unreachable!("fig5 only runs the paper's seven schemes"),
    }
}

/// Streaming work: one item per second of data, released when that second
/// of the stream has arrived.
fn per_second_items(
    trace: &Trace,
    duration: u64,
    mut process: impl FnMut(&[Report]),
) -> Vec<(f64, f64)> {
    let mut items = Vec::with_capacity(duration as usize);
    for s in 0..duration as usize {
        let reports = trace.reports_in_interval(s);
        let start = Instant::now();
        process(reports);
        items.push(((s + 1) as f64, start.elapsed().as_secs_f64()));
    }
    items
}

/// Batch work: every `BATCH_PERIOD` seconds, re-solve over everything
/// retrieved so far.
fn batch_items<S: TruthDiscovery>(trace: &Trace, duration: u64, scheme: &S) -> (f64, f64) {
    let mut items = Vec::new();
    let mut cumulative: Vec<Report> = Vec::new();
    let mut next_interval = 0usize;
    let mut t = BATCH_PERIOD;
    while t <= duration {
        while next_interval < t as usize {
            cumulative.extend_from_slice(trace.reports_in_interval(next_interval));
            next_interval += 1;
        }
        let input = SnapshotInput::new(&cumulative, trace.num_sources(), trace.num_claims());
        let start = Instant::now();
        let estimates = scheme.discover(&input);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(estimates.len());
        items.push((t as f64, elapsed));
        t += BATCH_PERIOD;
    }
    serialize_items(duration, &items)
}

/// Formats points as one series per scheme.
#[must_use]
pub fn format(points: &[StreamingPoint]) -> String {
    let mut out = String::from("Fig. 5 — Total running time vs. streaming speed\n");
    for scheme in SchemeKind::paper_table() {
        let series: Vec<&StreamingPoint> = points.iter().filter(|p| p.scheme == scheme).collect();
        if series.is_empty() {
            continue;
        }
        out.push_str(&format!("{:<13}", scheme.name()));
        for p in series {
            out.push_str(&format!(
                " {:>6}/s: {:>8.2}s (compute {:>7.3}s) |",
                p.tweets_per_sec, p.total_running_secs, p.compute_secs
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_respects_release_times() {
        // Items: release at 1s and 2s, each taking 0.5s of compute.
        let (total, compute) = serialize_items(3, &[(1.0, 0.5), (2.0, 0.5)]);
        assert!((compute - 1.0).abs() < 1e-12);
        assert!((total - 3.0).abs() < 1e-12, "fits inside the stream");
        // Heavy items overflow past the duration.
        let (total, _) = serialize_items(3, &[(1.0, 5.0), (2.0, 5.0)]);
        assert!((total - 11.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_schemes_track_stream_duration() {
        let pts = run(&[100], 10, 4);
        for p in pts.iter().filter(|p| p.scheme.is_streaming()) {
            assert!(
                p.total_running_secs < 12.0,
                "{} total {}s should hug the 10s stream",
                p.scheme.name(),
                p.total_running_secs
            );
        }
    }

    #[test]
    fn batch_compute_grows_faster_than_streaming() {
        let pts = run(&[400], 10, 5);
        let sstd = pts.iter().find(|p| p.scheme == SchemeKind::Sstd).unwrap();
        let tf = pts.iter().find(|p| p.scheme == SchemeKind::TruthFinder).unwrap();
        assert!(
            tf.compute_secs > sstd.compute_secs,
            "cumulative batch reprocessing ({}) must out-cost incremental SSTD ({})",
            tf.compute_secs,
            sstd.compute_secs
        );
    }
}
