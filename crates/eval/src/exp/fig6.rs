//! Fig. 6: deadline hit rates of all schemes.
//!
//! The paper divides each trace into 100 equal intervals, treats each
//! interval's tweet volume as a workload with a soft deadline, and
//! reports the fraction of intervals whose processing finished in time.
//! Baselines run centralized (one node, no control); SSTD runs its
//! deadline-driven DTM over the DES cluster, where the PID controller can
//! raise priorities and grow the worker pool when an interval is
//! predicted to run late.
//!
//! Per-report costs combine a *measured* truth-discovery cost per scheme
//! (on the actual implementations, not assumed) with a scheme-independent
//! preprocessing cost per report (`prep_cost`): every deployment must
//! tokenize, cluster and score each tweet before any scheme sees it, and
//! in the paper's Python pipeline that work dominates. Baselines pay it
//! on one node; SSTD's DTM spreads it (plus its own TD cost) over the
//! worker pool under PID control — which is exactly why the paper's
//! Fig. 6 shows SSTD surviving tight deadlines the baselines miss.

use crate::timing::per_report_cost;
use crate::SchemeKind;
use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd_data::{Scenario, TraceBuilder};
use sstd_runtime::{Cluster, ExecutionModel, JobId};
use sstd_types::Trace;

/// One measured point of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRatePoint {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Deadline applied to every interval (seconds).
    pub deadline: f64,
    /// Fraction of intervals meeting the deadline.
    pub hit_rate: f64,
}

/// Preprocessing cost per report (seconds): tokenizing, clustering and
/// scoring one tweet — identical for every scheme.
pub const PREP_COST: f64 = 1.0e-3;

/// Runs the deadline sweep on `scenario` at `scale`.
///
/// # Examples
///
/// ```
/// use sstd_data::Scenario;
/// use sstd_eval::exp::fig6;
///
/// let pts = fig6::run(Scenario::ParisShooting, 0.001, &[0.5, 5.0], 3);
/// assert_eq!(pts.len(), 2 * 7);
/// ```
#[must_use]
pub fn run(scenario: Scenario, scale: f64, deadlines: &[f64], seed: u64) -> Vec<HitRatePoint> {
    let trace = TraceBuilder::scenario(scenario).scale(scale).seed(seed).build();
    let volumes: Vec<f64> = (0..trace.timeline().num_intervals())
        .map(|iv| trace.reports_in_interval(iv).len() as f64)
        .collect();

    let mut out = Vec::new();
    for scheme in SchemeKind::paper_table() {
        let cost = PREP_COST + per_report_cost(scheme, &trace).as_secs_f64();
        for &deadline in deadlines {
            let hit_rate = if scheme == SchemeKind::Sstd {
                sstd_hit_rate(&volumes, cost, deadline)
            } else {
                baseline_hit_rate(&volumes, cost, deadline)
            };
            out.push(HitRatePoint { scheme, deadline, hit_rate });
        }
    }
    out
}

/// Centralized baseline: each interval runs on one node; hit iff
/// `volume × cost ≤ deadline`.
fn baseline_hit_rate(volumes: &[f64], cost_per_report: f64, deadline: f64) -> f64 {
    let hits = volumes.iter().filter(|&&v| v * cost_per_report <= deadline).count();
    hits as f64 / volumes.len() as f64
}

/// How SSTD's resources are allocated in the deadline experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SstdAllocator {
    /// The paper's PID feedback controller (LCK + GCK).
    Pid,
    /// The §VII-3 future-work exact integer search
    /// ([`IlpAllocator`](sstd_control::IlpAllocator)): pick workers and
    /// priorities up front from the WCET model, no runtime feedback.
    Ilp,
}

/// Like [`run`], but with the §VII-3 exact allocator steering SSTD
/// instead of the PID controller — the comparison the paper proposes as
/// future work.
#[must_use]
pub fn run_with_allocator(
    scenario: Scenario,
    scale: f64,
    deadlines: &[f64],
    seed: u64,
    allocator: SstdAllocator,
) -> Vec<HitRatePoint> {
    match allocator {
        SstdAllocator::Pid => run(scenario, scale, deadlines, seed),
        SstdAllocator::Ilp => {
            let trace = TraceBuilder::scenario(scenario).scale(scale).seed(seed).build();
            let volumes: Vec<f64> = (0..trace.timeline().num_intervals())
                .map(|iv| trace.reports_in_interval(iv).len() as f64)
                .collect();
            let cost = PREP_COST + per_report_cost(SchemeKind::Sstd, &trace).as_secs_f64();
            deadlines
                .iter()
                .map(|&deadline| HitRatePoint {
                    scheme: SchemeKind::Sstd,
                    deadline,
                    hit_rate: ilp_hit_rate(&volumes, cost, deadline),
                })
                .collect()
        }
    }
}

/// SSTD under the exact allocator: workers fixed up front per interval
/// by integer search over the WCET model; no runtime control.
fn ilp_hit_rate(volumes: &[f64], cost_per_report: f64, deadline: f64) -> f64 {
    use sstd_control::IlpAllocator;
    let model = ExecutionModel::new(0.005, cost_per_report, cost_per_report * 1.2);
    let allocator = IlpAllocator::new(model, 16);
    let mut hits = 0usize;
    for (iv, &v) in volumes.iter().enumerate() {
        let job = DtmJob::new(JobId::new(iv as u32), v.max(1.0), deadline, 4);
        let plan = allocator.allocate(&[job]);
        let config = DtmConfig {
            control_enabled: false,
            initial_workers: plan.workers,
            max_workers: plan.workers,
            ..DtmConfig::default()
        };
        let mut dtm = DynamicTaskManager::new(config, Cluster::homogeneous(16, 1.0), model);
        if dtm.run(&[job]).expect("valid config").job_hit_rate() >= 1.0 {
            hits += 1;
        }
    }
    hits as f64 / volumes.len() as f64
}

/// SSTD: each interval's volume becomes a DTM job over the DES cluster
/// with PID control (paper-tuned gains, 4 initial workers growable to
/// 16).
fn sstd_hit_rate(volumes: &[f64], cost_per_report: f64, deadline: f64) -> f64 {
    let model = ExecutionModel::new(0.005, cost_per_report, cost_per_report * 1.2);
    let config = DtmConfig { initial_workers: 4, max_workers: 16, ..DtmConfig::default() };
    let mut hits = 0usize;
    for (iv, &v) in volumes.iter().enumerate() {
        let mut dtm = DynamicTaskManager::new(config, Cluster::homogeneous(16, 1.0), model);
        let job = DtmJob::new(JobId::new(iv as u32), v.max(1.0), deadline, 4);
        let outcome = dtm.run(&[job]).expect("valid config");
        if outcome.job_hit_rate() >= 1.0 {
            hits += 1;
        }
    }
    hits as f64 / volumes.len() as f64
}

/// Formats points as one series per scheme.
#[must_use]
pub fn format(title: &str, points: &[HitRatePoint]) -> String {
    let mut out = format!("Fig. 6 — Deadline hit rates — {title}\n");
    for scheme in SchemeKind::paper_table() {
        let series: Vec<&HitRatePoint> = points.iter().filter(|p| p.scheme == scheme).collect();
        if series.is_empty() {
            continue;
        }
        out.push_str(&format!("{:<13}", scheme.name()));
        for p in series {
            out.push_str(&format!(" dl={:>6.2}s: {:>5.1}% |", p.deadline, p.hit_rate * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Exposes the per-trace interval volumes (useful to pick sensible
/// deadline sweeps in the binaries).
#[must_use]
pub fn interval_volumes(trace: &Trace) -> Vec<usize> {
    (0..trace.timeline().num_intervals()).map(|iv| trace.reports_in_interval(iv).len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_monotone_in_deadline() {
        let pts = run(Scenario::ParisShooting, 0.001, &[0.001, 0.1, 10.0], 7);
        for scheme in SchemeKind::paper_table() {
            let series: Vec<f64> =
                pts.iter().filter(|p| p.scheme == scheme).map(|p| p.hit_rate).collect();
            assert!(
                series.windows(2).all(|w| w[0] <= w[1] + 1e-9),
                "{}: {series:?}",
                scheme.name()
            );
        }
    }

    #[test]
    fn baseline_hit_rate_edges() {
        let volumes = vec![10.0, 100.0, 1000.0];
        assert_eq!(baseline_hit_rate(&volumes, 0.01, 1_000.0), 1.0);
        assert_eq!(baseline_hit_rate(&volumes, 0.01, 0.5), 1.0 / 3.0);
        assert_eq!(baseline_hit_rate(&volumes, 1.0, 0.001), 0.0);
    }

    #[test]
    fn ilp_allocator_variant_is_monotone_and_competitive() {
        let deadlines = [0.05, 0.5, 5.0];
        let ilp =
            run_with_allocator(Scenario::ParisShooting, 0.002, &deadlines, 7, SstdAllocator::Ilp);
        assert_eq!(ilp.len(), 3);
        let rates: Vec<f64> = ilp.iter().map(|p| p.hit_rate).collect();
        assert!(rates.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{rates:?}");
        assert!(rates[2] > 0.9, "a loose deadline should be nearly always met");
    }

    #[test]
    fn sstd_parallelism_beats_a_single_node_at_equal_cost() {
        // With identical per-report cost, the DTM's workers + control must
        // hit at least as many deadlines as one node.
        let volumes: Vec<f64> = (0..20).map(|i| 50.0 + 20.0 * i as f64).collect();
        let cost = 0.004;
        let deadline = 1.2;
        let single = baseline_hit_rate(&volumes, cost, deadline);
        let dtm = sstd_hit_rate(&volumes, cost, deadline);
        assert!(dtm >= single, "DTM {dtm} vs single node {single}");
        assert!(dtm > 0.5, "parallel pool should rescue most intervals: {dtm}");
    }
}
