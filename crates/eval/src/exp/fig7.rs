//! Fig. 7: SSTD speedup vs. number of workers for growing data sizes.
//!
//! `Speedup(N)` is the ratio of serial execution time to execution time
//! on `N` workers. The paper pushes trace sizes past the largest
//! real-world events (16.9M tweets, Super Bowl 2016) and shows the
//! speedup curve improving with data size — large traces amortize the
//! per-task initialization and tail-straggler overheads that cap small
//! traces well below the ideal `N`.

use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};

/// One measured point of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Trace size in tweets.
    pub data_size: u64,
    /// Worker-pool size.
    pub workers: usize,
    /// `makespan(1 worker) / makespan(workers)`.
    pub speedup: f64,
}

/// Tweets per task — the chunk size the Dynamic Task Manager uses when
/// splitting TD jobs.
const CHUNK: u64 = 25_000;

/// Per-task init time and per-tweet cost of the simulated TD task
/// (calibrated to the SSTD engine's measured throughput order).
const MODEL: (f64, f64) = (0.3, 4.0e-5);

/// Runs the sweep: every data size × every worker count.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::fig7;
///
/// let pts = fig7::run(&[100_000], &[1, 4]);
/// assert_eq!(pts.len(), 2);
/// let s4 = pts.iter().find(|p| p.workers == 4).unwrap();
/// assert!(s4.speedup > 1.0);
/// ```
#[must_use]
pub fn run(data_sizes: &[u64], worker_counts: &[usize]) -> Vec<SpeedupPoint> {
    let mut out = Vec::new();
    for &data in data_sizes {
        let serial = makespan(data, 1);
        for &workers in worker_counts {
            let parallel = if workers == 1 { serial } else { makespan(data, workers) };
            out.push(SpeedupPoint { data_size: data, workers, speedup: serial / parallel });
        }
    }
    out
}

/// DES makespan of one TD job of `data` tweets on `workers` workers.
fn makespan(data: u64, workers: usize) -> f64 {
    let model = ExecutionModel::new(MODEL.0, MODEL.1, MODEL.1 * 1.2);
    let mut des = DesEngine::new(Cluster::homogeneous(workers, 1.0), model, workers);
    let num_tasks = data.div_ceil(CHUNK).max(1);
    let per_task = data as f64 / num_tasks as f64;
    for _ in 0..num_tasks {
        des.submit(TaskSpec::new(JobId::new(0), per_task));
    }
    des.run_to_completion().makespan
}

/// Formats points as one series per data size.
#[must_use]
pub fn format(points: &[SpeedupPoint]) -> String {
    let mut out = String::from("Fig. 7 — Speedup of the SSTD scheme\n");
    let mut sizes: Vec<u64> = points.iter().map(|p| p.data_size).collect();
    sizes.dedup();
    for size in sizes {
        out.push_str(&format!("{:>10} tweets:", size));
        for p in points.iter().filter(|p| p.data_size == size) {
            out.push_str(&format!(" {}w={:.2}x |", p.workers, p.speedup));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_of_one_worker_is_one() {
        let pts = run(&[1_000_000], &[1]);
        assert!((pts[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_increases_with_workers() {
        let pts = run(&[16_900_000], &[1, 2, 4, 8, 16]);
        let series: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        assert!(series.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{series:?}");
        assert!(series.last().unwrap() > &8.0, "16 workers on a big trace: {series:?}");
    }

    #[test]
    fn larger_traces_speed_up_better() {
        // The paper's key observation: speedup improves with trace size.
        let pts = run(&[100_000, 1_000_000, 16_900_000], &[16]);
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        assert!(
            speedups.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "speedup should grow with data: {speedups:?}"
        );
    }

    #[test]
    fn speedup_never_exceeds_ideal() {
        let pts = run(&[16_900_000], &[2, 8, 32]);
        for p in pts {
            assert!(
                p.speedup <= p.workers as f64 + 1e-9,
                "{}w gave super-linear {}",
                p.workers,
                p.speedup
            );
        }
    }
}
