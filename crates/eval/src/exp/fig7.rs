//! Fig. 7: SSTD speedup vs. number of workers for growing data sizes.
//!
//! `Speedup(N)` is the ratio of serial execution time to execution time
//! on `N` workers. The paper pushes trace sizes past the largest
//! real-world events (16.9M tweets, Super Bowl 2016) and shows the
//! speedup curve improving with data size — large traces amortize the
//! per-task initialization and tail-straggler overheads that cap small
//! traces well below the ideal `N`.
//!
//! The measurement is written against [`ExecutionBackend`], so the same
//! sweep runs on the virtual-clock DES (the default, [`run`]) or on real
//! OS threads ([`run_on`] with a `ThreadedEngine` factory) with no
//! backend-specific forks.

use sstd_runtime::{Cluster, DesEngine, ExecutionBackend, ExecutionModel, JobId, TaskSpec};

/// One measured point of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Trace size in tweets.
    pub data_size: u64,
    /// Worker-pool size.
    pub workers: usize,
    /// `makespan(1 worker) / makespan(workers)`.
    pub speedup: f64,
}

/// Tweets per task — the chunk size the Dynamic Task Manager uses when
/// splitting TD jobs.
const CHUNK: u64 = 25_000;

/// The simulated TD task cost model (per-task init time and per-tweet
/// cost, calibrated to the SSTD engine's measured throughput order).
/// Shared by the sweep, the benchmarks, and threaded backends via
/// `ThreadedEngine::set_simulation`.
#[must_use]
pub fn model() -> ExecutionModel {
    ExecutionModel::new(0.3, 4.0e-5, 4.8e-5)
}

/// Makespan of one TD job of `data` tweets on `backend`, in the backend's
/// native seconds. Submits `data / 25k` equal chunk tasks through the
/// trait and runs them to completion.
pub fn makespan<B: ExecutionBackend + ?Sized>(backend: &mut B, data: u64) -> f64 {
    let num_tasks = data.div_ceil(CHUNK).max(1);
    let per_task = data as f64 / num_tasks as f64;
    for _ in 0..num_tasks {
        backend.submit(TaskSpec::new(JobId::new(0), per_task));
    }
    backend.run_to_completion().makespan
}

/// Runs the sweep on the DES: every data size × every worker count.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::fig7;
///
/// let pts = fig7::run(&[100_000], &[1, 4]);
/// assert_eq!(pts.len(), 2);
/// let s4 = pts.iter().find(|p| p.workers == 4).unwrap();
/// assert!(s4.speedup > 1.0);
/// ```
#[must_use]
pub fn run(data_sizes: &[u64], worker_counts: &[usize]) -> Vec<SpeedupPoint> {
    run_on(data_sizes, worker_counts, |w| DesEngine::new(Cluster::homogeneous(w, 1.0), model(), w))
}

/// Runs the sweep on backends built by `make_backend(workers)` — the DES
/// for the paper's 1,900-machine scale, a `ThreadedEngine` to measure the
/// same workload on real threads.
#[must_use]
pub fn run_on<B, F>(
    data_sizes: &[u64],
    worker_counts: &[usize],
    mut make_backend: F,
) -> Vec<SpeedupPoint>
where
    B: ExecutionBackend,
    F: FnMut(usize) -> B,
{
    let mut out = Vec::new();
    for &data in data_sizes {
        let serial = makespan(&mut make_backend(1), data);
        for &workers in worker_counts {
            let parallel =
                if workers == 1 { serial } else { makespan(&mut make_backend(workers), data) };
            out.push(SpeedupPoint { data_size: data, workers, speedup: serial / parallel });
        }
    }
    out
}

/// Packs the sweep into a `BENCH_*.json`-compatible trajectory: one point
/// per `(data_size, workers)` cell.
///
/// # Examples
///
/// ```
/// use sstd_eval::exp::fig7;
///
/// let report = fig7::bench_report(&fig7::run(&[100_000], &[1, 2]));
/// assert_eq!(report.name(), "fig7_speedup");
/// assert_eq!(report.len(), 2);
/// assert!(report.to_json().contains("\"workers\":2"));
/// ```
#[must_use]
pub fn bench_report(points: &[SpeedupPoint]) -> sstd_obs::BenchReport {
    let mut report = sstd_obs::BenchReport::new("fig7_speedup");
    for p in points {
        report.push_point(&[
            ("data_size", p.data_size as f64),
            ("workers", p.workers as f64),
            ("speedup", p.speedup),
        ]);
    }
    report
}

/// Formats points as one series per data size.
#[must_use]
pub fn format(points: &[SpeedupPoint]) -> String {
    let mut out = String::from("Fig. 7 — Speedup of the SSTD scheme\n");
    let mut sizes: Vec<u64> = points.iter().map(|p| p.data_size).collect();
    sizes.dedup();
    for size in sizes {
        out.push_str(&format!("{:>10} tweets:", size));
        for p in points.iter().filter(|p| p.data_size == size) {
            out.push_str(&format!(" {}w={:.2}x |", p.workers, p.speedup));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::ThreadedEngine;

    #[test]
    fn speedup_of_one_worker_is_one() {
        let pts = run(&[1_000_000], &[1]);
        assert!((pts[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_increases_with_workers() {
        let pts = run(&[16_900_000], &[1, 2, 4, 8, 16]);
        let series: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        assert!(series.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{series:?}");
        assert!(series.last().unwrap() > &8.0, "16 workers on a big trace: {series:?}");
    }

    #[test]
    fn larger_traces_speed_up_better() {
        // The paper's key observation: speedup improves with trace size.
        let pts = run(&[100_000, 1_000_000, 16_900_000], &[16]);
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup).collect();
        assert!(
            speedups.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "speedup should grow with data: {speedups:?}"
        );
    }

    #[test]
    fn speedup_never_exceeds_ideal() {
        let pts = run(&[16_900_000], &[2, 8, 32]);
        for p in pts {
            assert!(
                p.speedup <= p.workers as f64 + 1e-9,
                "{}w gave super-linear {}",
                p.workers,
                p.speedup
            );
        }
    }

    #[test]
    fn threaded_backend_reproduces_the_speedup_trend() {
        // The same sweep on real OS threads: simulated task durations
        // compressed 1000× (a 1.3s chunk sleeps 1.3ms), so four workers
        // genuinely parallelize the sleeps. Wall-clock noise keeps the
        // bound loose, but parallel must clearly beat serial.
        let pts = run_on(&[1_000_000], &[1, 4], |w| {
            let engine: ThreadedEngine<()> = ThreadedEngine::new(w);
            engine.set_simulation(model(), 1.0e-3);
            engine
        });
        assert_eq!(pts.len(), 2);
        let s1 = pts.iter().find(|p| p.workers == 1).unwrap().speedup;
        let s4 = pts.iter().find(|p| p.workers == 4).unwrap().speedup;
        assert!((s1 - 1.0).abs() < 1e-12);
        assert!(s4 > 1.5, "4 real workers must beat serial: {s4:.2}x");
        assert!(s4 <= 4.5, "cannot beat the ideal by more than jitter: {s4:.2}x");
    }
}
