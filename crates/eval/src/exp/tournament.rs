//! Truth-discovery tournament: every paper-table scheme against every
//! adversarial scenario family, with CI regression gates.
//!
//! The paper's accuracy tables (III–V) compare schemes on three traces
//! that are all benign in the same way: many honest independent sources
//! and slowly drifting truth. The tournament instead sweeps the five
//! adversarial axes of [`sstd_testkit::domain::scenario`] — coverage
//! skew, conflict ratio, long-tail populations, copy/collusion
//! communities, and truth drift — at several adversity levels, running
//! SSTD ([`StreamingSstd`]) and every baseline of
//! [`SchemeKind::paper_table`] under the identical per-interval
//! protocol.
//!
//! Per cell (scheme × family × level) it records accuracy/F1/Brier (via
//! [`crate::metrics`]), wall-clock, per-interval latency tails (one
//! [`StreamTick`] per interval into a per-cell [`EventStore`], reduced
//! through the query layer), and — when the caller installs a
//! [`MemProbe`] (the `tournament` binary's counting allocator) — peak
//! working set. The result renders as a human leaderboard and as
//! `leaderboard.json` in the repository's `BENCH_*.json` trajectory
//! shape (numeric `points`, with `schemes`/`families` legend arrays
//! mapping the indices).
//!
//! Two regression gates make this a CI job rather than a report:
//! every cell must produce complete, finite estimates, and SSTD's mean
//! accuracy over the paper-like cells (lowest adversity level) must not
//! fall below [`SSTD_PAPER_FLOOR`]. The collusion and fast-drift
//! degradation rows are recorded (not gated): they are the quantified
//! motivation for the model-extension roadmap items.

use crate::metrics::{brier_score, score_estimates};
use crate::schemes::{streaming_scheme, SchemeKind};
use sstd_core::{ConfidenceEstimates, SstdConfig, StreamingSstd, TruthEstimates};
use sstd_obs::{EventStore, StreamTick};
use sstd_testkit::domain::scenario::{Family, ScenarioSpec};
use sstd_testkit::mix64;
use sstd_types::{ClaimId, Trace, TruthLabel};
use std::time::Instant;

/// Adversity level treated as "paper-like" (the benign corner every
/// family shares); must be the smallest level in the grid.
pub const PAPER_LIKE_LEVEL: f64 = 0.1;

/// Regression floor for SSTD's mean accuracy across the paper-like
/// cells of the quick grid. Measured at 0.9104 on the pinned CI seed
/// (2017); the grid is fully deterministic, so the single point of
/// headroom is not noise margin — anything below the floor is a real
/// accuracy regression in the engine or the generators.
pub const SSTD_PAPER_FLOOR: f64 = 0.90;

/// Hooks into the driver binary's counting global allocator, letting
/// the library measure peak working set per cell without owning an
/// allocator itself.
#[derive(Debug, Clone, Copy)]
pub struct MemProbe {
    /// Resets the high-water mark to the current live size.
    pub reset: fn(),
    /// Bytes at the high-water mark since the last reset.
    pub peak_bytes: fn() -> u64,
}

/// Tournament grid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentConfig {
    /// Base seed; each cell derives its own scenario seed from it.
    pub seed: u64,
    /// Adversity levels swept per family (ascending, quantized to 0.1).
    pub levels: Vec<f64>,
    /// Claims per scenario.
    pub num_claims: usize,
    /// Sources per scenario.
    pub num_sources: usize,
    /// Timeline intervals per scenario.
    pub num_intervals: usize,
    /// Ordinary reports per claim and interval.
    pub reports_per_cell: usize,
}

impl TournamentConfig {
    /// The CI grid: 2 levels × 5 families × 7 schemes = 70 cells, a few
    /// seconds end to end.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            levels: vec![PAPER_LIKE_LEVEL, 0.9],
            num_claims: 8,
            num_sources: 12,
            num_intervals: 12,
            reports_per_cell: 3,
        }
    }

    /// The full grid: 5 levels × 5 families × 7 schemes = 175 cells.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self {
            levels: vec![PAPER_LIKE_LEVEL, 0.3, 0.5, 0.7, 0.9],
            num_claims: 10,
            num_sources: 16,
            num_intervals: 16,
            reports_per_cell: 3,
            ..Self::quick(seed)
        }
    }

    fn spec(&self, family: Family, level: f64) -> ScenarioSpec {
        ScenarioSpec {
            family,
            level,
            // One scenario per (family, level) cell group, shared by all
            // schemes so the comparison is paired.
            seed: mix64(self.seed ^ ((family.index() as u64) << 32) ^ (level * 10.0) as u64),
            num_claims: self.num_claims,
            num_sources: self.num_sources,
            num_intervals: self.num_intervals,
            reports_per_cell: self.reports_per_cell,
        }
    }
}

/// One (scheme × family × level) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Scenario family name.
    pub family: &'static str,
    /// Adversity level of the scenario.
    pub level: f64,
    /// Label accuracy against the planted truth.
    pub accuracy: f64,
    /// F1 over (claim, interval) decisions.
    pub f1: f64,
    /// Brier score of the hard-label confidences (lower is better).
    pub brier: f64,
    /// End-to-end wall clock for the cell, milliseconds.
    pub wall_ms: f64,
    /// p99 of per-interval processing latency, milliseconds.
    pub p99_interval_ms: f64,
    /// Worst per-interval processing latency, milliseconds.
    pub max_interval_ms: f64,
    /// Peak working set during the run, bytes (0 without a probe).
    pub peak_bytes: u64,
    /// Claims the scheme produced estimates for.
    pub claims_estimated: usize,
}

/// SSTD's accuracy drop from the paper-like to the most adversarial
/// level of one family.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Scenario family name.
    pub family: &'static str,
    /// SSTD accuracy at [`PAPER_LIKE_LEVEL`].
    pub paper_like: f64,
    /// SSTD accuracy at the highest swept level.
    pub adversarial: f64,
}

impl Degradation {
    /// Accuracy lost to the adversary (positive = degraded).
    #[must_use]
    pub fn drop(&self) -> f64 {
        self.paper_like - self.adversarial
    }
}

/// The tournament result: all cells, the SSTD degradation profile, and
/// any gate violations.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Base seed the grid ran with.
    pub seed: u64,
    /// Every measured cell, in (family, level, scheme) grid order.
    pub cells: Vec<Cell>,
    /// SSTD's paper-like → adversarial accuracy drop per family.
    pub degradation: Vec<Degradation>,
    /// Violated gate invariants; empty means the gates passed.
    pub violations: Vec<String>,
}

impl Leaderboard {
    /// `true` when every regression gate held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// SSTD's mean accuracy over the paper-like cells.
    #[must_use]
    pub fn sstd_paper_like_accuracy(&self) -> f64 {
        let accs: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.scheme == SchemeKind::Sstd.name() && c.level <= PAPER_LIKE_LEVEL)
            .map(|c| c.accuracy)
            .collect();
        if accs.is_empty() {
            f64::NAN
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        }
    }

    /// Renders `leaderboard.json`: the `BENCH_*.json` trajectory shape
    /// (`bench` + numeric `points`) plus legend arrays mapping the
    /// `scheme`/`family` indices, the degradation rows, and the gate
    /// verdict.
    #[must_use]
    pub fn to_json(&self) -> String {
        let schemes: Vec<&'static str> =
            SchemeKind::paper_table().iter().map(|k| k.name()).collect();
        let families: Vec<&'static str> = Family::ALL.iter().map(|f| f.name()).collect();
        let legend = |names: &[&str]| {
            names.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ")
        };
        let points = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"scheme\": {}, \"family\": {}, \"level\": {}, \"accuracy\": {}, \
                     \"f1\": {}, \"brier\": {}, \"wall_ms\": {}, \"p99_interval_ms\": {}, \
                     \"max_interval_ms\": {}, \"peak_bytes\": {}, \"claims_estimated\": {}}}",
                    schemes.iter().position(|s| *s == c.scheme).expect("scheme in legend"),
                    families.iter().position(|f| *f == c.family).expect("family in legend"),
                    json_f64(c.level),
                    json_f64(c.accuracy),
                    json_f64(c.f1),
                    json_f64(c.brier),
                    json_f64(c.wall_ms),
                    json_f64(c.p99_interval_ms),
                    json_f64(c.max_interval_ms),
                    c.peak_bytes,
                    c.claims_estimated,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        let degradation = self
            .degradation
            .iter()
            .map(|d| {
                format!(
                    "{{\"family\": {}, \"paper_like\": {}, \"adversarial\": {}, \"drop\": {}}}",
                    families.iter().position(|f| *f == d.family).expect("family in legend"),
                    json_f64(d.paper_like),
                    json_f64(d.adversarial),
                    json_f64(d.drop()),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"tournament_leaderboard\",\n",
                "  \"seed\": {},\n",
                "  \"schemes\": [{}],\n",
                "  \"families\": [{}],\n",
                "  \"sstd_paper_like_accuracy\": {},\n",
                "  \"sstd_paper_floor\": {},\n",
                "  \"points\": [\n    {}\n  ],\n",
                "  \"degradation\": [\n    {}\n  ],\n",
                "  \"violations\": [{}]\n",
                "}}\n"
            ),
            self.seed,
            legend(&schemes),
            legend(&families),
            json_f64(self.sstd_paper_like_accuracy()),
            json_f64(SSTD_PAPER_FLOOR),
            points,
            degradation,
            violations,
        )
    }

    /// Renders the human leaderboard for the CI log: one table per
    /// family × level, schemes ranked by accuracy, then the SSTD
    /// degradation profile and the gate verdict.
    #[must_use]
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("truth-discovery tournament (seed {})\n", self.seed));
        let mut groups: Vec<(&'static str, f64)> = Vec::new();
        for c in &self.cells {
            if !groups.contains(&(c.family, c.level)) {
                groups.push((c.family, c.level));
            }
        }
        for (family, level) in groups {
            out.push_str(&format!("\n  {family} @ level {level:.1}\n"));
            let mut ranked: Vec<&Cell> =
                self.cells.iter().filter(|c| c.family == family && c.level == level).collect();
            ranked.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
            for c in ranked {
                out.push_str(&format!(
                    "    {:<12} acc {:.3}  f1 {:.3}  brier {:.3}  wall {:>7.2}ms  p99 {:>6.2}ms  peak {:>6}KiB\n",
                    c.scheme,
                    c.accuracy,
                    c.f1,
                    c.brier,
                    c.wall_ms,
                    c.p99_interval_ms,
                    c.peak_bytes / 1024,
                ));
            }
        }
        out.push_str("\n  SSTD degradation (paper-like -> adversarial)\n");
        for d in &self.degradation {
            out.push_str(&format!(
                "    {:<14} {:.3} -> {:.3}  (drop {:+.3})\n",
                d.family,
                d.paper_like,
                d.adversarial,
                d.drop(),
            ));
        }
        out.push_str(&format!(
            "\n  SSTD paper-like accuracy {:.3} (floor {SSTD_PAPER_FLOOR})\n",
            self.sstd_paper_like_accuracy()
        ));
        if self.passed() {
            out.push_str("  PASS: all gates held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("  VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Runs the tournament without a memory probe (peak bytes report 0).
#[must_use]
pub fn run(config: &TournamentConfig) -> Leaderboard {
    run_with_probe(config, None)
}

/// Runs the full grid, measuring peak working set through `probe` when
/// one is installed.
#[must_use]
pub fn run_with_probe(config: &TournamentConfig, probe: Option<&MemProbe>) -> Leaderboard {
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    for family in Family::ALL {
        for &level in &config.levels {
            let trace = config.spec(family, level).build().trace();
            for kind in SchemeKind::paper_table() {
                let cell = run_cell(kind, family, level, &trace, probe);
                audit_cell(&cell, &trace, &mut violations);
                cells.push(cell);
            }
        }
    }

    let sstd = SchemeKind::Sstd.name();
    let max_level = config.levels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let acc_of = |family: &str, level: f64| {
        cells
            .iter()
            .find(|c| c.scheme == sstd && c.family == family && c.level == level)
            .map_or(f64::NAN, |c| c.accuracy)
    };
    let degradation: Vec<Degradation> = Family::ALL
        .iter()
        .map(|f| Degradation {
            family: f.name(),
            paper_like: acc_of(f.name(), PAPER_LIKE_LEVEL),
            adversarial: acc_of(f.name(), max_level),
        })
        .collect();

    let mut board = Leaderboard { seed: config.seed, cells, degradation, violations };
    let paper_like = board.sstd_paper_like_accuracy();
    // NaN must trip the gate too, so test for "holds" and negate.
    let floor_holds = paper_like >= SSTD_PAPER_FLOOR;
    if !floor_holds {
        board.violations.push(format!(
            "SSTD paper-like accuracy {paper_like:.4} fell below the {SSTD_PAPER_FLOOR} floor"
        ));
    }
    board
}

fn audit_cell(cell: &Cell, trace: &Trace, violations: &mut Vec<String>) {
    let ctx = format!("{}/{}@{:.1}", cell.scheme, cell.family, cell.level);
    for (name, v) in [("accuracy", cell.accuracy), ("f1", cell.f1), ("brier", cell.brier)] {
        if !v.is_finite() {
            violations.push(format!("{ctx}: {name} is not finite ({v})"));
        }
    }
    if cell.claims_estimated != trace.num_claims() {
        violations.push(format!(
            "{ctx}: estimates cover {} of {} claims",
            cell.claims_estimated,
            trace.num_claims()
        ));
    }
}

fn run_cell(
    kind: SchemeKind,
    family: Family,
    level: f64,
    trace: &Trace,
    probe: Option<&MemProbe>,
) -> Cell {
    let store = EventStore::new();
    if let Some(p) = probe {
        (p.reset)();
    }
    let start = Instant::now();
    let estimates = drive_instrumented(kind, trace, &store);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let peak_bytes = probe.map_or(0, |p| (p.peak_bytes)());

    let m = score_estimates(trace.ground_truth(), &estimates);
    let brier = brier_score(trace.ground_truth(), &hard_confidence(&estimates));
    let latency = |e: &sstd_obs::Event| e.stream_tick().map(|t| t.decode_latency * 1e3);
    let p99_interval_ms = store.query().stream().percentile(0.99, latency).unwrap_or(f64::NAN);
    let max_interval_ms = store.query().stream().max(latency).unwrap_or(f64::NAN);

    Cell {
        scheme: kind.name(),
        family: family.name(),
        level,
        accuracy: m.accuracy(),
        f1: m.f1(),
        brier,
        wall_ms,
        p99_interval_ms,
        max_interval_ms,
        peak_bytes,
        claims_estimated: estimates.num_claims(),
    }
}

/// Drives one scheme over the trace interval by interval, recording a
/// [`StreamTick`] per interval so latency tails come out of the query
/// layer like every other pipeline metric in this repo.
fn drive_instrumented(kind: SchemeKind, trace: &Trace, store: &EventStore) -> TruthEstimates {
    let n = trace.timeline().num_intervals();
    if kind == SchemeKind::Sstd {
        let mut sstd = StreamingSstd::new(SstdConfig::default(), trace.timeline().clone());
        for iv in 0..n {
            let reports = trace.reports_in_interval(iv);
            let t0 = Instant::now();
            for r in reports {
                let _ = sstd.push(r);
            }
            record_tick(store, iv, reports.len(), t0.elapsed().as_secs_f64());
        }
        return sstd.finish();
    }

    let mut scheme = streaming_scheme(kind, trace.num_sources(), trace.num_claims());
    let mut per_claim: Vec<Vec<TruthLabel>> = vec![Vec::with_capacity(n); trace.num_claims()];
    for iv in 0..n {
        let reports = trace.reports_in_interval(iv);
        let t0 = Instant::now();
        let estimates = scheme.observe_interval(reports);
        record_tick(store, iv, reports.len(), t0.elapsed().as_secs_f64());
        for (u, labels) in per_claim.iter_mut().enumerate() {
            labels
                .push(estimates.get(&ClaimId::new(u as u32)).copied().unwrap_or(TruthLabel::False));
        }
    }
    let mut out = TruthEstimates::new(n);
    for (u, labels) in per_claim.into_iter().enumerate() {
        out.insert(ClaimId::new(u as u32), labels);
    }
    out
}

fn record_tick(store: &EventStore, interval: usize, reports: usize, latency_secs: f64) {
    store.record_stream(StreamTick {
        interval: interval as u64,
        reports: reports as u64,
        active_claims: 0,
        window_occupancy: 0.0,
        decode_latency: latency_secs,
        decision_flips: 0,
        late_reports: 0,
        rejected_reports: 0,
    });
}

/// Hard-label confidences (1.0 for `True`, 0.0 for `False`) so the
/// Brier score is computable uniformly: most baselines expose only
/// labels, so every scheme is scored on its decisions, not its internal
/// beliefs.
fn hard_confidence(estimates: &TruthEstimates) -> ConfidenceEstimates {
    let mut conf = ConfidenceEstimates::new(estimates.num_intervals());
    for (claim, labels) in estimates.iter() {
        conf.insert(claim, labels.iter().map(|l| f64::from(u8::from(l.as_bool()))).collect());
    }
    conf
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TournamentConfig {
        TournamentConfig {
            num_claims: 4,
            num_sources: 8,
            num_intervals: 6,
            reports_per_cell: 2,
            ..TournamentConfig::quick(2017)
        }
    }

    #[test]
    fn grid_covers_every_scheme_family_level() {
        let board = run(&tiny());
        assert_eq!(board.cells.len(), 7 * 5 * 2);
        for c in &board.cells {
            assert!(c.accuracy.is_finite(), "{}/{}", c.scheme, c.family);
            assert!(c.f1.is_finite());
            assert!(c.brier.is_finite());
            assert!(c.wall_ms >= 0.0);
            assert!(c.p99_interval_ms.is_finite());
            assert_eq!(c.claims_estimated, 4);
        }
        assert_eq!(board.degradation.len(), 5);
    }

    #[test]
    fn leaderboard_renders_json_and_text() {
        let board = run(&tiny());
        let json = board.to_json();
        for key in [
            "\"bench\": \"tournament_leaderboard\"",
            "\"schemes\"",
            "\"families\"",
            "\"points\"",
            "\"degradation\"",
            "\"violations\"",
            "\"sstd_paper_like_accuracy\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let text = board.format();
        assert!(text.contains("SSTD degradation"));
        assert!(text.contains("collusion"));
    }

    #[test]
    fn same_seed_reproduces_the_same_accuracies() {
        // Wall-clock columns jitter run to run; every accuracy column is
        // a pure function of the seed.
        let fingerprint = |b: &Leaderboard| -> Vec<(String, f64, f64, f64)> {
            b.cells
                .iter()
                .map(|c| {
                    (format!("{}/{}/{}", c.scheme, c.family, c.level), c.accuracy, c.f1, c.brier)
                })
                .collect()
        };
        let (a, b) = (run(&tiny()), run(&tiny()));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn memory_probe_is_read_per_cell() {
        fn reset() {}
        fn peak() -> u64 {
            4096
        }
        let probe = MemProbe { reset, peak_bytes: peak };
        let mut cfg = tiny();
        cfg.levels = vec![PAPER_LIKE_LEVEL];
        let board = run_with_probe(&cfg, Some(&probe));
        assert!(board.cells.iter().all(|c| c.peak_bytes == 4096));
    }
}
