//! One module per paper artifact (table or figure).

pub mod accuracy;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod recovery;
pub mod robustness;
pub mod table2;
pub mod tournament;
pub mod trace_gate;
pub mod tuning;
