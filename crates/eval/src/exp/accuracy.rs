//! Tables III–V: truth-discovery effectiveness on the three traces.

use crate::metrics::{score_estimates, ConfusionMatrix};
use crate::{run_scheme, SchemeKind};
use sstd_data::{Scenario, TraceBuilder};

/// One row of an accuracy table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRow {
    /// The scheme evaluated.
    pub scheme: SchemeKind,
    /// Its confusion matrix over all `(claim, interval)` cells.
    pub matrix: ConfusionMatrix,
}

/// Runs the seven paper schemes on `scenario` at `scale` and returns one
/// row per scheme, in the paper's table order (SSTD first).
///
/// # Examples
///
/// ```
/// use sstd_data::Scenario;
/// use sstd_eval::exp::accuracy;
///
/// let rows = accuracy::run(Scenario::ParisShooting, 0.001, 7);
/// assert_eq!(rows.len(), 7);
/// assert_eq!(rows[0].scheme.name(), "SSTD");
/// ```
#[must_use]
pub fn run(scenario: Scenario, scale: f64, seed: u64) -> Vec<AccuracyRow> {
    let trace = TraceBuilder::scenario(scenario).scale(scale).seed(seed).build();
    SchemeKind::paper_table()
        .into_iter()
        .map(|scheme| AccuracyRow {
            scheme,
            matrix: score_estimates(trace.ground_truth(), &run_scheme(scheme, &trace)),
        })
        .collect()
}

/// Formats rows as the paper's Tables III–V layout.
#[must_use]
pub fn format(title: &str, rows: &[AccuracyRow]) -> String {
    let mut out = format!(
        "TRUTH DISCOVERY RESULTS - {title}\n\
         Method        Accuracy  Precision  Recall  F1-Score\n"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>8.3} {:>10.3} {:>7.3} {:>9.3}\n",
            r.scheme.name(),
            r.matrix.accuracy(),
            r.matrix.precision(),
            r.matrix.recall(),
            r.matrix.f1(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sstd_leads_on_accuracy() {
        // The headline claim of Tables III–V: SSTD beats every baseline
        // on accuracy (checked per trace at small scale).
        for scenario in [Scenario::ParisShooting, Scenario::CollegeFootball] {
            let rows = run(scenario, 0.0015, 13);
            let sstd = rows[0].matrix.accuracy();
            for row in &rows[1..] {
                assert!(
                    sstd >= row.matrix.accuracy() - 0.02,
                    "{scenario:?}: SSTD {sstd} vs {} {}",
                    row.scheme.name(),
                    row.matrix.accuracy()
                );
            }
        }
    }

    #[test]
    fn format_lists_all_schemes() {
        let rows = run(Scenario::ParisShooting, 0.001, 1);
        let s = format("PARIS SHOOTING", &rows);
        for name in ["SSTD", "DynaTD", "TruthFinder", "RTD", "CATD", "Invest", "3-Estimates"] {
            assert!(s.contains(name), "{s}");
        }
    }
}
