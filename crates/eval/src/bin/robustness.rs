//! Extension experiment: deadline hit rates under worker eviction storms
//! and injected task faults (static allocation vs. the PID-controlled
//! DTM).
//!
//! Usage: `cargo run -p sstd-eval --bin robustness`

use sstd_eval::exp::robustness;

fn main() {
    let pts = robustness::run(&[0, 2, 4, 8, 12]);
    print!("{}", robustness::format(&pts));
    println!();
    let retries = robustness::retry_policies();
    let sweep = robustness::run_fault_sweep(&[0, 4, 8], &[0.0, 0.1, 0.2], &retries);
    print!("{}", robustness::format_fault_sweep(&sweep));
}
