//! Extension experiment: deadline hit rates under worker eviction storms
//! (static allocation vs. the PID-controlled DTM).
//!
//! Usage: `cargo run -p sstd-eval --bin robustness`

use sstd_eval::exp::robustness;

fn main() {
    let pts = robustness::run(&[0, 2, 4, 8, 12]);
    print!("{}", robustness::format(&pts));
}
