//! Extension experiment: checkpoint cadence vs. replay work under
//! injected ingest crashes and data-path chaos.
//!
//! Usage: `cargo run -p sstd-eval --bin recovery [-- --quick] [-- --json PATH]`
//!
//! `--quick` shrinks the grid for CI smoke runs; `--json PATH` writes
//! the measured cells as `recovery_sweep.json`.

use sstd_eval::exp::recovery;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let (cadences, crashes): (Vec<u64>, Vec<usize>) =
        if quick { (vec![0, 64], vec![0, 2]) } else { (vec![0, 16, 64, 256], vec![0, 1, 3, 6]) };
    let pts = recovery::run(&cadences, &crashes);
    print!("{}", recovery::format(&pts));

    if let Some(path) = json_path {
        std::fs::write(&path, recovery::to_json(&pts)).expect("write recovery sweep JSON");
        eprintln!("wrote {path}");
    }
}
