//! Extension experiment: calibration of SSTD's posterior confidence
//! (Brier score) as evidence density grows, next to hard-label accuracy.
//!
//! Usage: `cargo run -p sstd-eval --bin calibration [-- <seed>]`

use sstd_core::{SstdConfig, SstdEngine};
use sstd_data::{Scenario, TraceBuilder};
use sstd_eval::metrics::{brier_score, score_estimates};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    println!("SSTD posterior calibration vs. evidence density (seed {seed})");
    println!("(Brier: 0 = perfect, 0.25 = uninformed constant 0.5)\n");
    println!("{:<18} {:>9} {:>9} {:>9}", "trace", "scale", "accuracy", "brier");
    for scenario in [Scenario::BostonBombing, Scenario::ParisShooting, Scenario::CollegeFootball] {
        for scale in [0.005, 0.02, 0.05] {
            let trace = TraceBuilder::scenario(scenario).scale(scale).seed(seed).build();
            let (labels, confidence) =
                SstdEngine::new(SstdConfig::default()).run_with_confidence(&trace);
            let m = score_estimates(trace.ground_truth(), &labels);
            let b = brier_score(trace.ground_truth(), &confidence);
            println!("{:<18} {:>9} {:>9.3} {:>9.3}", trace.name(), scale, m.accuracy(), b);
        }
    }
}
