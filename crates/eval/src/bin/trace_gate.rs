//! CI gate binary for the trace-store query layer.
//!
//! Runs the seeded gate workload from `exp::trace_gate`, prints the
//! audit summary, optionally writes the JSON report (`--json PATH`), and
//! exits non-zero when any invariant was violated.

use sstd_eval::exp::trace_gate;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let report = trace_gate::run();
    print!("{}", report.format());
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("failed to write gate report");
        println!("wrote {path}");
    }
    if !report.passed() {
        std::process::exit(1);
    }
}
