//! Truth-discovery tournament binary: runs `exp::tournament` over the
//! adversarial scenario grid, prints the leaderboard, optionally writes
//! `leaderboard.json` (`--json PATH`), and exits non-zero when a
//! regression gate trips.
//!
//! Flags: `--quick` (CI grid: 2 levels), `--seed N` (default 2017),
//! `--json PATH`. Without `--quick` the full 5-level grid runs.
//!
//! The library crates forbid `unsafe`; this binary is its own
//! compilation unit, so it can install the counting global allocator
//! that backs the tournament's peak-working-set column. Live bytes and
//! the high-water mark are `AtomicU64`s updated on every alloc/dealloc;
//! `exp::tournament` reads them through its [`MemProbe`] hooks.

use sstd_eval::exp::tournament::{self, MemProbe, TournamentConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static BASE: AtomicU64 = AtomicU64::new(0);

struct TrackingAlloc;

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: u64) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`; the bookkeeping is
// plain atomic arithmetic with no allocation or unwinding.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: TrackingAlloc = TrackingAlloc;

/// Starts a measurement window: the high-water mark restarts from the
/// bytes currently live, which also become the window's baseline.
fn reset_peak() {
    let live = LIVE.load(Ordering::Relaxed);
    BASE.store(live, Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
}

/// Peak heap growth above the window baseline — the cell's incremental
/// peak working set.
fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed).saturating_sub(BASE.load(Ordering::Relaxed))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args.iter().position(|a| a == "--seed").map_or(2017, |i| {
        args.get(i + 1).and_then(|s| s.parse().ok()).expect("--seed requires an integer")
    });
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let config = if quick { TournamentConfig::quick(seed) } else { TournamentConfig::full(seed) };
    let probe = MemProbe { reset: reset_peak, peak_bytes };
    let board = tournament::run_with_probe(&config, Some(&probe));

    print!("{}", board.format());
    if let Some(path) = json_path {
        std::fs::write(&path, board.to_json()).expect("failed to write leaderboard");
        println!("wrote {path}");
    }
    if !board.passed() {
        std::process::exit(1);
    }
}
