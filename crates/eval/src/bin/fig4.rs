//! Regenerates paper Fig. 4 (execution time vs. data size, per trace).
//!
//! Usage: `cargo run -p sstd-eval --bin fig4 [-- <base_scale> [seed]]`

use sstd_data::Scenario;
use sstd_eval::exp::fig4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.002);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let multipliers = [1.0, 2.0, 4.0, 8.0];
    for (scenario, title) in [
        (Scenario::BostonBombing, "(a) Boston Bombing"),
        (Scenario::ParisShooting, "(b) Paris Shooting"),
        (Scenario::CollegeFootball, "(c) College Football"),
    ] {
        let pts = fig4::run(scenario, base, &multipliers, seed);
        print!("{}", fig4::format(title, &pts));
        println!();
    }
}
