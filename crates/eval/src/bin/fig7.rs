//! Regenerates paper Fig. 7 (SSTD speedup vs. workers).
//!
//! Usage: `cargo run -p sstd-eval --bin fig7`

use sstd_eval::exp::fig7;

fn main() {
    // Sizes bracket the paper's largest real event (16.9M tweets,
    // Super Bowl 2016).
    let sizes = [100_000, 1_000_000, 4_000_000, 16_900_000, 50_000_000];
    let workers = [1, 2, 4, 8, 16, 32, 64];
    let pts = fig7::run(&sizes, &workers);
    print!("{}", fig7::format(&pts));
}
