//! Regenerates paper Fig. 7 (SSTD speedup vs. workers).
//!
//! Usage: `cargo run -p sstd-eval --bin fig7 [-- --quick] [-- --json PATH]`
//!
//! `--quick` shrinks the sweep for CI smoke runs; `--json PATH` writes the
//! measured points as a `BENCH_*.json`-compatible trajectory via
//! `sstd_obs::BenchReport`.

use sstd_eval::exp::fig7;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    // Sizes bracket the paper's largest real event (16.9M tweets,
    // Super Bowl 2016); --quick keeps one mid-size curve for CI.
    let (sizes, workers): (Vec<u64>, Vec<usize>) = if quick {
        (vec![1_000_000, 16_900_000], vec![1, 4, 16])
    } else {
        (vec![100_000, 1_000_000, 4_000_000, 16_900_000, 50_000_000], vec![1, 2, 4, 8, 16, 32, 64])
    };
    let pts = fig7::run(&sizes, &workers);
    print!("{}", fig7::format(&pts));

    if let Some(path) = json_path {
        let report = fig7::bench_report(&pts);
        std::fs::write(&path, report.to_json()).expect("write bench JSON");
        eprintln!("wrote {} points to {path}", report.len());
    }
}
