//! Regenerates paper Fig. 5 (total running time vs. streaming speed).
//!
//! Usage: `cargo run -p sstd-eval --bin fig5 [-- <duration_secs> [seed]]`

use sstd_eval::exp::fig5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let rates = [50, 200, 800, 3200];
    let pts = fig5::run(&rates, duration, seed);
    print!("{}", fig5::format(&pts));
}
