//! Accuracy-side ablations of the SSTD design choices (DESIGN.md §5):
//! windowing policy, EM training, transition stickiness, and the
//! contribution-score components (uncertainty / independence discounts).
//!
//! Usage: `cargo run -p sstd-eval --bin ablation [-- <scale> [seed]]`

use sstd_core::{
    claim_partition, smooth_dependencies, AcsAggregator, BinnedClaimTruthModel, ClaimDependency,
    SstdConfig, SstdEngine, TruthEstimates,
};
use sstd_data::{Scenario, TraceBuilder};
use sstd_eval::metrics::score_estimates;
use sstd_types::{ClaimId, Independence, Report, Trace, Uncertainty};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.005);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    println!("(scale = {scale}, seed = {seed})\n");

    for scenario in [Scenario::BostonBombing, Scenario::ParisShooting, Scenario::CollegeFootball] {
        let trace = TraceBuilder::scenario(scenario).scale(scale).seed(seed).build();
        println!("=== {} ===", trace.name());

        println!("-- engine configuration ablations");
        for (label, cfg) in [
            ("full SSTD (adaptive window, EM)", SstdConfig::default()),
            ("fixed window sw=1", SstdConfig::default().with_window(1)),
            ("fixed window sw=3", SstdConfig::default().with_window(3)),
            ("fixed window sw=8", SstdConfig::default().with_window(8)),
            ("EM off (scaled initial model)", SstdConfig::default().with_training(false)),
            ("loose transitions (stay=0.6)", SstdConfig::default().with_stay_probability(0.6)),
            ("sticky transitions (stay=0.97)", SstdConfig::default().with_stay_probability(0.97)),
        ] {
            report(label, &trace, cfg);
        }

        println!("-- emission-model ablation (DESIGN.md §5)");
        report("symmetric Gaussian (default)", &trace, SstdConfig::default());
        for bins in [4usize, 8, 16] {
            let est = run_binned(&trace, bins);
            let m = score_estimates(trace.ground_truth(), &est);
            println!(
                "  binned categorical, K={bins:<2}            acc {:.3}  f1 {:.3}",
                m.accuracy(),
                m.f1()
            );
        }

        println!("-- contribution-score component ablations (paper Eq. 1)");
        report("full CS = rho*(1-kappa)*eta", &trace, SstdConfig::default());
        report_on("ignore uncertainty (kappa=0)", &strip_uncertainty(&trace));
        report_on("ignore independence (eta=1)", &strip_independence(&trace));
        report_on("attitude only", &strip_independence(&strip_uncertainty(&trace)));
        println!();
    }

    correlation_experiment(scale, seed);

    println!();
    let sweep = sstd_eval::exp::tuning::run(&[0.0, 0.4, 1.2, 2.4]);
    print!("{}", sstd_eval::exp::tuning::format(&sweep));
}

/// Paper §VII-1: decode a trace whose first 16 claim pairs share ground
/// truth, with and without the dependency-smoothing pass.
fn correlation_experiment(scale: f64, seed: u64) {
    println!("=== correlated claims (paper §VII-1 extension) ===");
    let mut builder = TraceBuilder::scenario(Scenario::Synthetic).scale(scale).seed(seed);
    builder.config_mut().correlated_claim_pairs = 16;
    let trace = builder.build();
    let estimates = SstdEngine::new(SstdConfig::default()).run(&trace);
    let deps: Vec<ClaimDependency> = (0..16u32)
        .map(|k| ClaimDependency::positive(ClaimId::new(2 * k), ClaimId::new(2 * k + 1)))
        .collect();
    let smoothed = smooth_dependencies(&estimates, &deps);

    let base = score_estimates(trace.ground_truth(), &estimates);
    let after = score_estimates(trace.ground_truth(), &smoothed);
    println!(
        "  independent decoding                acc {:.3}  f1 {:.3}",
        base.accuracy(),
        base.f1()
    );
    println!(
        "  + dependency smoothing              acc {:.3}  f1 {:.3}",
        after.accuracy(),
        after.f1()
    );
}

/// Runs the binned-emission variant of SSTD over a whole trace.
fn run_binned(trace: &Trace, bins: usize) -> TruthEstimates {
    let cfg = SstdConfig::default();
    let n = trace.timeline().num_intervals();
    let mut out = TruthEstimates::new(n);
    for (claim, reports) in claim_partition(trace) {
        let mut agg = AcsAggregator::new(n, cfg.window);
        for r in &reports {
            agg.add(trace.timeline().interval_of(r.time()), *r);
        }
        let acs = agg.sequence();
        let labels = if acs.iter().all(|a| a.abs() < 1e-9) {
            vec![sstd_types::TruthLabel::False; n]
        } else {
            BinnedClaimTruthModel::fit(&cfg, &acs, bins).decode(&acs)
        };
        out.insert(claim, labels);
    }
    out
}

fn report(label: &str, trace: &Trace, cfg: SstdConfig) {
    let m = score_estimates(trace.ground_truth(), &SstdEngine::new(cfg).run(trace));
    println!("  {label:<34} acc {:.3}  f1 {:.3}", m.accuracy(), m.f1());
}

fn report_on(label: &str, trace: &Trace) {
    report(label, trace, SstdConfig::default());
}

/// Rebuilds the trace with every report's uncertainty zeroed.
fn strip_uncertainty(trace: &Trace) -> Trace {
    rebuild(trace, |r| {
        Report::new(
            r.source(),
            r.claim(),
            r.time(),
            r.attitude(),
            Uncertainty::saturating(0.0),
            r.independence(),
        )
    })
}

/// Rebuilds the trace with every report treated as fully independent.
fn strip_independence(trace: &Trace) -> Trace {
    rebuild(trace, |r| {
        Report::new(
            r.source(),
            r.claim(),
            r.time(),
            r.attitude(),
            r.uncertainty(),
            Independence::saturating(1.0),
        )
    })
}

fn rebuild(trace: &Trace, f: impl Fn(&Report) -> Report) -> Trace {
    Trace::new(
        trace.name(),
        trace.reports().iter().map(f).collect(),
        trace.num_sources(),
        trace.num_claims(),
        trace.timeline().clone(),
        trace.ground_truth().clone(),
    )
}
