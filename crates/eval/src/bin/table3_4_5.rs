//! Regenerates paper Tables III–V (effectiveness on the three traces).
//!
//! Usage: `cargo run -p sstd-eval --bin table3_4_5 [-- <trace> [scale] [seed]]`
//! where `<trace>` is `boston`, `paris`, `football` or `all` (default).

use sstd_data::Scenario;
use sstd_eval::exp::accuracy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.005);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);

    let selected: Vec<(Scenario, &str, &str)> = match which {
        "boston" => vec![(Scenario::BostonBombing, "TABLE III", "BOSTON BOMBING")],
        "paris" => vec![(Scenario::ParisShooting, "TABLE IV", "PARIS SHOOTING")],
        "football" => vec![(Scenario::CollegeFootball, "TABLE V", "COLLEGE FOOTBALL")],
        _ => vec![
            (Scenario::BostonBombing, "TABLE III", "BOSTON BOMBING"),
            (Scenario::ParisShooting, "TABLE IV", "PARIS SHOOTING"),
            (Scenario::CollegeFootball, "TABLE V", "COLLEGE FOOTBALL"),
        ],
    };
    println!("(scale = {scale}, seed = {seed})");
    for (scenario, table, title) in selected {
        let rows = accuracy::run(scenario, scale, seed);
        println!("\n{table}");
        print!("{}", accuracy::format(title, &rows));
    }
}
