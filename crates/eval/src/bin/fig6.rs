//! Regenerates paper Fig. 6 (deadline hit rates, per trace).
//!
//! Usage: `cargo run -p sstd-eval --bin fig6 [-- <scale> [seed]]`

use sstd_data::Scenario;
use sstd_eval::exp::fig6;
use sstd_eval::exp::fig6::SstdAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.005);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let deadlines = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0];
    for (scenario, title) in [
        (Scenario::BostonBombing, "(a) Boston Bombing"),
        (Scenario::ParisShooting, "(b) Paris Shooting"),
        (Scenario::CollegeFootball, "(c) College Football"),
    ] {
        let pts = fig6::run(scenario, scale, &deadlines, seed);
        print!("{}", fig6::format(title, &pts));
        // The paper's §VII-3 future-work comparison: exact allocation.
        let ilp = fig6::run_with_allocator(scenario, scale, &deadlines, seed, SstdAllocator::Ilp);
        print!("SSTD (ILP)   ");
        for p in &ilp {
            print!(" dl={:>6.2}s: {:>5.1}% |", p.deadline, p.hit_rate * 100.0);
        }
        println!("\n");
    }
}
