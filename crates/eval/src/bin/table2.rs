//! Regenerates paper Table II (trace statistics).
//!
//! Usage: `cargo run -p sstd-eval --bin table2 [-- <scale> [seed]]`
//! Default scale 0.01 (1% of the paper's volumes); use `1.0` for full
//! Table II scale.

use sstd_eval::exp::table2;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    let rows = table2::run(scale, seed);
    println!("(scale = {scale}, seed = {seed})");
    print!("{}", table2::format(&rows));
}
