//! A uniform adapter running every scheme on a trace, interval by
//! interval — the dynamic evaluation protocol of paper §V-B.
//!
//! Batch baselines are wrapped in a sliding window re-run per interval;
//! DynaTD streams natively; SSTD runs its own engine. Every scheme
//! produces a [`TruthEstimates`] table scored by
//! [`metrics::score_estimates`](crate::metrics::score_estimates).

use sstd_baselines::{
    Catd, DynaTd, Invest, MajorityVote, RecursiveEm, Rtd, SlidingWindow, StreamingTruthDiscovery,
    ThreeEstimates, TruthDiscovery, TruthFinder, WeightedVote,
};
use sstd_core::{SstdConfig, SstdEngine, TruthEstimates};
use sstd_types::{ClaimId, Trace, TruthLabel};

/// The schemes compared in the paper's evaluation (plus the two voting
/// strawmen from §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// This paper's scheme.
    Sstd,
    /// Li et al., KDD'15 (streaming MAP).
    DynaTd,
    /// Yin et al., TKDE'08.
    TruthFinder,
    /// Zhang et al., BigData'16.
    Rtd,
    /// Li et al., VLDB'14.
    Catd,
    /// Pasternack & Roth, COLING'10.
    Invest,
    /// Galland et al., WSDM'10.
    ThreeEstimates,
    /// Unweighted voting strawman.
    MajorityVote,
    /// Contribution-weighted voting strawman.
    WeightedVote,
    /// Wang et al., ICDCS'13 (recursive EM) — related-work extra, not in
    /// the paper's comparison tables.
    RecursiveEm,
}

impl SchemeKind {
    /// The seven schemes of the paper's accuracy tables, in table order.
    #[must_use]
    pub fn paper_table() -> [SchemeKind; 7] {
        [
            SchemeKind::Sstd,
            SchemeKind::DynaTd,
            SchemeKind::TruthFinder,
            SchemeKind::Rtd,
            SchemeKind::Catd,
            SchemeKind::Invest,
            SchemeKind::ThreeEstimates,
        ]
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Sstd => "SSTD",
            SchemeKind::DynaTd => "DynaTD",
            SchemeKind::TruthFinder => "TruthFinder",
            SchemeKind::Rtd => "RTD",
            SchemeKind::Catd => "CATD",
            SchemeKind::Invest => "Invest",
            SchemeKind::ThreeEstimates => "3-Estimates",
            SchemeKind::MajorityVote => "MajorityVote",
            SchemeKind::WeightedVote => "WeightedVote",
            SchemeKind::RecursiveEm => "RecEM",
        }
    }

    /// Whether the scheme processes data incrementally (vs. re-running a
    /// batch solver per interval) — the distinction Fig. 5 probes.
    #[must_use]
    pub fn is_streaming(self) -> bool {
        matches!(self, SchemeKind::Sstd | SchemeKind::DynaTd | SchemeKind::RecursiveEm)
    }
}

/// Window (in intervals) handed to batch schemes for their per-interval
/// re-runs. Matches the SSTD engine's default ACS window so every scheme
/// sees the same amount of history.
const BATCH_WINDOW: usize = 3;

/// Runs `kind` over `trace`, producing per-interval estimates for every
/// claim.
///
/// # Examples
///
/// ```
/// use sstd_data::{Scenario, TraceBuilder};
/// use sstd_eval::{run_scheme, SchemeKind};
///
/// let trace = TraceBuilder::scenario(Scenario::Synthetic).scale(0.001).seed(1).build();
/// let estimates = run_scheme(SchemeKind::MajorityVote, &trace);
/// assert_eq!(estimates.num_intervals(), trace.timeline().num_intervals());
/// ```
#[must_use]
pub fn run_scheme(kind: SchemeKind, trace: &Trace) -> TruthEstimates {
    match kind {
        SchemeKind::Sstd => SstdEngine::new(SstdConfig::default()).run(trace),
        SchemeKind::DynaTd => run_streaming(DynaTd::new(), trace),
        SchemeKind::TruthFinder => run_batch(TruthFinder::new(), trace),
        SchemeKind::Rtd => run_batch(Rtd::new(), trace),
        SchemeKind::Catd => run_batch(Catd::new(), trace),
        SchemeKind::Invest => run_batch(Invest::new(), trace),
        SchemeKind::ThreeEstimates => run_batch(ThreeEstimates::new(), trace),
        SchemeKind::MajorityVote => run_batch(MajorityVote::new(), trace),
        SchemeKind::WeightedVote => run_batch(WeightedVote::new(), trace),
        SchemeKind::RecursiveEm => run_streaming(RecursiveEm::new(), trace),
    }
}

fn run_batch<S: TruthDiscovery>(scheme: S, trace: &Trace) -> TruthEstimates {
    let window = SlidingWindow::new(scheme, BATCH_WINDOW, trace.num_sources(), trace.num_claims());
    run_streaming(window, trace)
}

/// Builds the interval-by-interval form of a baseline scheme as one
/// uniform trait object — native streamers directly, batch solvers
/// wrapped in the same [`BATCH_WINDOW`]-interval [`SlidingWindow`] that
/// [`run_scheme`] uses. This is the adapter the tournament runner drives
/// so that every baseline is timed under an identical per-interval
/// protocol.
///
/// SSTD itself is not a baseline: the tournament drives
/// [`sstd_core::StreamingSstd`] directly, so it is not accepted here.
///
/// # Panics
///
/// Panics on [`SchemeKind::Sstd`].
#[must_use]
pub fn streaming_scheme(
    kind: SchemeKind,
    num_sources: usize,
    num_claims: usize,
) -> Box<dyn StreamingTruthDiscovery> {
    fn windowed<S: TruthDiscovery + 'static>(
        scheme: S,
        num_sources: usize,
        num_claims: usize,
    ) -> Box<dyn StreamingTruthDiscovery> {
        Box::new(SlidingWindow::new(scheme, BATCH_WINDOW, num_sources, num_claims))
    }
    match kind {
        SchemeKind::Sstd => panic!("SSTD streams via sstd_core::StreamingSstd, not this adapter"),
        SchemeKind::DynaTd => Box::new(DynaTd::new()),
        SchemeKind::RecursiveEm => Box::new(RecursiveEm::new()),
        SchemeKind::TruthFinder => windowed(TruthFinder::new(), num_sources, num_claims),
        SchemeKind::Rtd => windowed(Rtd::new(), num_sources, num_claims),
        SchemeKind::Catd => windowed(Catd::new(), num_sources, num_claims),
        SchemeKind::Invest => windowed(Invest::new(), num_sources, num_claims),
        SchemeKind::ThreeEstimates => windowed(ThreeEstimates::new(), num_sources, num_claims),
        SchemeKind::MajorityVote => windowed(MajorityVote::new(), num_sources, num_claims),
        SchemeKind::WeightedVote => windowed(WeightedVote::new(), num_sources, num_claims),
    }
}

fn run_streaming<S: StreamingTruthDiscovery>(mut scheme: S, trace: &Trace) -> TruthEstimates {
    let n = trace.timeline().num_intervals();
    let mut per_claim: Vec<Vec<TruthLabel>> = vec![Vec::with_capacity(n); trace.num_claims()];
    for iv in 0..n {
        let estimates = scheme.observe_interval(trace.reports_in_interval(iv));
        for (u, labels) in per_claim.iter_mut().enumerate() {
            let label =
                estimates.get(&ClaimId::new(u as u32)).copied().unwrap_or(TruthLabel::False);
            labels.push(label);
        }
    }
    let mut out = TruthEstimates::new(n);
    for (u, labels) in per_claim.into_iter().enumerate() {
        out.insert(ClaimId::new(u as u32), labels);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score_estimates;
    use sstd_data::{Scenario, TraceBuilder};

    fn small_trace() -> Trace {
        TraceBuilder::scenario(Scenario::Synthetic).scale(0.002).seed(11).build()
    }

    #[test]
    fn every_scheme_produces_complete_estimates() {
        let trace = small_trace();
        for kind in [
            SchemeKind::Sstd,
            SchemeKind::DynaTd,
            SchemeKind::TruthFinder,
            SchemeKind::Rtd,
            SchemeKind::Catd,
            SchemeKind::Invest,
            SchemeKind::ThreeEstimates,
            SchemeKind::MajorityVote,
            SchemeKind::WeightedVote,
            SchemeKind::RecursiveEm,
        ] {
            let est = run_scheme(kind, &trace);
            assert_eq!(est.num_claims(), trace.num_claims(), "{}", kind.name());
            assert_eq!(est.num_intervals(), trace.timeline().num_intervals());
        }
    }

    #[test]
    fn all_schemes_beat_coin_flipping_on_honest_data() {
        let trace = small_trace();
        for kind in SchemeKind::paper_table() {
            let m = score_estimates(trace.ground_truth(), &run_scheme(kind, &trace));
            assert!(
                m.accuracy() > 0.5,
                "{} accuracy {} not better than chance",
                kind.name(),
                m.accuracy()
            );
        }
    }

    #[test]
    fn sstd_outperforms_majority_vote() {
        let trace = small_trace();
        let sstd = score_estimates(trace.ground_truth(), &run_scheme(SchemeKind::Sstd, &trace));
        let mv =
            score_estimates(trace.ground_truth(), &run_scheme(SchemeKind::MajorityVote, &trace));
        assert!(
            sstd.accuracy() >= mv.accuracy(),
            "SSTD {} vs MajorityVote {}",
            sstd.accuracy(),
            mv.accuracy()
        );
    }

    #[test]
    fn boxed_streaming_adapter_matches_run_scheme() {
        let trace = small_trace();
        for kind in SchemeKind::paper_table() {
            if kind == SchemeKind::Sstd {
                continue;
            }
            let boxed = streaming_scheme(kind, trace.num_sources(), trace.num_claims());
            assert_eq!(run_streaming(boxed, &trace), run_scheme(kind, &trace), "{}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "StreamingSstd")]
    fn sstd_has_no_baseline_adapter() {
        let _ = streaming_scheme(SchemeKind::Sstd, 4, 4);
    }

    #[test]
    fn names_and_streaming_flags() {
        assert_eq!(SchemeKind::Sstd.name(), "SSTD");
        assert!(SchemeKind::Sstd.is_streaming());
        assert!(SchemeKind::DynaTd.is_streaming());
        assert!(!SchemeKind::Catd.is_streaming());
        assert_eq!(SchemeKind::paper_table().len(), 7);
    }
}
