//! Effectiveness metrics: accuracy, precision, recall, F1 (paper §V-B1).
//!
//! Estimates are scored per `(claim, interval)` cell against the ground
//! truth, with `True` as the positive class — a cell counts as a true
//! positive when the scheme says `True` and the ground truth agrees.

use sstd_core::TruthEstimates;
use sstd_types::{GroundTruth, TruthLabel};
use std::fmt;

/// A binary confusion matrix.
///
/// # Examples
///
/// ```
/// use sstd_eval::ConfusionMatrix;
///
/// let mut m = ConfusionMatrix::default();
/// m.record(true, true);   // TP
/// m.record(false, false); // TN
/// m.record(true, false);  // FN
/// assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((m.recall() - 0.5).abs() < 1e-12);
/// assert!((m.precision() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Estimated `True`, actually `True`.
    pub tp: u64,
    /// Estimated `True`, actually `False`.
    pub fp: u64,
    /// Estimated `False`, actually `False`.
    pub tn: u64,
    /// Estimated `False`, actually `True`.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Records one cell: `(actual, estimated)` as booleans
    /// (`true` = the claim is true).
    pub fn record(&mut self, actual: bool, estimated: bool) {
        match (actual, estimated) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Total cells scored.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`; 0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `TP / (TP + FP)`; 0 when no positive predictions.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`; 0 when no positive ground truth.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc={:.3} prec={:.3} rec={:.3} f1={:.3}",
            self.accuracy(),
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

/// Scores a scheme's estimates against the ground truth over every
/// `(claim, interval)` cell the ground truth covers. Cells the scheme
/// left unestimated count as `False` (the no-evidence convention).
///
/// # Panics
///
/// Panics if the interval counts disagree.
#[must_use]
pub fn score_estimates(truth: &GroundTruth, estimates: &TruthEstimates) -> ConfusionMatrix {
    assert_eq!(truth.num_intervals(), estimates.num_intervals(), "interval counts must match");
    let mut m = ConfusionMatrix::default();
    for (claim, labels) in truth.iter() {
        for (iv, &actual) in labels.iter().enumerate() {
            let estimated = estimates.label(claim, iv).unwrap_or(TruthLabel::False);
            m.record(actual.as_bool(), estimated.as_bool());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_types::ClaimId;

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn perfect_estimates_score_one() {
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::False]);
        let mut est = TruthEstimates::new(2);
        est.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::False]);
        let m = score_estimates(&gt, &est);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn inverted_estimates_score_zero_accuracy() {
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::False]);
        let mut est = TruthEstimates::new(2);
        est.insert(ClaimId::new(0), vec![TruthLabel::False, TruthLabel::True]);
        let m = score_estimates(&gt, &est);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn missing_claims_default_false() {
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::True]);
        gt.insert(ClaimId::new(1), vec![TruthLabel::False, TruthLabel::False]);
        let est = TruthEstimates::new(2);
        let m = score_estimates(&gt, &est);
        // Claim 0 → two FN; claim 1 → two TN.
        assert_eq!(m.fn_, 2);
        assert_eq!(m.tn, 2);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn f1_matches_hand_computation() {
        let m = ConfusionMatrix { tp: 6, fp: 2, tn: 1, fn_: 3 };
        let p = 6.0 / 8.0;
        let r = 6.0 / 9.0;
        assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn display_shows_all_four() {
        let m = ConfusionMatrix { tp: 1, fp: 1, tn: 1, fn_: 1 };
        let s = m.to_string();
        assert!(s.contains("acc=") && s.contains("f1="));
    }
}

/// Brier score of soft (posterior) estimates against the ground truth:
/// mean squared error between `P(true)` and the 0/1 outcome, over every
/// `(claim, interval)` cell the ground truth covers. Lower is better;
/// 0.25 is the score of an uninformed constant 0.5.
///
/// Cells without a posterior count as 0.5 (no evidence — maximal
/// uncertainty), mirroring the hard-label `False` default.
///
/// # Examples
///
/// ```
/// use sstd_core::ConfidenceEstimates;
/// use sstd_eval::metrics::brier_score;
/// use sstd_types::{ClaimId, GroundTruth, TruthLabel};
///
/// let mut gt = GroundTruth::new(2);
/// gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::False]);
/// let mut conf = ConfidenceEstimates::new(2);
/// conf.insert(ClaimId::new(0), vec![0.9, 0.1]);
/// assert!((brier_score(&gt, &conf) - 0.01).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the interval counts disagree.
#[must_use]
pub fn brier_score(truth: &GroundTruth, confidence: &sstd_core::ConfidenceEstimates) -> f64 {
    assert_eq!(truth.num_intervals(), confidence.num_intervals(), "interval counts must match");
    let mut sum = 0.0;
    let mut n = 0u64;
    for (claim, labels) in truth.iter() {
        for (iv, &actual) in labels.iter().enumerate() {
            let p = confidence.confidence(claim, iv).unwrap_or(0.5);
            let y = if actual.as_bool() { 1.0 } else { 0.0 };
            sum += (p - y) * (p - y);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod brier_tests {
    use super::*;
    use sstd_core::ConfidenceEstimates;
    use sstd_types::ClaimId;

    #[test]
    fn perfect_confidence_scores_zero() {
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::False]);
        let mut c = ConfidenceEstimates::new(2);
        c.insert(ClaimId::new(0), vec![1.0, 0.0]);
        assert_eq!(brier_score(&gt, &c), 0.0);
    }

    #[test]
    fn uninformed_constant_scores_quarter() {
        let mut gt = GroundTruth::new(4);
        gt.insert(
            ClaimId::new(0),
            vec![TruthLabel::True, TruthLabel::False, TruthLabel::True, TruthLabel::False],
        );
        let c = ConfidenceEstimates::new(4); // no entries → 0.5 default
        assert!((brier_score(&gt, &c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn confidently_wrong_scores_near_one() {
        let mut gt = GroundTruth::new(1);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True]);
        let mut c = ConfidenceEstimates::new(1);
        c.insert(ClaimId::new(0), vec![0.0]);
        assert_eq!(brier_score(&gt, &c), 1.0);
    }

    #[test]
    fn sstd_posteriors_beat_the_uninformed_baseline() {
        use sstd_core::{SstdConfig, SstdEngine};
        use sstd_data::{Scenario, TraceBuilder};
        // Density matters for calibration: with sparse evidence the
        // sticky chain propagates confident-but-wrong guesses across
        // evidence-free gaps (Brier ≈ 0.31 at 0.5% scale); once most
        // cells carry evidence the posteriors are well-calibrated.
        let trace = TraceBuilder::scenario(Scenario::ParisShooting).scale(0.02).seed(3).build();
        let (_, confidence) = SstdEngine::new(SstdConfig::default()).run_with_confidence(&trace);
        let score = brier_score(trace.ground_truth(), &confidence);
        assert!(score < 0.25, "calibrated posteriors beat 0.5-constant: {score}");
    }
}
