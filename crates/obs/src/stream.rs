//! Streaming telemetry: per-interval samples from the streaming engine.
//!
//! [`StreamTelemetry`] is an adapter over the unified
//! [`EventStore`]: pushed ticks land in the store's stream-event log
//! (chained interval → interval), and every aggregate is computed
//! through the [`Query`](crate::Query) layer.

use crate::event::Event;
use crate::json_f64;
use crate::store::EventStore;
use std::sync::Arc;

/// One closed streaming interval as the engine saw it (paper §V measures
/// exactly these: ingest rate, window occupancy, decision latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTick {
    /// The interval index (0-based).
    pub interval: u64,
    /// Reports ingested during the interval.
    pub reports: u64,
    /// Claims with at least one report in the ACS window.
    pub active_claims: usize,
    /// Mean ACS window occupancy across active claims (observations per
    /// claim window).
    pub window_occupancy: f64,
    /// Wall-clock seconds spent decoding the interval's decisions
    /// (0 when timing is disabled).
    pub decode_latency: f64,
    /// Claims whose decision flipped relative to the previous interval.
    pub decision_flips: usize,
    /// Reports that arrived timestamped before the open interval and were
    /// folded into it (far-past / stale arrivals).
    pub late_reports: u64,
    /// Reports rejected at ingest for failing integrity checks (e.g. a
    /// non-finite contribution score from a corrupted payload).
    pub rejected_reports: u64,
}

/// Per-interval streaming telemetry backed by the trace store; the
/// decode-latency quantile is the store query's P² estimate
/// (`sstd_stats`) over positive latencies.
///
/// # Examples
///
/// ```
/// use sstd_obs::{StreamTelemetry, StreamTick};
///
/// let mut tel = StreamTelemetry::new();
/// for i in 0..5 {
///     tel.push(StreamTick {
///         interval: i,
///         reports: 100 + i,
///         active_claims: 10,
///         window_occupancy: 3.0,
///         decode_latency: 0.01 * (i + 1) as f64,
///         decision_flips: usize::from(i == 2),
///         late_reports: 0,
///         rejected_reports: 0,
///     });
/// }
/// assert_eq!(tel.total_reports(), 510);
/// assert_eq!(tel.total_flips(), 1);
/// assert!(tel.latency_p95().is_some());
/// ```
#[derive(Debug)]
pub struct StreamTelemetry {
    store: Arc<EventStore>,
}

impl Default for StreamTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamTelemetry {
    /// Creates a collector over a fresh private unbounded [`EventStore`].
    #[must_use]
    pub fn new() -> Self {
        Self { store: Arc::new(EventStore::new()) }
    }

    /// Creates a collector writing into an existing (possibly shared)
    /// store, so stream ticks interleave with the other telemetry
    /// domains in one causally-linked log.
    #[must_use]
    pub fn with_store(store: Arc<EventStore>) -> Self {
        Self { store }
    }

    /// The backing trace store.
    #[must_use]
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// Appends one interval sample.
    pub fn push(&mut self, tick: StreamTick) {
        self.store.record_stream(tick);
    }

    /// A point-in-time copy of the recorded ticks, in interval order.
    #[must_use]
    pub fn ticks(&self) -> Vec<StreamTick> {
        self.store
            .query()
            .stream()
            .events()
            .iter()
            .filter_map(|e| e.stream_tick().copied())
            .collect()
    }

    /// Whether no interval was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.query().stream().count() == 0
    }

    /// Total reports ingested across all intervals.
    #[must_use]
    pub fn total_reports(&self) -> u64 {
        self.ticks().iter().map(|t| t.reports).sum()
    }

    /// Total decision flips across all intervals.
    #[must_use]
    pub fn total_flips(&self) -> usize {
        self.ticks().iter().map(|t| t.decision_flips).sum()
    }

    /// Mean reports per interval (0 when empty).
    #[must_use]
    pub fn reports_per_interval(&self) -> f64 {
        let intervals = self.store.query().stream().count();
        if intervals == 0 {
            return 0.0;
        }
        self.total_reports() as f64 / intervals as f64
    }

    /// The online p95 of per-interval decode latency (`None` until a
    /// positive latency was recorded — zero means timing was disabled).
    #[must_use]
    pub fn latency_p95(&self) -> Option<f64> {
        self.store.query().stream().p2_percentile(0.95, |e: &Event| {
            e.stream_tick().map(|t| t.decode_latency).filter(|&l| l > 0.0)
        })
    }

    /// Total far-past reports folded into an already-open interval.
    #[must_use]
    pub fn total_late_reports(&self) -> u64 {
        self.ticks().iter().map(|t| t.late_reports).sum()
    }

    /// Total reports rejected at ingest for failing integrity checks.
    #[must_use]
    pub fn total_rejected_reports(&self) -> u64 {
        self.ticks().iter().map(|t| t.rejected_reports).sum()
    }

    /// Renders the telemetry as a JSON array of interval objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .ticks()
            .iter()
            .map(|t| {
                format!(
                    "{{\"interval\":{},\"reports\":{},\"active_claims\":{},\"window_occupancy\":{},\"decode_latency\":{},\"decision_flips\":{},\"late_reports\":{},\"rejected_reports\":{}}}",
                    t.interval,
                    t.reports,
                    t.active_claims,
                    json_f64(t.window_occupancy),
                    json_f64(t.decode_latency),
                    t.decision_flips,
                    t.late_reports,
                    t.rejected_reports,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }

    /// Renders the telemetry as CSV rows
    /// `interval,reports,active_claims,window_occupancy,decode_latency,decision_flips,late_reports,rejected_reports`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "interval,reports,active_claims,window_occupancy,decode_latency,decision_flips,late_reports,rejected_reports\n",
        );
        for t in &self.ticks() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                t.interval,
                t.reports,
                t.active_claims,
                t.window_occupancy,
                t.decode_latency,
                t.decision_flips,
                t.late_reports,
                t.rejected_reports,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(i: u64, reports: u64, latency: f64, flips: usize) -> StreamTick {
        StreamTick {
            interval: i,
            reports,
            active_claims: 4,
            window_occupancy: 2.5,
            decode_latency: latency,
            decision_flips: flips,
            late_reports: 0,
            rejected_reports: 0,
        }
    }

    #[test]
    fn aggregates_reports_and_flips() {
        let mut tel = StreamTelemetry::new();
        tel.push(tick(0, 10, 0.0, 0));
        tel.push(tick(1, 30, 0.0, 2));
        assert_eq!(tel.total_reports(), 40);
        assert_eq!(tel.total_flips(), 2);
        assert!((tel.reports_per_interval() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn latency_quantile_ignores_disabled_timing() {
        let mut tel = StreamTelemetry::new();
        tel.push(tick(0, 1, 0.0, 0));
        assert_eq!(tel.latency_p95(), None, "zero latency means timing was off");
        for i in 1..=20 {
            tel.push(tick(i, 1, 0.001 * i as f64, 0));
        }
        let p95 = tel.latency_p95().expect("warm");
        assert!(p95 > 0.01, "p95 in the upper tail: {p95}");
    }

    #[test]
    fn ticks_chain_in_the_backing_store() {
        let mut tel = StreamTelemetry::new();
        tel.push(tick(0, 1, 0.0, 0));
        tel.push(tick(1, 1, 0.0, 0));
        let events = tel.store().query().stream().events();
        assert_eq!(events[0].cause, None);
        assert_eq!(events[1].cause, Some(events[0].seq), "intervals chain");
    }

    #[test]
    fn exports_list_every_interval() {
        let mut tel = StreamTelemetry::new();
        tel.push(tick(0, 5, 0.25, 1));
        let json = tel.to_json();
        assert!(json.contains("\"decode_latency\":0.25"), "{json}");
        assert!(json.contains("\"decision_flips\":1"), "{json}");
        assert!(json.contains("\"late_reports\":0"), "{json}");
        let csv = tel.to_csv();
        assert!(csv.contains("0,5,4,2.5,0.25,1,0,0\n"), "{csv}");
    }

    #[test]
    fn late_and_rejected_reports_aggregate() {
        let mut tel = StreamTelemetry::new();
        tel.push(StreamTick { late_reports: 2, rejected_reports: 1, ..tick(0, 5, 0.0, 0) });
        tel.push(StreamTick { late_reports: 3, rejected_reports: 0, ..tick(1, 5, 0.0, 0) });
        assert_eq!(tel.total_late_reports(), 5);
        assert_eq!(tel.total_rejected_reports(), 1);
        let json = tel.to_json();
        assert!(json.contains("\"late_reports\":2"), "{json}");
        assert!(json.contains("\"rejected_reports\":1"), "{json}");
    }
}
