//! Evaluation-native queries over the trace store: filter, group-by,
//! count/sum, percentiles, and causal chain reconstruction.
//!
//! A [`Query`] is a borrowed, lazily-evaluated view: builder methods
//! narrow the event set (class, task/job/worker, phase label, time
//! range, sequence range) and terminals reduce it. Percentiles reuse the
//! workspace's one quantile implementation — [`sstd_stats::exact_quantile`]
//! for exact results over collected samples, [`P2Quantile`] for O(1)-memory
//! streaming estimates — so an eval sweep and a unit oracle can never
//! disagree on the definition.
//!
//! Chain reconstruction ([`EventStore::attempt_chains`]) folds a task's
//! causally-linked event stream into its [`AttemptChain`]: queued once,
//! then one [`Attempt`] per dispatch with its outcome and latency. This
//! is the store-backed replacement for the legacy
//! `Timeline::per_task_sequences` / `structurally_equal` pair, which now
//! delegate here.

use crate::event::{Event, EventClass, EventKind};
use crate::store::EventStore;
use sstd_runtime::{JobId, TaskId, TimelineEvent, WorkerId};
use sstd_stats::{exact_quantile, P2Quantile};
use std::collections::BTreeMap;

/// A filtered, reducible view over an [`EventStore`].
///
/// # Examples
///
/// ```
/// use sstd_obs::{EventStore, StreamTick};
///
/// let store = EventStore::new();
/// for i in 0..20 {
///     store.record_stream(StreamTick {
///         interval: i,
///         reports: 10 * (i + 1),
///         active_claims: 3,
///         window_occupancy: 2.0,
///         decode_latency: 0.001 * (i + 1) as f64,
///         decision_flips: 0,
///         late_reports: 0,
///         rejected_reports: 0,
///     });
/// }
/// let q = store.query().stream();
/// assert_eq!(q.count(), 20);
/// let p95 = q.percentile(0.95, |e| e.stream_tick().map(|t| t.decode_latency)).unwrap();
/// assert!(p95 > 0.018, "p95 in the upper tail: {p95}");
/// assert_eq!(q.clone().between(0.0, 4.0).count(), 5, "first five intervals");
/// ```
#[derive(Debug, Clone)]
pub struct Query<'a> {
    store: &'a EventStore,
    class: Option<EventClass>,
    task: Option<TaskId>,
    job: Option<JobId>,
    worker: Option<WorkerId>,
    label: Option<&'static str>,
    failures_only: bool,
    since: Option<u64>,
    time: Option<(f64, f64)>,
}

impl<'a> Query<'a> {
    pub(crate) fn new(store: &'a EventStore) -> Self {
        Self {
            store,
            class: None,
            task: None,
            job: None,
            worker: None,
            label: None,
            failures_only: false,
            since: None,
            time: None,
        }
    }

    // --- filters -----------------------------------------------------

    /// Keeps only events of `class`.
    #[must_use]
    pub fn class(mut self, class: EventClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Keeps only task lifecycle events.
    #[must_use]
    pub fn tasks(self) -> Self {
        self.class(EventClass::Task)
    }

    /// Keeps only control-loop ticks.
    #[must_use]
    pub fn control(self) -> Self {
        self.class(EventClass::Control)
    }

    /// Keeps only streaming interval ticks.
    #[must_use]
    pub fn stream(self) -> Self {
        self.class(EventClass::Stream)
    }

    /// Keeps only recovery events.
    #[must_use]
    pub fn recovery(self) -> Self {
        self.class(EventClass::Recovery)
    }

    /// Keeps only events of one task (implies [`tasks`](Self::tasks)).
    #[must_use]
    pub fn task(mut self, task: TaskId) -> Self {
        self.task = Some(task);
        self.tasks()
    }

    /// Keeps only events of one job (task events and control ticks carry
    /// a job).
    #[must_use]
    pub fn job(mut self, job: JobId) -> Self {
        self.job = Some(job);
        self
    }

    /// Keeps only task events involving one worker.
    #[must_use]
    pub fn worker(mut self, worker: WorkerId) -> Self {
        self.worker = Some(worker);
        self.tasks()
    }

    /// Keeps only events whose [`EventKind::label`] equals `label` —
    /// task phase labels (`"queued"`, `"completed"`, `"failed:crash"`, …)
    /// or recovery steps (`"checkpoint"`, `"crash"`, `"restored"`).
    #[must_use]
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = Some(label);
        self
    }

    /// Keeps only failed-attempt task events, any loss cause (implies
    /// [`tasks`](Self::tasks)).
    #[must_use]
    pub fn failures(mut self) -> Self {
        self.failures_only = true;
        self.tasks()
    }

    /// Keeps only events with sequence id `>= seq` — scoping a query to
    /// everything recorded after an [`EventStore::next_seq`] watermark.
    #[must_use]
    pub fn since_seq(mut self, seq: u64) -> Self {
        self.since = Some(seq);
        self
    }

    /// Keeps only events whose native timestamp lies in `[t0, t1]`.
    /// Events without a clock (recovery) never match.
    #[must_use]
    pub fn between(mut self, t0: f64, t1: f64) -> Self {
        self.time = Some((t0, t1));
        self
    }

    fn matches(&self, e: &Event) -> bool {
        if let Some(c) = self.class {
            if e.kind.class() != c {
                return false;
            }
        }
        if let Some(since) = self.since {
            if e.seq < since {
                return false;
            }
        }
        if let Some((t0, t1)) = self.time {
            match e.kind.at() {
                Some(at) if at >= t0 && at <= t1 => {}
                _ => return false,
            }
        }
        if let Some(label) = self.label {
            if e.kind.label() != label {
                return false;
            }
        }
        if self.failures_only {
            match e.kind {
                EventKind::Task(t) if t.phase.is_failure() => {}
                _ => return false,
            }
        }
        if let Some(task) = self.task {
            match e.kind {
                EventKind::Task(t) if t.task == task => {}
                _ => return false,
            }
        }
        if let Some(job) = self.job {
            match e.kind {
                EventKind::Task(t) if t.job == job => {}
                EventKind::Control(t) if t.job == job => {}
                _ => return false,
            }
        }
        if let Some(worker) = self.worker {
            match e.kind {
                EventKind::Task(t) if t.worker == Some(worker) => {}
                _ => return false,
            }
        }
        true
    }

    fn for_each(&self, mut f: impl FnMut(&Event)) {
        self.store.for_each_pruned(self.class, self.time, self.since, |e| {
            if self.matches(e) {
                f(e);
            }
        });
    }

    // --- terminals ---------------------------------------------------

    /// Number of matching events.
    #[must_use]
    pub fn count(&self) -> u64 {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// The matching events, copied in append order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.for_each(|e| out.push(*e));
        out
    }

    /// The values `extract` yields on matching events, in append order.
    /// `None` extractions are skipped.
    #[must_use]
    pub fn collect(&self, extract: impl Fn(&Event) -> Option<f64>) -> Vec<f64> {
        let mut out = Vec::new();
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                out.push(v);
            }
        });
        out
    }

    /// Sum of extracted values.
    #[must_use]
    pub fn sum(&self, extract: impl Fn(&Event) -> Option<f64>) -> f64 {
        let mut acc = 0.0;
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                acc += v;
            }
        });
        acc
    }

    /// Mean of extracted values; `None` when nothing was extracted.
    #[must_use]
    pub fn mean(&self, extract: impl Fn(&Event) -> Option<f64>) -> Option<f64> {
        let (mut acc, mut n) = (0.0, 0u64);
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                acc += v;
                n += 1;
            }
        });
        (n > 0).then(|| acc / n as f64)
    }

    /// Maximum of extracted values (NaN-tolerant via [`f64::max`]);
    /// `None` when nothing was extracted.
    #[must_use]
    pub fn max(&self, extract: impl Fn(&Event) -> Option<f64>) -> Option<f64> {
        let mut best: Option<f64> = None;
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                best = Some(best.map_or(v, |b| b.max(v)));
            }
        });
        best
    }

    /// Minimum of extracted values (NaN-tolerant via [`f64::min`]);
    /// `None` when nothing was extracted.
    #[must_use]
    pub fn min(&self, extract: impl Fn(&Event) -> Option<f64>) -> Option<f64> {
        let mut best: Option<f64> = None;
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                best = Some(best.map_or(v, |b| b.min(v)));
            }
        });
        best
    }

    /// The exact type-7 `p`-quantile of extracted values
    /// ([`sstd_stats::exact_quantile`]); `None` when nothing was
    /// extracted.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64, extract: impl Fn(&Event) -> Option<f64>) -> Option<f64> {
        let samples = self.collect(extract);
        (!samples.is_empty()).then(|| exact_quantile(&samples, p))
    }

    /// The streaming P² estimate of the `p`-quantile of extracted values
    /// — O(1) memory, at the cost of approximation; `None` when nothing
    /// was extracted.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is strictly inside `(0, 1)`.
    #[must_use]
    pub fn p2_percentile(&self, p: f64, extract: impl Fn(&Event) -> Option<f64>) -> Option<f64> {
        let mut est = P2Quantile::new(p).expect("p strictly inside (0, 1)");
        self.for_each(|e| {
            if let Some(v) = extract(e) {
                est.push(v);
            }
        });
        est.estimate()
    }

    /// Matching-event counts grouped by task (task events only).
    #[must_use]
    pub fn group_count_by_task(&self) -> BTreeMap<TaskId, u64> {
        let mut out = BTreeMap::new();
        self.for_each(|e| {
            if let EventKind::Task(t) = e.kind {
                *out.entry(t.task).or_insert(0) += 1;
            }
        });
        out
    }

    /// Matching-event counts grouped by job (task events and control
    /// ticks).
    #[must_use]
    pub fn group_count_by_job(&self) -> BTreeMap<JobId, u64> {
        let mut out = BTreeMap::new();
        self.for_each(|e| match e.kind {
            EventKind::Task(t) => *out.entry(t.job).or_insert(0) += 1,
            EventKind::Control(t) => *out.entry(t.job).or_insert(0) += 1,
            _ => {}
        });
        out
    }

    /// Extracted-value sums grouped by task (task events only).
    #[must_use]
    pub fn group_sum_by_task(
        &self,
        extract: impl Fn(&Event) -> Option<f64>,
    ) -> BTreeMap<TaskId, f64> {
        let mut out = BTreeMap::new();
        self.for_each(|e| {
            if let EventKind::Task(t) = e.kind {
                if let Some(v) = extract(e) {
                    *out.entry(t.task).or_insert(0.0) += v;
                }
            }
        });
        out
    }
}

/// Extractor shorthand for [`Query::collect`]-family terminals.
impl Event {
    /// The task payload, when this is a task event.
    #[must_use]
    pub fn timeline_event(&self) -> Option<&TimelineEvent> {
        match &self.kind {
            EventKind::Task(t) => Some(t),
            _ => None,
        }
    }

    /// The control payload, when this is a control tick.
    #[must_use]
    pub fn control_tick(&self) -> Option<&crate::ControlTick> {
        match &self.kind {
            EventKind::Control(t) => Some(t),
            _ => None,
        }
    }

    /// The stream payload, when this is a stream tick.
    #[must_use]
    pub fn stream_tick(&self) -> Option<&crate::StreamTick> {
        match &self.kind {
            EventKind::Stream(t) => Some(t),
            _ => None,
        }
    }

    /// The recovery payload, when this is a recovery event.
    #[must_use]
    pub fn recovery_event(&self) -> Option<&crate::RecoveryEvent> {
        match &self.kind {
            EventKind::Recovery(r) => Some(r),
            _ => None,
        }
    }
}

/// One dispatched attempt inside an [`AttemptChain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempt {
    /// The attempt number the backend assigned (1-based for dispatches).
    pub attempt: u32,
    /// When the attempt started executing.
    pub dispatched_at: f64,
    /// The worker it ran on, when known.
    pub worker: Option<WorkerId>,
    /// When the attempt ended (completion or loss); `None` while open.
    pub ended_at: Option<f64>,
    /// Terminal phase label (`"completed"`, `"failed:transient"`, …) or
    /// `"running"` while open.
    pub outcome: &'static str,
}

impl Attempt {
    /// Dispatch-to-end latency; `None` while the attempt is open.
    #[must_use]
    pub fn latency(&self) -> Option<f64> {
        self.ended_at.map(|end| end - self.dispatched_at)
    }
}

/// The causal task → attempt → retry chain of one task, rebuilt from the
/// store: the store-backed replacement for per-task event sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptChain {
    /// The task.
    pub task: TaskId,
    /// Its owning job.
    pub job: JobId,
    /// When the task entered the queue; `None` when the queue event was
    /// evicted.
    pub queued_at: Option<f64>,
    /// Every dispatched attempt, in order.
    pub attempts: Vec<Attempt>,
    /// Terminal chain label: `"completed"`, `"exhausted"`, or
    /// `"running"` while unresolved.
    pub outcome: &'static str,
}

impl AttemptChain {
    /// Retries consumed: dispatches beyond the first.
    #[must_use]
    pub fn retries(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Whether the task completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.outcome == "completed"
    }

    /// Queue-to-resolution turnaround; `None` while unresolved or when
    /// the queue event was evicted.
    #[must_use]
    pub fn turnaround(&self) -> Option<f64> {
        let queued = self.queued_at?;
        if self.outcome == "running" {
            return None;
        }
        self.attempts.last().and_then(|a| a.ended_at).map(|end| end - queued)
    }

    /// The backend-independent `(attempt, phase)` projection of the
    /// chain is kept by [`EventStore::task_sequences`]; this is its
    /// per-chain shape: number of dispatches and the terminal label.
    #[must_use]
    pub fn shape(&self) -> (usize, &'static str) {
        (self.attempts.len(), self.outcome)
    }
}

fn fold_into_chains(chains: &mut BTreeMap<TaskId, AttemptChain>, t: &TimelineEvent) {
    let chain = chains.entry(t.task).or_insert_with(|| AttemptChain {
        task: t.task,
        job: t.job,
        queued_at: None,
        attempts: Vec::new(),
        outcome: "running",
    });
    match t.phase {
        sstd_runtime::TaskPhase::Queued => {
            if chain.queued_at.is_none() {
                chain.queued_at = Some(t.at);
            }
        }
        sstd_runtime::TaskPhase::Dispatched => chain.attempts.push(Attempt {
            attempt: t.attempt,
            dispatched_at: t.at,
            worker: t.worker,
            ended_at: None,
            outcome: "running",
        }),
        phase => {
            let label = phase.label();
            if phase.is_failure() || phase == sstd_runtime::TaskPhase::Completed {
                // Close the matching open attempt (the last one with this
                // attempt number); a lone failure whose dispatch was
                // evicted records a bare closed attempt.
                match chain
                    .attempts
                    .iter_mut()
                    .rev()
                    .find(|a| a.attempt == t.attempt && a.ended_at.is_none())
                {
                    Some(open) => {
                        open.ended_at = Some(t.at);
                        open.outcome = label;
                    }
                    None => chain.attempts.push(Attempt {
                        attempt: t.attempt,
                        dispatched_at: t.at,
                        worker: t.worker,
                        ended_at: Some(t.at),
                        outcome: label,
                    }),
                }
            }
            if phase.is_terminal() {
                chain.outcome = label;
            }
        }
    }
}

impl EventStore {
    /// Rebuilds every task's [`AttemptChain`] in one linear pass over
    /// the retained task events.
    #[must_use]
    pub fn attempt_chains(&self) -> Vec<AttemptChain> {
        let mut chains = BTreeMap::new();
        self.for_each_pruned(Some(EventClass::Task), None, None, |e| {
            if let EventKind::Task(t) = &e.kind {
                fold_into_chains(&mut chains, t);
            }
        });
        chains.into_values().collect()
    }

    /// The [`AttemptChain`] of one task; `None` when the store holds no
    /// event of it.
    #[must_use]
    pub fn attempt_chain(&self, task: TaskId) -> Option<AttemptChain> {
        let mut chains = BTreeMap::new();
        self.for_each_pruned(Some(EventClass::Task), None, None, |e| {
            if let EventKind::Task(t) = &e.kind {
                if t.task == task {
                    fold_into_chains(&mut chains, t);
                }
            }
        });
        chains.remove(&task)
    }

    /// Groups retained task events by task, reducing each to its
    /// `(attempt, phase)` sequence — the backend-independent shape of a
    /// run that a DES and a threaded execution of the same seeded fault
    /// plan agree on. One linear pass with dense task-index buckets.
    #[must_use]
    pub fn task_sequences(&self) -> BTreeMap<TaskId, Vec<(u32, &'static str)>> {
        let mut max_ix = None;
        self.for_each_pruned(Some(EventClass::Task), None, None, |e| {
            if let EventKind::Task(t) = &e.kind {
                max_ix = Some(max_ix.map_or(t.task.index(), |m: usize| m.max(t.task.index())));
            }
        });
        let Some(max_ix) = max_ix else {
            return BTreeMap::new();
        };
        let mut buckets: Vec<Vec<(u32, &'static str)>> = vec![Vec::new(); max_ix + 1];
        self.for_each_pruned(Some(EventClass::Task), None, None, |e| {
            if let EventKind::Task(t) = &e.kind {
                buckets[t.task.index()].push((t.attempt, t.phase.label()));
            }
        });
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (TaskId::new(u32::try_from(i).expect("dense task ids")), b))
            .collect()
    }

    /// Whether two stores hold structurally identical task traces: equal
    /// per-task `(attempt, phase)` sequences (worker ids, timestamps and
    /// cross-task interleaving ignored).
    #[must_use]
    pub fn structurally_equal(&self, other: &EventStore) -> bool {
        self.task_sequences() == other.task_sequences()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::{LossCause, TaskPhase};

    fn ev(
        task: u32,
        attempt: u32,
        at: f64,
        phase: TaskPhase,
        worker: Option<u32>,
    ) -> TimelineEvent {
        TimelineEvent {
            task: TaskId::new(task),
            job: JobId::new(task % 2),
            attempt,
            worker: worker.map(WorkerId::new),
            at,
            phase,
        }
    }

    fn retry_store() -> EventStore {
        let store = EventStore::new();
        store.record_task(&ev(0, 0, 0.0, TaskPhase::Queued, None));
        store.record_task(&ev(1, 0, 0.0, TaskPhase::Queued, None));
        store.record_task(&ev(0, 1, 1.0, TaskPhase::Dispatched, Some(0)));
        store.record_task(&ev(1, 1, 1.0, TaskPhase::Dispatched, Some(1)));
        store.record_task(&ev(0, 1, 2.0, TaskPhase::Failed(LossCause::Transient), Some(0)));
        store.record_task(&ev(0, 2, 3.0, TaskPhase::Dispatched, Some(1)));
        store.record_task(&ev(1, 1, 4.0, TaskPhase::Completed, Some(1)));
        store.record_task(&ev(0, 2, 6.0, TaskPhase::Completed, Some(1)));
        store
    }

    #[test]
    fn filters_compose() {
        let store = retry_store();
        assert_eq!(store.query().tasks().count(), 8);
        assert_eq!(store.query().task(TaskId::new(0)).count(), 5);
        assert_eq!(store.query().failures().count(), 1);
        assert_eq!(store.query().label("completed").count(), 2);
        assert_eq!(store.query().tasks().between(0.0, 1.0).count(), 4);
        assert_eq!(store.query().worker(WorkerId::new(1)).label("completed").count(), 2);
        assert_eq!(store.query().job(JobId::new(1)).count(), 3, "task 1's events");
    }

    #[test]
    fn terminals_reduce() {
        let store = retry_store();
        let dispatch_times =
            store.query().label("dispatched").collect(|e| e.timeline_event().map(|t| t.at));
        assert_eq!(dispatch_times, vec![1.0, 1.0, 3.0]);
        assert_eq!(
            store.query().label("dispatched").sum(|e| e.timeline_event().map(|t| t.at)),
            5.0
        );
        let mean =
            store.query().label("dispatched").mean(|e| e.timeline_event().map(|t| t.at)).unwrap();
        assert!((mean - 5.0 / 3.0).abs() < 1e-12);
        let p50 = store
            .query()
            .label("dispatched")
            .percentile(0.5, |e| e.timeline_event().map(|t| t.at))
            .unwrap();
        assert_eq!(p50, 1.0);
        assert_eq!(store.query().percentile(0.5, |_| None), None);
    }

    #[test]
    fn max_and_min_terminals() {
        let store = retry_store();
        let at = |e: &Event| e.timeline_event().map(|t| t.at);
        assert_eq!(store.query().label("dispatched").max(at), Some(3.0));
        assert_eq!(store.query().label("dispatched").min(at), Some(1.0));
        assert_eq!(store.query().max(|_| None), None);
        assert_eq!(store.query().min(|_| None), None);
    }

    #[test]
    fn group_bys_bucket_correctly() {
        let store = retry_store();
        let by_task = store.query().tasks().group_count_by_task();
        assert_eq!(by_task[&TaskId::new(0)], 5);
        assert_eq!(by_task[&TaskId::new(1)], 3);
        let by_job = store.query().tasks().group_count_by_job();
        assert_eq!(by_job[&JobId::new(0)], 5);
        assert_eq!(by_job[&JobId::new(1)], 3);
        let time_by_task = store
            .query()
            .label("dispatched")
            .group_sum_by_task(|e| e.timeline_event().map(|t| t.at));
        assert_eq!(time_by_task[&TaskId::new(0)], 4.0);
        assert_eq!(time_by_task[&TaskId::new(1)], 1.0);
    }

    #[test]
    fn attempt_chains_rebuild_retry_structure() {
        let store = retry_store();
        let chain = store.attempt_chain(TaskId::new(0)).unwrap();
        assert_eq!(chain.retries(), 1);
        assert!(chain.completed());
        assert_eq!(chain.queued_at, Some(0.0));
        assert_eq!(chain.attempts[0].outcome, "failed:transient");
        assert_eq!(chain.attempts[0].latency(), Some(1.0));
        assert_eq!(chain.attempts[1].outcome, "completed");
        assert_eq!(chain.attempts[1].latency(), Some(3.0));
        assert_eq!(chain.turnaround(), Some(6.0));
        assert_eq!(chain.shape(), (2, "completed"));

        let all = store.attempt_chains();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].retries(), 0);
        assert!(store.attempt_chain(TaskId::new(7)).is_none());
    }

    #[test]
    fn task_sequences_match_the_legacy_projection() {
        let store = retry_store();
        let seqs = store.task_sequences();
        assert_eq!(
            seqs[&TaskId::new(0)],
            vec![
                (0, "queued"),
                (1, "dispatched"),
                (1, "failed:transient"),
                (2, "dispatched"),
                (2, "completed"),
            ]
        );
        assert_eq!(seqs[&TaskId::new(1)].len(), 3);
        assert!(store.structurally_equal(&retry_store()));
        let other = EventStore::new();
        other.record_task(&ev(0, 0, 9.0, TaskPhase::Queued, None));
        assert!(!store.structurally_equal(&other));
        assert!(EventStore::new().task_sequences().is_empty());
    }

    #[test]
    fn since_seq_scopes_to_a_run_suffix() {
        let store = EventStore::new();
        store.record_task(&ev(0, 0, 0.0, TaskPhase::Queued, None));
        let mark = store.next_seq();
        store.record_task(&ev(1, 0, 1.0, TaskPhase::Queued, None));
        assert_eq!(store.query().since_seq(mark).count(), 1);
        assert_eq!(store.query().since_seq(0).count(), 2);
    }

    #[test]
    fn p2_percentile_tracks_the_exact_one() {
        let store = EventStore::new();
        for i in 0..500u32 {
            store.record_task(&ev(i, 1, f64::from(i), TaskPhase::Dispatched, Some(0)));
        }
        let extract = |e: &Event| e.timeline_event().map(|t| t.at);
        let exact = store.query().tasks().percentile(0.9, extract).unwrap();
        let p2 = store.query().tasks().p2_percentile(0.9, extract).unwrap();
        assert!((exact - p2).abs() < 10.0, "exact {exact} vs p2 {p2}");
    }
}
