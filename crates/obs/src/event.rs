//! The unified trace event: one compact enum covering every telemetry
//! domain the workspace produces.
//!
//! Every record in the [`EventStore`](crate::EventStore) is an [`Event`]:
//! a monotonic sequence id, an optional causal predecessor, and an
//! [`EventKind`] payload. The payloads are exactly the per-domain sample
//! types the adapters already export — [`TimelineEvent`] from the
//! execution backends, [`ControlTick`](crate::ControlTick) from the DTM,
//! [`StreamTick`](crate::StreamTick) from the streaming engine and
//! [`RecoveryEvent`](crate::RecoveryEvent) from the supervisor — so
//! producers keep their vocabulary and only the log is unified.

use crate::{ControlTick, RecoveryEvent, StreamTick};
use sstd_runtime::TimelineEvent;

/// The telemetry domain an [`Event`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Task lifecycle steps from an execution backend.
    Task,
    /// PID control-loop samples from the Dynamic Task Manager.
    Control,
    /// Closed streaming intervals from the streaming engine.
    Stream,
    /// Checkpoint/crash/restore steps from the supervisor.
    Recovery,
}

impl EventClass {
    /// Every class, in segment-summary index order.
    pub const ALL: [Self; 4] = [Self::Task, Self::Control, Self::Stream, Self::Recovery];

    /// Dense index used by segment summaries and evicted totals.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Task => 0,
            Self::Control => 1,
            Self::Stream => 2,
            Self::Recovery => 3,
        }
    }

    /// A short stable label for exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Task => "task",
            Self::Control => "control",
            Self::Stream => "stream",
            Self::Recovery => "recovery",
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A task attempt crossing a lifecycle phase.
    Task(TimelineEvent),
    /// One PID control-loop sample.
    Control(ControlTick),
    /// One closed streaming interval.
    Stream(StreamTick),
    /// One checkpoint/crash/restore step.
    Recovery(RecoveryEvent),
}

impl EventKind {
    /// The domain of the payload.
    #[must_use]
    pub const fn class(&self) -> EventClass {
        match self {
            Self::Task(_) => EventClass::Task,
            Self::Control(_) => EventClass::Control,
            Self::Stream(_) => EventClass::Stream,
            Self::Recovery(_) => EventClass::Recovery,
        }
    }

    /// The payload's native timestamp, when it has one: backend seconds
    /// for task events, backend seconds for control ticks, the interval
    /// index for stream ticks. Recovery events carry no clock and return
    /// `None` (they are ordered by sequence id alone).
    #[must_use]
    pub fn at(&self) -> Option<f64> {
        match self {
            Self::Task(e) => Some(e.at),
            Self::Control(t) => Some(t.t),
            Self::Stream(t) => Some(t.interval as f64),
            Self::Recovery(_) => None,
        }
    }

    /// A short stable label: the task phase label for task events
    /// (`"queued"`, `"failed:transient"`, …), the recovery step for
    /// recovery events (`"checkpoint"`, `"crash"`, `"restored"`), and the
    /// class label otherwise.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            Self::Task(e) => e.phase.label(),
            Self::Control(_) => "control",
            Self::Stream(_) => "stream",
            Self::Recovery(RecoveryEvent::CheckpointWritten { .. }) => "checkpoint",
            Self::Recovery(RecoveryEvent::CrashObserved { .. }) => "crash",
            Self::Recovery(RecoveryEvent::Restored { .. }) => "restored",
        }
    }
}

/// One record in the [`EventStore`](crate::EventStore) log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotonic sequence id, unique within a store and dense in append
    /// order (evictions leave gaps at the *front* of the retained log,
    /// never in the middle).
    pub seq: u64,
    /// The sequence id of the event that caused this one, when the store
    /// could link it: the previous lifecycle step of the same task, the
    /// previous control tick of the same job, the previous stream
    /// interval, the covering checkpoint for a crash, and the observed
    /// crash for a restore.
    pub cause: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::{JobId, TaskId, TaskPhase};

    #[test]
    fn class_indices_are_dense_and_stable() {
        for (i, c) in EventClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(EventClass::Task.label(), "task");
        assert_eq!(EventClass::Recovery.label(), "recovery");
    }

    #[test]
    fn kind_exposes_class_time_and_label() {
        let e = EventKind::Task(TimelineEvent {
            task: TaskId::new(1),
            job: JobId::new(0),
            attempt: 0,
            worker: None,
            at: 2.5,
            phase: TaskPhase::Queued,
        });
        assert_eq!(e.class(), EventClass::Task);
        assert_eq!(e.at(), Some(2.5));
        assert_eq!(e.label(), "queued");

        let r = EventKind::Recovery(RecoveryEvent::CrashObserved { reports_ingested: 3 });
        assert_eq!(r.class(), EventClass::Recovery);
        assert_eq!(r.at(), None);
        assert_eq!(r.label(), "crash");
    }
}
