//! Control-loop telemetry: one sample per PID tick.

use crate::json_f64;
use sstd_runtime::JobId;

/// One sample of the Dynamic Task Manager's control loop (paper §IV-C):
/// what the PID saw and what it did, for one job at one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlTick {
    /// Backend time of the sample (engine seconds).
    pub t: f64,
    /// The job being controlled.
    pub job: JobId,
    /// The setpoint the controller steers toward (the job deadline).
    pub setpoint: f64,
    /// The measured process variable (the WCET-predicted finish time).
    pub measured: f64,
    /// `measured - setpoint`, the PID input: positive when the job is
    /// predicted to miss its deadline.
    pub error: f64,
    /// The raw PID output before actuation clamping.
    pub signal: f64,
    /// The job priority after applying the Local Control Knob.
    pub priority: f64,
    /// The worker-pool size after applying the Global Control Knob.
    pub workers: usize,
    /// Pending tasks of the job after actuation.
    pub pending: usize,
}

/// The control-loop history of one run: every [`ControlTick`] in order.
///
/// Deterministic on the DES backend, so two runs of the same seeded
/// workload produce equal traces (`PartialEq` compares every field of
/// every tick).
///
/// # Examples
///
/// ```
/// use sstd_obs::{ControlTick, ControlTrace};
/// use sstd_runtime::JobId;
///
/// let mut trace = ControlTrace::default();
/// trace.push(ControlTick {
///     t: 1.0,
///     job: JobId::new(0),
///     setpoint: 10.0,
///     measured: 14.0,
///     error: 4.0,
///     signal: 4.8,
///     priority: 1.0,
///     workers: 8,
///     pending: 14,
/// });
/// assert_eq!(trace.len(), 1);
/// assert!(trace.to_csv().contains("1,0,10,14,4,4.8,1,8,14"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlTrace {
    ticks: Vec<ControlTick>,
}

impl ControlTrace {
    /// Appends one tick.
    pub fn push(&mut self, tick: ControlTick) {
        self.ticks.push(tick);
    }

    /// Materializes the control trace from a trace store: every control
    /// tick with sequence id `>= since`, in append order. Capture `since`
    /// with [`EventStore::next_seq`](crate::EventStore::next_seq) before a
    /// run to scope the trace to it on a shared store.
    #[must_use]
    pub fn from_store_since(store: &crate::EventStore, since: u64) -> Self {
        let ticks = store
            .query()
            .control()
            .since_seq(since)
            .events()
            .iter()
            .filter_map(|e| e.control_tick().copied())
            .collect();
        Self { ticks }
    }

    /// The recorded ticks, in order.
    #[must_use]
    pub fn ticks(&self) -> &[ControlTick] {
        &self.ticks
    }

    /// Number of ticks recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no tick was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Mean absolute control error across all ticks (0 when empty).
    #[must_use]
    pub fn mean_abs_error(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        self.ticks.iter().map(|t| t.error.abs()).sum::<f64>() / self.ticks.len() as f64
    }

    /// Renders the trace as a JSON array of tick objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .ticks
            .iter()
            .map(|k| {
                format!(
                    "{{\"t\":{},\"job\":{},\"setpoint\":{},\"measured\":{},\"error\":{},\"signal\":{},\"priority\":{},\"workers\":{},\"pending\":{}}}",
                    json_f64(k.t),
                    k.job.index(),
                    json_f64(k.setpoint),
                    json_f64(k.measured),
                    json_f64(k.error),
                    json_f64(k.signal),
                    json_f64(k.priority),
                    k.workers,
                    k.pending,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }

    /// Renders the trace as CSV rows
    /// `t,job,setpoint,measured,error,signal,priority,workers,pending`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("t,job,setpoint,measured,error,signal,priority,workers,pending\n");
        for k in &self.ticks {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                k.t,
                k.job.index(),
                k.setpoint,
                k.measured,
                k.error,
                k.signal,
                k.priority,
                k.workers,
                k.pending,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: f64, error: f64) -> ControlTick {
        ControlTick {
            t,
            job: JobId::new(1),
            setpoint: 5.0,
            measured: 5.0 + error,
            error,
            signal: error * 1.2,
            priority: 2.0,
            workers: 4,
            pending: 3,
        }
    }

    #[test]
    fn trace_accumulates_and_summarizes() {
        let mut tr = ControlTrace::default();
        assert!(tr.is_empty());
        assert_eq!(tr.mean_abs_error(), 0.0);
        tr.push(tick(0.0, 2.0));
        tr.push(tick(1.0, -4.0));
        assert_eq!(tr.len(), 2);
        assert!((tr.mean_abs_error() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_traces_compare_equal() {
        let mut a = ControlTrace::default();
        let mut b = ControlTrace::default();
        a.push(tick(0.0, 1.0));
        b.push(tick(0.0, 1.0));
        assert_eq!(a, b);
        b.push(tick(1.0, 1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn from_store_since_scopes_to_a_run() {
        let store = crate::EventStore::new();
        store.record_control(tick(0.0, 1.0));
        let mark = store.next_seq();
        store.record_control(tick(1.0, 2.0));
        store.record_control(tick(2.0, 3.0));
        let trace = ControlTrace::from_store_since(&store, mark);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.ticks()[0].t, 1.0);
        let full = ControlTrace::from_store_since(&store, 0);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn exports_include_every_field() {
        let mut tr = ControlTrace::default();
        tr.push(tick(2.5, 1.5));
        let json = tr.to_json();
        assert!(json.contains("\"setpoint\":5"), "{json}");
        assert!(
            json.contains("\"signal\":1.7999999999999998") || json.contains("\"signal\":1.8"),
            "{json}"
        );
        let csv = tr.to_csv();
        assert!(csv.starts_with("t,job,"), "{csv}");
        assert!(csv.lines().count() == 2);
    }
}
