//! A lock-cheap registry of named counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`-backed: recording is a single atomic operation, so
//! hot paths can hold a handle and bump it without touching the registry
//! lock (the lock guards only name → handle resolution and snapshots).

use crate::{json_escape, json_f64};
use parking_lot::Mutex;
use sstd_stats::Histogram;
use sstd_types::ConfigError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// # Examples
///
/// ```
/// use sstd_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let tasks = reg.counter("tasks_completed");
/// tasks.inc();
/// tasks.add(4);
/// assert_eq!(tasks.get(), 5);
/// assert_eq!(reg.counter("tasks_completed").get(), 5, "same handle by name");
/// ```
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
///
/// Stored as raw bits in an atomic, so `set`/`get` are lock-free.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket geometry of a [`HistogramHandle`]: uniform bins delegated to
/// [`sstd_stats::Histogram`], or explicit monotonic bin edges.
#[derive(Debug)]
enum Geometry {
    /// Equal-width bins over `[lo, hi]`; the empty template carries the
    /// geometry.
    Uniform(Histogram),
    /// `n + 1` strictly increasing finite edges defining `n` bins; bin
    /// `k` covers `[edges[k], edges[k+1])`.
    Edges(Vec<f64>),
}

impl Geometry {
    fn bin_of(&self, x: f64) -> usize {
        match self {
            Self::Uniform(template) => template.bin_of(x),
            Self::Edges(edges) => {
                let bins = edges.len() - 1;
                if x.is_nan() || x < edges[0] {
                    return 0;
                }
                // Out-of-range samples clamp into the end bins, matching
                // the uniform geometry's convention.
                edges[1..bins].iter().position(|&e| x < e).unwrap_or(bins - 1)
            }
        }
    }

    fn bin_center(&self, b: usize) -> f64 {
        match self {
            Self::Uniform(template) => template.bin_center(b),
            Self::Edges(edges) => (edges[b] + edges[b + 1]) / 2.0,
        }
    }

    fn bins(&self) -> usize {
        match self {
            Self::Uniform(template) => template.num_bins(),
            Self::Edges(edges) => edges.len() - 1,
        }
    }
}

/// A fixed-bucket histogram with atomic bins.
///
/// Bucket geometry is either equal-width bins over `[lo, hi]` delegated
/// to [`sstd_stats::Histogram`] — so exported bucket centers match the
/// stats crate's conventions everywhere else in SSTD — or explicit
/// monotonic edges via
/// [`MetricsRegistry::histogram_with_edges`]. Out-of-range samples clamp
/// into the end bins in both geometries.
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    geometry: Arc<Geometry>,
    bins: Arc<Vec<AtomicU64>>,
}

impl HistogramHandle {
    fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Self::from_geometry(Geometry::Uniform(Histogram::new(lo, hi, bins)))
    }

    fn from_geometry(geometry: Geometry) -> Self {
        let bins = (0..geometry.bins()).map(|_| AtomicU64::new(0)).collect();
        Self { geometry: Arc::new(geometry), bins: Arc::new(bins) }
    }

    /// Records one sample (clamped into the end bins when out of range).
    pub fn record(&self, x: f64) {
        let b = self.geometry.bin_of(x);
        self.bins[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            centers: (0..self.bins.len()).map(|b| self.geometry.bin_center(b)).collect(),
            counts: self.bins.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// An immutable copy of a histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    centers: Vec<f64>,
    counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Bucket midpoints.
    #[must_use]
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The approximate `p`-quantile (bucket-midpoint interpolation), or
    /// `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = (p * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.centers[i]);
            }
        }
        self.centers.last().copied()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call with a
/// name allocates the metric, later calls hand back the same underlying
/// handle, so any component can reach a shared metric by name alone.
///
/// # Examples
///
/// ```
/// use sstd_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("intervals").add(3);
/// reg.gauge("workers").set(16.0);
/// let lat = reg.histogram("latency_s", 0.0, 1.0, 10);
/// lat.record(0.25);
/// let snap = reg.snapshot();
/// assert!(snap.to_json().contains("\"intervals\":3"));
/// assert!(snap.to_csv().contains("gauge,workers,16"));
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Mutex::new(Inner::default()) }
    }

    /// The counter named `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// The histogram named `name`, created with the given bucket geometry
    /// on first use (later calls ignore the geometry arguments and return
    /// the existing handle).
    ///
    /// # Panics
    ///
    /// Panics on first use if `bins == 0`, `lo >= hi`, or a bound is not
    /// finite (see [`sstd_stats::Histogram::new`]).
    #[must_use]
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, bins: usize) -> HistogramHandle {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle::new(lo, hi, bins))
            .clone()
    }

    /// Like [`histogram`](Self::histogram), but invalid geometry surfaces
    /// as a [`ConfigError`] instead of a panic — for callers building
    /// bucket bounds from configuration rather than literals.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when `bins == 0`, a bound is not finite, or
    /// `lo >= hi`. An existing histogram under `name` is returned as-is
    /// without re-validating the arguments.
    pub fn try_histogram(
        &self,
        name: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<HistogramHandle, ConfigError> {
        if bins == 0 {
            return Err(ConfigError::new("bins", "histogram needs at least one bucket"));
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ConfigError::new("range", "histogram bounds must be finite"));
        }
        if lo >= hi {
            return Err(ConfigError::new(
                "range",
                format!("histogram range is empty: lo {lo} >= hi {hi}"),
            ));
        }
        Ok(self.histogram(name, lo, hi, bins))
    }

    /// The histogram named `name` with explicit bin edges, created on
    /// first use: `edges` must be at least two strictly increasing finite
    /// values, and bin `k` covers `[edges[k], edges[k+1])` with
    /// out-of-range samples clamped into the end bins.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when fewer than two edges are given, an edge is
    /// not finite, or the edges are not strictly increasing. An existing
    /// histogram under `name` is returned as-is without re-validating.
    pub fn histogram_with_edges(
        &self,
        name: &str,
        edges: &[f64],
    ) -> Result<HistogramHandle, ConfigError> {
        if edges.len() < 2 {
            return Err(ConfigError::new(
                "edges",
                format!("histogram needs at least two bin edges, got {}", edges.len()),
            ));
        }
        if let Some(bad) = edges.iter().find(|e| !e.is_finite()) {
            return Err(ConfigError::new("edges", format!("bin edge {bad} is not finite")));
        }
        if let Some(w) = edges.windows(2).find(|w| w[0] >= w[1]) {
            return Err(ConfigError::new(
                "edges",
                format!("bin edges must be strictly increasing, got {} then {}", w[0], w[1]),
            ));
        }
        let mut inner = self.inner.lock();
        Ok(inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle::from_geometry(Geometry::Edges(edges.to_vec())))
            .clone())
    }

    /// A point-in-time copy of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// All registered metrics at one instant, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter values, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Gauge values, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// Histogram snapshots, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"centers":[...],"counts":[...]}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let centers = h.centers.iter().map(|&c| json_f64(c)).collect::<Vec<_>>().join(",");
                let counts = h.counts.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                format!("\"{}\":{{\"centers\":[{centers}],\"counts\":[{counts}]}}", json_escape(k))
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }

    /// Renders the snapshot as CSV rows `kind,name,value` (histogram rows
    /// are `hist,name,center,count`, one per bucket).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{k},{v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge,{k},{v}\n"));
        }
        for (k, h) in &self.histograms {
            for (c, n) in h.centers.iter().zip(&h.counts) {
                out.push_str(&format!("hist,{k},{c},{n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("g").set(1.5);
        assert_eq!(reg.gauge("g").get(), 1.5);
    }

    #[test]
    fn histogram_buckets_match_stats_geometry() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", 0.0, 10.0, 5);
        for x in [1.0, 2.5, 2.6, 9.9, 42.0] {
            h.record(x);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.counts()[1], 2, "[2, 4) holds two samples");
        assert_eq!(snap.counts()[4], 2, "top bin holds the clamped outlier too");
        assert_eq!(snap.centers()[0], 1.0, "centers come from sstd_stats::Histogram");
    }

    #[test]
    fn histogram_quantile_interpolates_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q", 0.0, 100.0, 100);
        for i in 0..100 {
            h.record(f64::from(i));
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).expect("non-empty");
        assert!((p50 - 49.5).abs() < 1.0, "median near the middle: {p50}");
        let p99 = snap.quantile(0.99).expect("non-empty");
        assert!(p99 > 95.0, "p99 near the top: {p99}");
        assert_eq!(snap.quantile(0.0), Some(0.5), "p0 is the first occupied bucket");
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("empty", 0.0, 1.0, 4);
        assert_eq!(h.snapshot().quantile(0.5), None);
    }

    #[test]
    fn empty_and_non_monotonic_edges_are_rejected() {
        let reg = MetricsRegistry::new();
        assert!(reg.histogram_with_edges("e", &[]).is_err(), "no edges");
        assert!(reg.histogram_with_edges("e", &[1.0]).is_err(), "one edge is no bin");
        assert!(reg.histogram_with_edges("e", &[0.0, 2.0, 1.0]).is_err(), "not increasing");
        assert!(reg.histogram_with_edges("e", &[0.0, 0.0, 1.0]).is_err(), "not strict");
        assert!(reg.histogram_with_edges("e", &[0.0, f64::NAN]).is_err(), "NaN edge");
        assert!(reg.histogram_with_edges("e", &[0.0, f64::INFINITY]).is_err(), "infinite edge");
        let err = reg.histogram_with_edges("e", &[3.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("edges"), "{err}");
        assert_eq!(reg.snapshot().histograms().len(), 0, "nothing was registered");
    }

    #[test]
    fn explicit_edges_bin_and_clamp_correctly() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_edges("lat", &[0.0, 0.1, 1.0, 10.0]).unwrap();
        h.record(-5.0); // clamps into bin 0
        h.record(0.05); // bin 0
        h.record(0.5); // bin 1
        h.record(2.0); // bin 2
        h.record(99.0); // clamps into bin 2
        let snap = h.snapshot();
        assert_eq!(snap.counts(), &[2, 1, 2]);
        assert_eq!(snap.centers(), &[0.05, 0.55, 5.5], "centers are edge midpoints");
        assert_eq!(snap.total(), 5);
    }

    #[test]
    fn try_histogram_rejects_bad_uniform_geometry() {
        let reg = MetricsRegistry::new();
        assert!(reg.try_histogram("h", 0.0, 1.0, 0).is_err(), "zero bins");
        assert!(reg.try_histogram("h", 1.0, 1.0, 4).is_err(), "empty range");
        assert!(reg.try_histogram("h", 2.0, 1.0, 4).is_err(), "inverted range");
        assert!(reg.try_histogram("h", f64::NAN, 1.0, 4).is_err(), "NaN bound");
        let h = reg.try_histogram("h", 0.0, 1.0, 4).unwrap();
        h.record(0.3);
        assert_eq!(h.snapshot().counts()[1], 1);
    }

    #[test]
    fn json_export_round_trips_names_and_values() {
        let reg = MetricsRegistry::new();
        reg.counter("tasks").add(7);
        reg.gauge("load").set(0.5);
        reg.histogram("h", 0.0, 2.0, 2).record(0.5);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"tasks\":7"), "{json}");
        assert!(json.contains("\"load\":0.5"), "{json}");
        assert!(json.contains("\"counts\":[1,0]"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_export_nulls_non_finite_gauges() {
        let reg = MetricsRegistry::new();
        reg.gauge("bad").set(f64::NAN);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"bad\":null"), "{json}");
    }

    #[test]
    fn csv_export_emits_one_row_per_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", 0.0, 4.0, 2);
        h.record(1.0);
        h.record(3.0);
        h.record(3.5);
        let csv = reg.snapshot().to_csv();
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("hist,lat,1,1\n"), "{csv}");
        assert!(csv.contains("hist,lat,3,2\n"), "{csv}");
    }
}
