//! Observability for SSTD: metrics, task timelines, and control-loop
//! telemetry.
//!
//! The paper evaluates SSTD by *measuring* it — per-interval decision
//! latency, task turnaround on the Work Queue pool, PID-controlled
//! workload error (§IV–V). This crate is the measurement layer those
//! curves come from:
//!
//! - [`MetricsRegistry`] — a lock-cheap registry of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`HistogramHandle`]s (bucket geometry
//!   from [`sstd_stats::Histogram`]), snapshotted to JSON or CSV;
//! - [`TimelineRecorder`] — a [`sstd_runtime::Recorder`] sink collecting
//!   the per-attempt [`TimelineEvent`] stream both execution backends
//!   emit (queued → dispatched → failed/evicted/aborted → completed), so
//!   a DES run and a threaded run of the same seeded `FaultPlan` produce
//!   [structurally comparable](Timeline::structurally_equal) traces;
//! - [`ControlTick`] / [`ControlTrace`] — one sample per PID tick
//!   (setpoint, measured workload, error, actuation) from the Dynamic
//!   Task Manager;
//! - [`StreamTick`] / [`StreamTelemetry`] — per-interval streaming
//!   telemetry (report counts, ACS window occupancy, decode latency,
//!   decision flips, late/rejected ingest counts);
//! - [`RecoveryEvent`] / [`RecoveryTelemetry`] — the checkpoint/restore
//!   event stream from the crash-recovery subsystem (checkpoints written,
//!   crashes observed, journal replay lengths, recovery latency);
//! - [`BenchReport`] — the `BENCH_*.json`-compatible trajectory exporter
//!   the evaluation binaries write.
//!
//! Everything here is pull-based and allocation-light: recording an event
//! is an atomic increment or a short `Mutex`-guarded push, and the
//! runtime's default recorder is a no-op, so instrumentation costs
//! nothing until a sink is installed.
//!
//! # Examples
//!
//! ```
//! use sstd_obs::TimelineRecorder;
//! use sstd_runtime::prelude::*;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(TimelineRecorder::new());
//! let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
//! des.set_recorder(Some(recorder.clone()));
//! des.submit(TaskSpec::new(JobId::new(0), 100.0));
//! let _ = des.run_to_completion();
//! let timeline = recorder.snapshot();
//! assert_eq!(timeline.events().len(), 3); // queued, dispatched, completed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod control;
mod export;
mod metrics;
mod recovery;
mod stream;
mod timeline;

pub use control::{ControlTick, ControlTrace};
pub use export::BenchReport;
pub use metrics::{
    Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use recovery::{RecoveryEvent, RecoveryTelemetry};
pub use stream::{StreamTelemetry, StreamTick};
pub use timeline::{Timeline, TimelineRecorder};

pub use sstd_runtime::{LossCause, TaskPhase, TimelineEvent};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` when not finite).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
