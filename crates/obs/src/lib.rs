//! Observability for SSTD: a write-optimized, queryable trace store with
//! metrics, task-timeline, control-loop, streaming and recovery views.
//!
//! The paper evaluates SSTD by *measuring* it — per-interval decision
//! latency, task turnaround on the Work Queue pool, PID-controlled
//! workload error (§IV–V). This crate is the measurement layer those
//! curves come from, built around one unified log:
//!
//! - [`EventStore`] — the append-only, chunked trace store every
//!   telemetry domain writes through. One [`Event`] per record: a
//!   monotonic sequence id, an explicit causality link (task → attempt →
//!   retry chains, checkpoint → crash → restore), and an [`EventKind`]
//!   payload. Bounded-memory operation via [`StoreConfig`]: whole-segment
//!   eviction with truthful drop accounting;
//! - [`Query`] — the builder for filtering (class, task/job/worker,
//!   phase label, time range, sequence watermark), grouping, and
//!   reducing (count/sum/mean, exact and P² percentiles via
//!   `sstd_stats`) over the store, plus causal chain reconstruction
//!   ([`AttemptChain`] / [`Attempt`] via
//!   [`EventStore::attempt_chain`]);
//! - [`MetricsRegistry`] — a lock-cheap registry of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`HistogramHandle`]s (uniform bucket
//!   geometry from [`sstd_stats::Histogram`], or validated explicit
//!   edges), snapshotted to JSON or CSV;
//! - [`TimelineRecorder`] — a [`sstd_runtime::Recorder`] adapter over the
//!   store collecting the per-attempt [`TimelineEvent`] stream both
//!   execution backends emit, so a DES run and a threaded run of the same
//!   seeded `FaultPlan` produce
//!   [structurally comparable](Timeline::structurally_equal) traces;
//! - [`ControlTick`] / [`ControlTrace`] — one sample per PID tick
//!   (setpoint, measured workload, error, actuation) from the Dynamic
//!   Task Manager;
//! - [`StreamTick`] / [`StreamTelemetry`] — per-interval streaming
//!   telemetry (report counts, ACS window occupancy, decode latency,
//!   decision flips, late/rejected ingest counts);
//! - [`RecoveryEvent`] / [`RecoveryTelemetry`] — the checkpoint/restore
//!   event stream from the crash-recovery subsystem (checkpoints written,
//!   crashes observed, journal replay lengths, recovery latency);
//! - [`BenchReport`] — the `BENCH_*.json`-compatible trajectory exporter
//!   the evaluation binaries write.
//!
//! The per-domain views (`TimelineRecorder`, `StreamTelemetry`,
//! `RecoveryTelemetry`, `ControlTrace::from_store_since`) are thin
//! adapters: each writes into an [`EventStore`] — a private one by
//! default, or a shared one so a whole run lands in a single
//! causally-linked log — and reads back through [`Query`].
//!
//! Everything here is pull-based and allocation-light: recording an event
//! is an atomic increment or a short `Mutex`-guarded push into the open
//! segment, and the runtime's default recorder is a no-op, so
//! instrumentation costs nothing until a sink is installed (the
//! `obs_overhead` bench guards exactly this).
//!
//! # Examples
//!
//! ```
//! use sstd_obs::EventStore;
//! use sstd_runtime::prelude::*;
//! use std::sync::Arc;
//!
//! let store = Arc::new(EventStore::new());
//! let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
//! des.set_recorder(Some(store.clone()));
//! des.submit(TaskSpec::new(JobId::new(0), 100.0));
//! let _ = des.run_to_completion();
//! assert_eq!(store.query().tasks().count(), 3); // queued, dispatched, completed
//! let p_done = store.query().tasks().label("completed")
//!     .percentile(1.0, |e| e.timeline_event().map(|t| t.at));
//! assert!(p_done.unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod control;
mod event;
mod export;
mod metrics;
mod query;
mod recovery;
mod store;
mod stream;
mod timeline;

pub use control::{ControlTick, ControlTrace};
pub use event::{Event, EventClass, EventKind};
pub use export::BenchReport;
pub use metrics::{
    Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use query::{Attempt, AttemptChain, Query};
pub use recovery::{RecoveryEvent, RecoveryTelemetry};
pub use store::{EventStore, StoreConfig};
pub use stream::{StreamTelemetry, StreamTick};
pub use timeline::{Timeline, TimelineRecorder};

pub use sstd_runtime::{LossCause, TaskPhase, TimelineEvent};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` when not finite).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
