//! The write-optimized trace store: one append-only, chunked event log
//! for every telemetry domain.
//!
//! # Design
//!
//! An [`EventStore`] is a sequence of fixed-capacity *segments* (chunks
//! of the append-only log). Recording an event is a short mutex-guarded
//! push into the open tail segment plus O(1) causality bookkeeping —
//! no per-event allocation once a segment exists. Each sealed segment
//! carries a summary (per-class counts, covered time range) that the
//! [`Query`](crate::Query) layer uses to skip whole chunks.
//!
//! # Bounded memory
//!
//! With [`StoreConfig::max_segments`] set, the store retains at most
//! that many segments: appending past the cap evicts the *oldest sealed
//! segment* whole. Evicted events are gone, but never silently: their
//! count per class folds into retained totals
//! ([`EventStore::class_count`], [`EventStore::total_appended`]) and the
//! [`EventStore::dropped_events`] counter reports exactly how many
//! records a query can no longer see. A 10M-event run with a bounded
//! store neither OOMs nor lies about what it measured.
//!
//! # Causality
//!
//! The store links each event to its causal predecessor at ingest time,
//! using interned dense ids so the bookkeeping is a vector index, not a
//! map probe: task events chain per task (queued → dispatched → failed →
//! re-dispatched → …), control ticks chain per job, stream ticks chain
//! per interval sequence, and recovery events chain checkpoint → crash →
//! restore. Chains come back out via
//! [`attempt_chain`](EventStore::attempt_chain) and
//! [`task_sequences`](EventStore::task_sequences).

use crate::event::{Event, EventClass, EventKind};
use crate::query::Query;
use crate::{ControlTick, RecoveryEvent, StreamTick};
use parking_lot::Mutex;
use sstd_runtime::{Recorder, TimelineEvent};
use sstd_types::ConfigError;
use std::collections::VecDeque;

/// Capacity/eviction policy of an [`EventStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Events per segment. Appends never allocate per event; a new
    /// segment is allocated every `segment_capacity` events.
    pub segment_capacity: usize,
    /// Maximum retained segments; `0` means unbounded (the default).
    /// When exceeded, the oldest sealed segment is evicted whole and its
    /// events are added to [`EventStore::dropped_events`].
    pub max_segments: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { segment_capacity: 4096, max_segments: 0 }
    }
}

impl StoreConfig {
    /// An unbounded store (the default): nothing is ever evicted.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A bounded store retaining approximately `max_events` events.
    /// Eviction granularity is one segment, so the retained count stays
    /// within one segment of the target.
    #[must_use]
    pub fn bounded(max_events: usize) -> Self {
        let max_events = max_events.max(1);
        let segment_capacity = max_events.div_ceil(8).clamp(1, 4096);
        Self { segment_capacity, max_segments: max_events.div_ceil(segment_capacity).max(1) }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when `segment_capacity` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.segment_capacity == 0 {
            return Err(ConfigError::new(
                "segment_capacity",
                "segments must hold at least one event",
            ));
        }
        Ok(())
    }
}

/// Per-segment summary used for query pruning: what classes a chunk
/// holds and what time range its timed events cover.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentSummary {
    pub(crate) counts: [u64; 4],
    pub(crate) min_at: f64,
    pub(crate) max_at: f64,
}

impl Default for SegmentSummary {
    fn default() -> Self {
        Self { counts: [0; 4], min_at: f64::INFINITY, max_at: f64::NEG_INFINITY }
    }
}

#[derive(Debug, Default)]
pub(crate) struct Segment {
    pub(crate) events: Vec<Event>,
    pub(crate) summary: SegmentSummary,
}

impl Segment {
    fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::with_capacity(capacity), summary: SegmentSummary::default() }
    }

    fn push(&mut self, event: Event) {
        self.summary.counts[event.kind.class().index()] += 1;
        if let Some(at) = event.kind.at() {
            self.summary.min_at = self.summary.min_at.min(at);
            self.summary.max_at = self.summary.max_at.max(at);
        }
        self.events.push(event);
    }

    fn last_seq(&self) -> Option<u64> {
        self.events.last().map(|e| e.seq)
    }
}

/// Raw-id → dense-index interner. Raw task/job/worker ids are allocated
/// densely by the backends, so a vector doubles as the map; `u32::MAX`
/// marks a raw id not seen yet.
#[derive(Debug, Default)]
struct Interner {
    dense_of_raw: Vec<u32>,
    raw_of_dense: Vec<u32>,
}

impl Interner {
    fn intern(&mut self, raw: u32) -> u32 {
        let i = raw as usize;
        if i >= self.dense_of_raw.len() {
            self.dense_of_raw.resize(i + 1, u32::MAX);
        }
        if self.dense_of_raw[i] == u32::MAX {
            let dense = u32::try_from(self.raw_of_dense.len()).expect("fewer than 2^32 ids");
            self.dense_of_raw[i] = dense;
            self.raw_of_dense.push(raw);
        }
        self.dense_of_raw[i]
    }

    fn len(&self) -> usize {
        self.raw_of_dense.len()
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    segments: VecDeque<Segment>,
    next_seq: u64,
    dropped: u64,
    evicted_counts: [u64; 4],
    tasks: Interner,
    jobs: Interner,
    workers: Interner,
    /// Last event of each task, by dense task index.
    last_task_event: Vec<Option<u64>>,
    /// Last control tick of each job, by dense job index.
    last_control_tick: Vec<Option<u64>>,
    last_stream_tick: Option<u64>,
    last_checkpoint: Option<u64>,
    last_crash: Option<u64>,
}

/// The unified append-only trace store (see the crate docs for the
/// layer map).
///
/// Thread-safe: recording locks a [`parking_lot::Mutex`] briefly, so the
/// store can be shared (`Arc<EventStore>`) between an execution backend
/// — it implements [`Recorder`] directly — the DTM, the streaming engine
/// and the supervisor, producing one causally-linked log of a whole run.
///
/// # Examples
///
/// ```
/// use sstd_obs::EventStore;
/// use sstd_runtime::prelude::*;
/// use std::sync::Arc;
///
/// let store = Arc::new(EventStore::new());
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.set_recorder(Some(store.clone()));
/// des.submit(TaskSpec::new(JobId::new(0), 100.0));
/// let _ = des.run_to_completion();
/// assert_eq!(store.query().tasks().count(), 3); // queued, dispatched, completed
/// let chain = store.attempt_chain(TaskId::new(0)).unwrap();
/// assert_eq!(chain.retries(), 0);
/// assert!(chain.completed());
/// ```
#[derive(Debug)]
pub struct EventStore {
    config: StoreConfig,
    inner: Mutex<StoreInner>,
}

impl Default for EventStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EventStore {
    /// Creates an unbounded store with the default segment size.
    #[must_use]
    pub fn new() -> Self {
        Self { config: StoreConfig::default(), inner: Mutex::new(StoreInner::default()) }
    }

    /// Creates a store with an explicit capacity/eviction policy.
    ///
    /// # Errors
    ///
    /// Whatever [`StoreConfig::validate`] reports.
    pub fn with_config(config: StoreConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self { config, inner: Mutex::new(StoreInner::default()) })
    }

    /// The capacity/eviction policy.
    #[must_use]
    pub const fn config(&self) -> StoreConfig {
        self.config
    }

    /// Appends a task lifecycle event; returns its sequence id. The
    /// cause link is the task's previous event, so retry/respawn chains
    /// are walkable without re-scanning.
    pub fn record_task(&self, event: &TimelineEvent) -> u64 {
        let mut inner = self.inner.lock();
        let task_ix = inner.tasks.intern(event.task.index() as u32) as usize;
        inner.jobs.intern(event.job.index() as u32);
        if let Some(w) = event.worker {
            inner.workers.intern(w.index() as u32);
        }
        if task_ix >= inner.last_task_event.len() {
            inner.last_task_event.resize(task_ix + 1, None);
        }
        let cause = inner.last_task_event[task_ix];
        let seq = self.append(&mut inner, cause, EventKind::Task(*event));
        inner.last_task_event[task_ix] = Some(seq);
        seq
    }

    /// Appends one control-loop sample; returns its sequence id. The
    /// cause link is the previous tick of the same job.
    pub fn record_control(&self, tick: ControlTick) -> u64 {
        let mut inner = self.inner.lock();
        let job_ix = inner.jobs.intern(tick.job.index() as u32) as usize;
        if job_ix >= inner.last_control_tick.len() {
            inner.last_control_tick.resize(job_ix + 1, None);
        }
        let cause = inner.last_control_tick[job_ix];
        let seq = self.append(&mut inner, cause, EventKind::Control(tick));
        inner.last_control_tick[job_ix] = Some(seq);
        seq
    }

    /// Appends one closed streaming interval; returns its sequence id.
    /// The cause link is the previous interval.
    pub fn record_stream(&self, tick: StreamTick) -> u64 {
        let mut inner = self.inner.lock();
        let cause = inner.last_stream_tick;
        let seq = self.append(&mut inner, cause, EventKind::Stream(tick));
        inner.last_stream_tick = Some(seq);
        seq
    }

    /// Appends one recovery step; returns its sequence id. Crashes are
    /// caused by the covering checkpoint (the state a restore will load),
    /// restores by the observed crash.
    pub fn record_recovery(&self, event: RecoveryEvent) -> u64 {
        let mut inner = self.inner.lock();
        let cause = match event {
            RecoveryEvent::CheckpointWritten { .. } => None,
            RecoveryEvent::CrashObserved { .. } => inner.last_checkpoint,
            RecoveryEvent::Restored { .. } => inner.last_crash,
        };
        let seq = self.append(&mut inner, cause, EventKind::Recovery(event));
        match event {
            RecoveryEvent::CheckpointWritten { .. } => inner.last_checkpoint = Some(seq),
            RecoveryEvent::CrashObserved { .. } => inner.last_crash = Some(seq),
            RecoveryEvent::Restored { .. } => {}
        }
        seq
    }

    fn append(&self, inner: &mut StoreInner, cause: Option<u64>, kind: EventKind) -> u64 {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let needs_segment =
            inner.segments.back().is_none_or(|s| s.events.len() >= self.config.segment_capacity);
        if needs_segment {
            inner.segments.push_back(Segment::with_capacity(self.config.segment_capacity));
            if self.config.max_segments > 0 && inner.segments.len() > self.config.max_segments {
                let evicted = inner.segments.pop_front().expect("len > max >= 1");
                inner.dropped += evicted.events.len() as u64;
                for (i, c) in evicted.summary.counts.iter().enumerate() {
                    inner.evicted_counts[i] += c;
                }
            }
        }
        inner.segments.back_mut().expect("segment just ensured").push(Event { seq, cause, kind });
        seq
    }

    /// Events currently retained (appended minus evicted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().segments.iter().map(|s| s.events.len()).sum()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever appended, evicted or not — also the next sequence id.
    #[must_use]
    pub fn total_appended(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The sequence id the next append will get. Capture it before a run
    /// to scope later queries to that run via
    /// [`Query::since_seq`](crate::Query::since_seq).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events evicted by the bounded-memory policy. Zero for unbounded
    /// stores; always `total_appended() - len()`.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Events of `class` ever appended — retained *plus* evicted, so
    /// totals stay truthful after eviction.
    #[must_use]
    pub fn class_count(&self, class: EventClass) -> u64 {
        let inner = self.inner.lock();
        inner.evicted_counts[class.index()]
            + inner.segments.iter().map(|s| s.summary.counts[class.index()]).sum::<u64>()
    }

    /// Retained segments.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Distinct tasks interned so far.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// Distinct jobs interned so far.
    #[must_use]
    pub fn num_jobs(&self) -> usize {
        self.inner.lock().jobs.len()
    }

    /// Distinct workers interned so far.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.inner.lock().workers.len()
    }

    /// A point-in-time copy of every retained event, in append order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.segments.iter().map(|s| s.events.len()).sum());
        for s in &inner.segments {
            out.extend_from_slice(&s.events);
        }
        out
    }

    /// Resets the store to empty: retained events, drop accounting,
    /// interners, causality state *and* sequence numbering all restart
    /// from zero.
    pub fn clear(&self) {
        *self.inner.lock() = StoreInner::default();
    }

    /// Starts a query over the retained events.
    #[must_use]
    pub fn query(&self) -> Query<'_> {
        Query::new(self)
    }

    /// Visits every retained event matching the coarse pre-filters, in
    /// append order, skipping whole segments whose summary rules them
    /// out. The fine-grained filter runs in [`Query`].
    pub(crate) fn for_each_pruned(
        &self,
        class: Option<EventClass>,
        time: Option<(f64, f64)>,
        since: Option<u64>,
        mut f: impl FnMut(&Event),
    ) {
        let inner = self.inner.lock();
        for s in &inner.segments {
            if let Some(c) = class {
                if s.summary.counts[c.index()] == 0 {
                    continue;
                }
            }
            if let Some((t0, t1)) = time {
                // A time filter only ever matches timed events, and the
                // summary covers exactly those.
                if s.summary.max_at < t0 || s.summary.min_at > t1 {
                    continue;
                }
            }
            if let Some(since) = since {
                if s.last_seq().is_some_and(|last| last < since) {
                    continue;
                }
            }
            for e in &s.events {
                f(e);
            }
        }
    }
}

impl Recorder for EventStore {
    fn record(&self, event: &TimelineEvent) {
        self.record_task(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::{JobId, TaskId, TaskPhase};

    fn task_event(task: u32, at: f64, phase: TaskPhase) -> TimelineEvent {
        TimelineEvent {
            task: TaskId::new(task),
            job: JobId::new(0),
            attempt: 0,
            worker: None,
            at,
            phase,
        }
    }

    #[test]
    fn sequence_ids_are_monotonic_across_domains() {
        let store = EventStore::new();
        let a = store.record_task(&task_event(0, 0.0, TaskPhase::Queued));
        let b = store.record_recovery(RecoveryEvent::CrashObserved { reports_ingested: 1 });
        let c = store.record_task(&task_event(1, 1.0, TaskPhase::Queued));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(store.len(), 3);
        assert_eq!(store.total_appended(), 3);
        assert_eq!(store.dropped_events(), 0);
    }

    #[test]
    fn task_events_chain_per_task() {
        let store = EventStore::new();
        store.record_task(&task_event(0, 0.0, TaskPhase::Queued));
        store.record_task(&task_event(1, 0.0, TaskPhase::Queued));
        store.record_task(&task_event(0, 1.0, TaskPhase::Dispatched));
        store.record_task(&task_event(0, 2.0, TaskPhase::Completed));
        let events = store.events();
        assert_eq!(events[0].cause, None);
        assert_eq!(events[1].cause, None, "other task starts its own chain");
        assert_eq!(events[2].cause, Some(0), "dispatch caused by its queue event");
        assert_eq!(events[3].cause, Some(2), "completion caused by its dispatch");
        assert_eq!(store.num_tasks(), 2);
    }

    #[test]
    fn recovery_chain_links_checkpoint_crash_restore() {
        let store = EventStore::new();
        let ck = store.record_recovery(RecoveryEvent::CheckpointWritten {
            interval: 0,
            journal_len: 5,
            bytes: 64,
        });
        let crash = store.record_recovery(RecoveryEvent::CrashObserved { reports_ingested: 9 });
        let restore = store.record_recovery(RecoveryEvent::Restored { replayed: 4, latency: 0.1 });
        let events = store.events();
        assert_eq!(events[ck as usize].cause, None);
        assert_eq!(events[crash as usize].cause, Some(ck));
        assert_eq!(events[restore as usize].cause, Some(crash));
    }

    #[test]
    fn bounded_store_evicts_whole_segments_and_counts_drops() {
        let config = StoreConfig { segment_capacity: 4, max_segments: 2 };
        let store = EventStore::with_config(config).unwrap();
        for i in 0..20 {
            store.record_task(&task_event(i, f64::from(i), TaskPhase::Queued));
        }
        assert!(store.num_segments() <= 2);
        assert!(store.len() <= 8);
        assert_eq!(store.total_appended(), 20);
        assert_eq!(store.dropped_events(), 20 - store.len() as u64);
        // Class totals never lie: evicted events stay counted.
        assert_eq!(store.class_count(EventClass::Task), 20);
        // The retained suffix is contiguous and ends at the last append.
        let events = store.events();
        assert_eq!(events.last().unwrap().seq, 19);
        let first = events.first().unwrap().seq;
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == first + i as u64));
    }

    #[test]
    fn bounded_config_respects_the_target_within_a_segment() {
        let cfg = StoreConfig::bounded(1000);
        assert!(cfg.max_segments * cfg.segment_capacity >= 1000);
        assert!((cfg.max_segments - 1) * cfg.segment_capacity <= 1000);
        assert!(StoreConfig { segment_capacity: 0, max_segments: 0 }.validate().is_err());
    }

    #[test]
    fn clear_resets_everything() {
        let store = EventStore::new();
        store.record_task(&task_event(0, 0.0, TaskPhase::Queued));
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.total_appended(), 0);
        assert_eq!(store.num_tasks(), 0);
        let seq = store.record_task(&task_event(0, 0.0, TaskPhase::Queued));
        assert_eq!(seq, 0, "sequence numbering restarts");
        assert_eq!(store.events()[0].cause, None, "causality state restarts");
    }
}
