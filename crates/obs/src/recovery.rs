//! Recovery telemetry: what the checkpoint/restore machinery did and what
//! it cost.
//!
//! The crash-recovery subsystem (see DESIGN.md §13) emits one
//! [`RecoveryEvent`] per checkpoint written, crash observed and restore
//! completed. [`RecoveryTelemetry`] is an adapter over the unified
//! [`EventStore`]: events land in the store's recovery log (chained
//! checkpoint → crash → restore), and every aggregate counter a
//! long-running ingest service would alert on — checkpoints written,
//! crashes survived, reports replayed, recovery latency — is computed
//! through the [`Query`](crate::Query) layer.

use crate::event::Event;
use crate::json_f64;
use crate::store::EventStore;
use std::sync::Arc;

/// One event in the life of a supervised, checkpointed ingest loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryEvent {
    /// A checkpoint was written.
    CheckpointWritten {
        /// The open interval at checkpoint time.
        interval: usize,
        /// Reports ingested since the previous checkpoint (the journal
        /// suffix a restore would replay).
        journal_len: u64,
        /// Encoded snapshot size in bytes.
        bytes: usize,
    },
    /// The ingest loop crashed (injected or real); recovery begins.
    CrashObserved {
        /// Reports successfully ingested before the crash.
        reports_ingested: u64,
    },
    /// State was restored from the last checkpoint plus journal replay.
    Restored {
        /// Reports replayed from the journal to catch up.
        replayed: u64,
        /// Wall-clock seconds from crash to caught-up (0 when timing is
        /// disabled).
        latency: f64,
    },
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CheckpointWritten { interval, journal_len, bytes } => {
                write!(f, "checkpoint(interval={interval}, journal={journal_len}, bytes={bytes})")
            }
            Self::CrashObserved { reports_ingested } => {
                write!(f, "crash(ingested={reports_ingested})")
            }
            Self::Restored { replayed, latency } => {
                write!(f, "restored(replayed={replayed}, latency={latency:.6})")
            }
        }
    }
}

/// The recovery event stream plus aggregate counters, read from the
/// backing trace store.
///
/// # Examples
///
/// ```
/// use sstd_obs::{RecoveryEvent, RecoveryTelemetry};
///
/// let mut tel = RecoveryTelemetry::new();
/// tel.record(RecoveryEvent::CheckpointWritten { interval: 3, journal_len: 40, bytes: 512 });
/// tel.record(RecoveryEvent::CrashObserved { reports_ingested: 55 });
/// tel.record(RecoveryEvent::Restored { replayed: 15, latency: 0.002 });
/// assert_eq!(tel.checkpoints_written(), 1);
/// assert_eq!(tel.crashes_observed(), 1);
/// assert_eq!(tel.reports_replayed(), 15);
/// ```
#[derive(Debug)]
pub struct RecoveryTelemetry {
    store: Arc<EventStore>,
}

impl Default for RecoveryTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl RecoveryTelemetry {
    /// Creates a collector over a fresh private unbounded [`EventStore`].
    #[must_use]
    pub fn new() -> Self {
        Self { store: Arc::new(EventStore::new()) }
    }

    /// Creates a collector writing into an existing (possibly shared)
    /// store, so recovery events interleave with the other telemetry
    /// domains in one causally-linked log.
    #[must_use]
    pub fn with_store(store: Arc<EventStore>) -> Self {
        Self { store }
    }

    /// The backing trace store.
    #[must_use]
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// Appends one event; the store links it to its causal predecessor
    /// (a crash to the covering checkpoint, a restore to the crash).
    pub fn record(&mut self, event: RecoveryEvent) {
        self.store.record_recovery(event);
    }

    /// A point-in-time copy of the recorded events, in order.
    #[must_use]
    pub fn events(&self) -> Vec<RecoveryEvent> {
        self.store
            .query()
            .recovery()
            .events()
            .iter()
            .filter_map(|e| e.recovery_event().copied())
            .collect()
    }

    fn count(&self, label: &'static str) -> u64 {
        self.store.query().recovery().label(label).count()
    }

    /// Checkpoints written so far.
    #[must_use]
    pub fn checkpoints_written(&self) -> u64 {
        self.count("checkpoint")
    }

    /// Total encoded bytes across all checkpoints.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> u64 {
        self.events()
            .iter()
            .map(|e| match e {
                RecoveryEvent::CheckpointWritten { bytes, .. } => *bytes as u64,
                _ => 0,
            })
            .sum()
    }

    /// Crashes observed so far.
    #[must_use]
    pub fn crashes_observed(&self) -> u64 {
        self.count("crash")
    }

    /// Restores completed so far.
    #[must_use]
    pub fn restores_completed(&self) -> u64 {
        self.count("restored")
    }

    /// Reports replayed from the journal across all restores.
    #[must_use]
    pub fn reports_replayed(&self) -> u64 {
        self.events()
            .iter()
            .map(|e| match e {
                RecoveryEvent::Restored { replayed, .. } => *replayed,
                _ => 0,
            })
            .sum()
    }

    /// Mean replay length per completed restore (0 with no restores).
    #[must_use]
    pub fn mean_replay_len(&self) -> f64 {
        let restores = self.restores_completed();
        if restores == 0 {
            return 0.0;
        }
        self.reports_replayed() as f64 / restores as f64
    }

    /// Total wall-clock seconds spent recovering (0 when timing was
    /// disabled; non-positive or non-finite samples are ignored, matching
    /// the "zero means timing off" convention).
    #[must_use]
    pub fn total_recovery_latency(&self) -> f64 {
        self.store.query().recovery().sum(|e: &Event| match e.recovery_event() {
            Some(RecoveryEvent::Restored { latency, .. })
                if latency.is_finite() && *latency > 0.0 =>
            {
                Some(*latency)
            }
            _ => None,
        })
    }

    /// Renders the aggregate counters plus the event stream as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let events = self
            .events()
            .iter()
            .map(|e| match e {
                RecoveryEvent::CheckpointWritten { interval, journal_len, bytes } => format!(
                    "{{\"event\":\"checkpoint\",\"interval\":{interval},\"journal_len\":{journal_len},\"bytes\":{bytes}}}"
                ),
                RecoveryEvent::CrashObserved { reports_ingested } => {
                    format!("{{\"event\":\"crash\",\"reports_ingested\":{reports_ingested}}}")
                }
                RecoveryEvent::Restored { replayed, latency } => format!(
                    "{{\"event\":\"restored\",\"replayed\":{replayed},\"latency\":{}}}",
                    json_f64(*latency)
                ),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"checkpoints_written\":{},\"checkpoint_bytes\":{},\"crashes_observed\":{},\"restores_completed\":{},\"reports_replayed\":{},\"total_recovery_latency\":{},\"events\":[{events}]}}",
            self.checkpoints_written(),
            self.checkpoint_bytes(),
            self.crashes_observed(),
            self.restores_completed(),
            self.reports_replayed(),
            json_f64(self.total_recovery_latency()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_the_event_stream() {
        let mut tel = RecoveryTelemetry::new();
        tel.record(RecoveryEvent::CheckpointWritten { interval: 0, journal_len: 10, bytes: 100 });
        tel.record(RecoveryEvent::CheckpointWritten { interval: 5, journal_len: 20, bytes: 150 });
        tel.record(RecoveryEvent::CrashObserved { reports_ingested: 42 });
        tel.record(RecoveryEvent::Restored { replayed: 12, latency: 0.5 });
        tel.record(RecoveryEvent::CrashObserved { reports_ingested: 80 });
        tel.record(RecoveryEvent::Restored { replayed: 8, latency: 0.25 });
        assert_eq!(tel.checkpoints_written(), 2);
        assert_eq!(tel.checkpoint_bytes(), 250);
        assert_eq!(tel.crashes_observed(), 2);
        assert_eq!(tel.restores_completed(), 2);
        assert_eq!(tel.reports_replayed(), 20);
        assert!((tel.mean_replay_len() - 10.0).abs() < 1e-12);
        assert!((tel.total_recovery_latency() - 0.75).abs() < 1e-12);
        assert_eq!(tel.events().len(), 6);
    }

    #[test]
    fn empty_telemetry_is_all_zeros() {
        let tel = RecoveryTelemetry::new();
        assert_eq!(tel.checkpoints_written(), 0);
        assert_eq!(tel.mean_replay_len(), 0.0, "no restores must not divide by zero");
        assert!(tel.events().is_empty());
    }

    #[test]
    fn recovery_chains_link_in_the_store() {
        let mut tel = RecoveryTelemetry::new();
        tel.record(RecoveryEvent::CheckpointWritten { interval: 0, journal_len: 1, bytes: 10 });
        tel.record(RecoveryEvent::CrashObserved { reports_ingested: 5 });
        tel.record(RecoveryEvent::Restored { replayed: 5, latency: 0.0 });
        let events = tel.store().query().recovery().events();
        assert_eq!(events[1].cause, Some(events[0].seq), "crash caused by checkpoint");
        assert_eq!(events[2].cause, Some(events[1].seq), "restore caused by crash");
    }

    #[test]
    fn json_lists_counters_and_events() {
        let mut tel = RecoveryTelemetry::new();
        tel.record(RecoveryEvent::CheckpointWritten { interval: 1, journal_len: 5, bytes: 64 });
        tel.record(RecoveryEvent::Restored { replayed: 5, latency: 0.0 });
        let json = tel.to_json();
        assert!(json.contains("\"checkpoints_written\":1"), "{json}");
        assert!(json.contains("\"event\":\"checkpoint\""), "{json}");
        assert!(json.contains("\"replayed\":5"), "{json}");
    }

    #[test]
    fn display_formats() {
        let e = RecoveryEvent::CheckpointWritten { interval: 2, journal_len: 7, bytes: 99 };
        assert!(e.to_string().contains("interval=2"));
        assert!(RecoveryEvent::CrashObserved { reports_ingested: 3 }
            .to_string()
            .contains("ingested=3"));
        assert!(RecoveryEvent::Restored { replayed: 4, latency: 0.5 }
            .to_string()
            .contains("replayed=4"));
    }
}
