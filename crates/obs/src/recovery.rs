//! Recovery telemetry: what the checkpoint/restore machinery did and what
//! it cost.
//!
//! The crash-recovery subsystem (see DESIGN.md §13) emits one
//! [`RecoveryEvent`] per checkpoint written, crash observed and restore
//! completed. [`RecoveryTelemetry`] collects the event stream plus the
//! aggregate counters a long-running ingest service would alert on:
//! checkpoints written, crashes survived, reports replayed from the
//! journal, and the wall-clock latency of each recovery.

use crate::json_f64;

/// One event in the life of a supervised, checkpointed ingest loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryEvent {
    /// A checkpoint was written.
    CheckpointWritten {
        /// The open interval at checkpoint time.
        interval: usize,
        /// Reports ingested since the previous checkpoint (the journal
        /// suffix a restore would replay).
        journal_len: u64,
        /// Encoded snapshot size in bytes.
        bytes: usize,
    },
    /// The ingest loop crashed (injected or real); recovery begins.
    CrashObserved {
        /// Reports successfully ingested before the crash.
        reports_ingested: u64,
    },
    /// State was restored from the last checkpoint plus journal replay.
    Restored {
        /// Reports replayed from the journal to catch up.
        replayed: u64,
        /// Wall-clock seconds from crash to caught-up (0 when timing is
        /// disabled).
        latency: f64,
    },
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CheckpointWritten { interval, journal_len, bytes } => {
                write!(f, "checkpoint(interval={interval}, journal={journal_len}, bytes={bytes})")
            }
            Self::CrashObserved { reports_ingested } => {
                write!(f, "crash(ingested={reports_ingested})")
            }
            Self::Restored { replayed, latency } => {
                write!(f, "restored(replayed={replayed}, latency={latency:.6})")
            }
        }
    }
}

/// The recovery event stream plus aggregate counters.
///
/// # Examples
///
/// ```
/// use sstd_obs::{RecoveryEvent, RecoveryTelemetry};
///
/// let mut tel = RecoveryTelemetry::new();
/// tel.record(RecoveryEvent::CheckpointWritten { interval: 3, journal_len: 40, bytes: 512 });
/// tel.record(RecoveryEvent::CrashObserved { reports_ingested: 55 });
/// tel.record(RecoveryEvent::Restored { replayed: 15, latency: 0.002 });
/// assert_eq!(tel.checkpoints_written(), 1);
/// assert_eq!(tel.crashes_observed(), 1);
/// assert_eq!(tel.reports_replayed(), 15);
/// ```
#[derive(Debug, Default)]
pub struct RecoveryTelemetry {
    events: Vec<RecoveryEvent>,
    checkpoints_written: u64,
    checkpoint_bytes: u64,
    crashes_observed: u64,
    restores_completed: u64,
    reports_replayed: u64,
    total_recovery_latency: f64,
}

impl RecoveryTelemetry {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event and updates the aggregate counters.
    pub fn record(&mut self, event: RecoveryEvent) {
        match event {
            RecoveryEvent::CheckpointWritten { bytes, .. } => {
                self.checkpoints_written += 1;
                self.checkpoint_bytes += bytes as u64;
            }
            RecoveryEvent::CrashObserved { .. } => self.crashes_observed += 1,
            RecoveryEvent::Restored { replayed, latency } => {
                self.restores_completed += 1;
                self.reports_replayed += replayed;
                if latency.is_finite() && latency > 0.0 {
                    self.total_recovery_latency += latency;
                }
            }
        }
        self.events.push(event);
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Checkpoints written so far.
    #[must_use]
    pub const fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Total encoded bytes across all checkpoints.
    #[must_use]
    pub const fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Crashes observed so far.
    #[must_use]
    pub const fn crashes_observed(&self) -> u64 {
        self.crashes_observed
    }

    /// Restores completed so far.
    #[must_use]
    pub const fn restores_completed(&self) -> u64 {
        self.restores_completed
    }

    /// Reports replayed from the journal across all restores.
    #[must_use]
    pub const fn reports_replayed(&self) -> u64 {
        self.reports_replayed
    }

    /// Mean replay length per completed restore (0 with no restores).
    #[must_use]
    pub fn mean_replay_len(&self) -> f64 {
        if self.restores_completed == 0 {
            return 0.0;
        }
        self.reports_replayed as f64 / self.restores_completed as f64
    }

    /// Total wall-clock seconds spent recovering (0 when timing was
    /// disabled).
    #[must_use]
    pub const fn total_recovery_latency(&self) -> f64 {
        self.total_recovery_latency
    }

    /// Renders the aggregate counters plus the event stream as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| match e {
                RecoveryEvent::CheckpointWritten { interval, journal_len, bytes } => format!(
                    "{{\"event\":\"checkpoint\",\"interval\":{interval},\"journal_len\":{journal_len},\"bytes\":{bytes}}}"
                ),
                RecoveryEvent::CrashObserved { reports_ingested } => {
                    format!("{{\"event\":\"crash\",\"reports_ingested\":{reports_ingested}}}")
                }
                RecoveryEvent::Restored { replayed, latency } => format!(
                    "{{\"event\":\"restored\",\"replayed\":{replayed},\"latency\":{}}}",
                    json_f64(*latency)
                ),
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"checkpoints_written\":{},\"checkpoint_bytes\":{},\"crashes_observed\":{},\"restores_completed\":{},\"reports_replayed\":{},\"total_recovery_latency\":{},\"events\":[{events}]}}",
            self.checkpoints_written,
            self.checkpoint_bytes,
            self.crashes_observed,
            self.restores_completed,
            self.reports_replayed,
            json_f64(self.total_recovery_latency),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_the_event_stream() {
        let mut tel = RecoveryTelemetry::new();
        tel.record(RecoveryEvent::CheckpointWritten { interval: 0, journal_len: 10, bytes: 100 });
        tel.record(RecoveryEvent::CheckpointWritten { interval: 5, journal_len: 20, bytes: 150 });
        tel.record(RecoveryEvent::CrashObserved { reports_ingested: 42 });
        tel.record(RecoveryEvent::Restored { replayed: 12, latency: 0.5 });
        tel.record(RecoveryEvent::CrashObserved { reports_ingested: 80 });
        tel.record(RecoveryEvent::Restored { replayed: 8, latency: 0.25 });
        assert_eq!(tel.checkpoints_written(), 2);
        assert_eq!(tel.checkpoint_bytes(), 250);
        assert_eq!(tel.crashes_observed(), 2);
        assert_eq!(tel.restores_completed(), 2);
        assert_eq!(tel.reports_replayed(), 20);
        assert!((tel.mean_replay_len() - 10.0).abs() < 1e-12);
        assert!((tel.total_recovery_latency() - 0.75).abs() < 1e-12);
        assert_eq!(tel.events().len(), 6);
    }

    #[test]
    fn empty_telemetry_is_all_zeros() {
        let tel = RecoveryTelemetry::new();
        assert_eq!(tel.checkpoints_written(), 0);
        assert_eq!(tel.mean_replay_len(), 0.0, "no restores must not divide by zero");
        assert!(tel.events().is_empty());
    }

    #[test]
    fn json_lists_counters_and_events() {
        let mut tel = RecoveryTelemetry::new();
        tel.record(RecoveryEvent::CheckpointWritten { interval: 1, journal_len: 5, bytes: 64 });
        tel.record(RecoveryEvent::Restored { replayed: 5, latency: 0.0 });
        let json = tel.to_json();
        assert!(json.contains("\"checkpoints_written\":1"), "{json}");
        assert!(json.contains("\"event\":\"checkpoint\""), "{json}");
        assert!(json.contains("\"replayed\":5"), "{json}");
    }

    #[test]
    fn display_formats() {
        let e = RecoveryEvent::CheckpointWritten { interval: 2, journal_len: 7, bytes: 99 };
        assert!(e.to_string().contains("interval=2"));
        assert!(RecoveryEvent::CrashObserved { reports_ingested: 3 }
            .to_string()
            .contains("ingested=3"));
        assert!(RecoveryEvent::Restored { replayed: 4, latency: 0.5 }
            .to_string()
            .contains("replayed=4"));
    }
}
