//! Task timelines: collecting and comparing per-attempt event streams.
//!
//! [`TimelineRecorder`] is now a thin adapter over the unified
//! [`EventStore`]: recording writes straight into the store's task-event
//! log, and [`Timeline`] snapshots are materialized from it. Code that
//! wants the full query layer can share the recorder's store directly.

use crate::event::{EventClass, EventKind};
use crate::store::EventStore;
use crate::{json_escape, json_f64};
use sstd_runtime::{Recorder, TaskId, TimelineEvent};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A [`Recorder`] that collects every [`TimelineEvent`] in arrival order.
///
/// Install it on any [`ExecutionBackend`](sstd_runtime::ExecutionBackend)
/// via `set_recorder`, run the workload, then [`snapshot`](Self::snapshot)
/// the collected [`Timeline`]. Since the trace-store refactor this is an
/// adapter: events land in an [`EventStore`] (a private one by default,
/// or a shared one via [`with_store`](Self::with_store)), and the legacy
/// [`Timeline`] view is rebuilt from it on demand.
///
/// # Examples
///
/// ```
/// use sstd_obs::TimelineRecorder;
/// use sstd_runtime::prelude::*;
/// use std::sync::Arc;
///
/// let rec = Arc::new(TimelineRecorder::new());
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.set_recorder(Some(rec.clone()));
/// for _ in 0..3 {
///     des.submit(TaskSpec::new(JobId::new(0), 50.0));
/// }
/// let _ = des.run_to_completion();
/// let seqs = rec.snapshot().per_task_sequences();
/// assert_eq!(seqs.len(), 3);
/// assert!(seqs.values().all(|s| s.last().unwrap().1 == "completed"));
/// // The backing store answers richer questions than the snapshot:
/// assert_eq!(rec.store().query().tasks().label("completed").count(), 3);
/// ```
#[derive(Debug)]
pub struct TimelineRecorder {
    store: Arc<EventStore>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TimelineRecorder {
    /// Creates a recorder over a fresh private unbounded [`EventStore`].
    #[must_use]
    pub fn new() -> Self {
        Self { store: Arc::new(EventStore::new()) }
    }

    /// Creates a recorder writing into an existing (possibly shared)
    /// store, so task events interleave with control/stream/recovery
    /// events in one causally-linked log.
    #[must_use]
    pub fn with_store(store: Arc<EventStore>) -> Self {
        Self { store }
    }

    /// The backing trace store.
    #[must_use]
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// A point-in-time copy of every task event recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Timeline {
        let mut events = Vec::new();
        self.store.for_each_pruned(Some(EventClass::Task), None, None, |e| {
            if let EventKind::Task(t) = e.kind {
                events.push(t);
            }
        });
        Timeline { events }
    }

    /// Drains the recorded events, leaving the recorder empty.
    ///
    /// This clears the *whole* backing store — including non-task events
    /// when the store is shared — so prefer [`snapshot`](Self::snapshot)
    /// plus [`Query::since_seq`](crate::Query::since_seq) watermarks on
    /// shared stores.
    #[must_use]
    pub fn take(&self) -> Timeline {
        let timeline = self.snapshot();
        self.store.clear();
        timeline
    }
}

impl Recorder for TimelineRecorder {
    fn record(&self, event: &TimelineEvent) {
        self.store.record_task(event);
    }
}

/// An immutable task timeline: the event stream of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// The raw events in arrival order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Groups events by task, reducing each to its `(attempt, phase)`
    /// sequence — the backend-independent shape of the run. Worker ids,
    /// timestamps and cross-task interleaving are dropped: a DES run and
    /// a threaded run of the same seeded `FaultPlan` agree on exactly
    /// this projection.
    ///
    /// Implementation: task ids are dense, so one linear pass buckets
    /// events by `task.index()` into a vector before the sparse tail is
    /// folded into the map — no per-event tree probe, unlike the former
    /// per-event `BTreeMap::entry` walk. The kernels bench reports both
    /// variants side by side (`timeline_seqs_btree_us` vs
    /// `timeline_seqs_linear_us`; roughly 2× faster on the 1M-event
    /// synthetic trace in `BENCH_PR7.json`).
    #[must_use]
    pub fn per_task_sequences(&self) -> BTreeMap<TaskId, Vec<(u32, &'static str)>> {
        let Some(max_ix) = self.events.iter().map(|e| e.task.index()).max() else {
            return BTreeMap::new();
        };
        let mut buckets: Vec<Vec<(u32, &'static str)>> = vec![Vec::new(); max_ix + 1];
        for e in &self.events {
            buckets[e.task.index()].push((e.attempt, e.phase.label()));
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (TaskId::new(u32::try_from(i).expect("dense task ids")), b))
            .collect()
    }

    /// Whether two timelines have identical per-task `(attempt, phase)`
    /// sequences (see [`per_task_sequences`](Self::per_task_sequences)).
    #[must_use]
    pub fn structurally_equal(&self, other: &Timeline) -> bool {
        self.per_task_sequences() == other.per_task_sequences()
    }

    /// Renders the timeline as a JSON array of event objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .events
            .iter()
            .map(|e| {
                let worker = e
                    .worker
                    .map_or_else(|| "null".to_string(), |w| w.index().to_string());
                format!(
                    "{{\"task\":{},\"job\":{},\"attempt\":{},\"worker\":{worker},\"at\":{},\"phase\":\"{}\"}}",
                    e.task.index(),
                    e.job.index(),
                    e.attempt,
                    json_f64(e.at),
                    json_escape(e.phase.label()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }

    /// Renders the timeline as CSV rows `task,job,attempt,worker,at,phase`
    /// (empty worker column for master-side events).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("task,job,attempt,worker,at,phase\n");
        for e in &self.events {
            let worker = e.worker.map_or_else(String::new, |w| w.index().to_string());
            out.push_str(&format!(
                "{},{},{},{worker},{},{}\n",
                e.task.index(),
                e.job.index(),
                e.attempt,
                e.at,
                e.phase.label(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::{JobId, LossCause, TaskPhase, WorkerId};

    fn ev(task: u32, attempt: u32, phase: TaskPhase, worker: Option<u32>) -> TimelineEvent {
        TimelineEvent {
            task: TaskId::new(task),
            job: JobId::new(0),
            attempt,
            worker: worker.map(WorkerId::new),
            at: f64::from(task),
            phase,
        }
    }

    #[test]
    fn sequences_group_by_task_in_stream_order() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(0, 0, TaskPhase::Queued, None));
        rec.record(&ev(1, 0, TaskPhase::Queued, None));
        rec.record(&ev(0, 1, TaskPhase::Dispatched, Some(0)));
        rec.record(&ev(0, 1, TaskPhase::Failed(LossCause::Transient), Some(0)));
        rec.record(&ev(0, 2, TaskPhase::Dispatched, Some(1)));
        rec.record(&ev(0, 2, TaskPhase::Completed, Some(1)));
        let seqs = rec.snapshot().per_task_sequences();
        assert_eq!(
            seqs[&TaskId::new(0)],
            vec![
                (0, "queued"),
                (1, "dispatched"),
                (1, "failed:transient"),
                (2, "dispatched"),
                (2, "completed"),
            ]
        );
        assert_eq!(seqs[&TaskId::new(1)], vec![(0, "queued")]);
    }

    #[test]
    fn structural_equality_ignores_workers_and_times() {
        let a = Timeline {
            events: vec![
                ev(0, 0, TaskPhase::Queued, None),
                ev(0, 1, TaskPhase::Completed, Some(0)),
            ],
        };
        let mut shifted = a.clone();
        for e in &mut shifted.events {
            e.at += 100.0;
            e.worker = Some(WorkerId::new(9));
        }
        assert!(a.structurally_equal(&shifted));
        let mut different = a.clone();
        different.events[1].phase = TaskPhase::Exhausted;
        assert!(!a.structurally_equal(&different));
    }

    #[test]
    fn per_task_sequences_handle_sparse_task_ids() {
        // The dense-bucket pass must cope with gaps in the id space.
        let a = Timeline {
            events: vec![
                ev(7, 0, TaskPhase::Queued, None),
                ev(0, 0, TaskPhase::Queued, None),
                ev(7, 1, TaskPhase::Completed, Some(0)),
            ],
        };
        let seqs = a.per_task_sequences();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[&TaskId::new(7)], vec![(0, "queued"), (1, "completed")]);
        assert!(Timeline { events: vec![] }.per_task_sequences().is_empty());
    }

    #[test]
    fn take_drains_the_recorder() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(0, 0, TaskPhase::Queued, None));
        assert_eq!(rec.take().events().len(), 1);
        assert!(rec.snapshot().events().is_empty());
    }

    #[test]
    fn snapshot_matches_the_store_view() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(0, 0, TaskPhase::Queued, None));
        rec.record(&ev(0, 1, TaskPhase::Completed, Some(1)));
        assert_eq!(rec.snapshot().per_task_sequences(), rec.store().task_sequences());
    }

    #[test]
    fn json_and_csv_exports_carry_every_field() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(3, 1, TaskPhase::Failed(LossCause::Evicted), Some(2)));
        rec.record(&ev(3, 2, TaskPhase::Exhausted, None));
        let tl = rec.snapshot();
        let json = tl.to_json();
        assert!(json.contains("\"phase\":\"failed:evicted\""), "{json}");
        assert!(json.contains("\"worker\":2"), "{json}");
        assert!(json.contains("\"worker\":null"), "{json}");
        let csv = tl.to_csv();
        assert!(csv.contains("3,0,1,2,3,failed:evicted\n"), "{csv}");
        assert!(csv.contains("3,0,2,,3,exhausted\n"), "{csv}");
    }
}
