//! Task timelines: collecting and comparing per-attempt event streams.

use crate::{json_escape, json_f64};
use parking_lot::Mutex;
use sstd_runtime::{Recorder, TaskId, TimelineEvent};
use std::collections::BTreeMap;

/// A [`Recorder`] that collects every [`TimelineEvent`] in arrival order.
///
/// Install it on any [`ExecutionBackend`](sstd_runtime::ExecutionBackend)
/// via `set_recorder`, run the workload, then [`snapshot`](Self::snapshot)
/// the collected [`Timeline`].
///
/// # Examples
///
/// ```
/// use sstd_obs::TimelineRecorder;
/// use sstd_runtime::prelude::*;
/// use std::sync::Arc;
///
/// let rec = Arc::new(TimelineRecorder::new());
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.set_recorder(Some(rec.clone()));
/// for _ in 0..3 {
///     des.submit(TaskSpec::new(JobId::new(0), 50.0));
/// }
/// let _ = des.run_to_completion();
/// let seqs = rec.snapshot().per_task_sequences();
/// assert_eq!(seqs.len(), 3);
/// assert!(seqs.values().all(|s| s.last().unwrap().1 == "completed"));
/// ```
#[derive(Debug)]
pub struct TimelineRecorder {
    events: Mutex<Vec<TimelineEvent>>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TimelineRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self { events: Mutex::new(Vec::new()) }
    }

    /// A point-in-time copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Timeline {
        Timeline { events: self.events.lock().clone() }
    }

    /// Drains the recorded events, leaving the recorder empty.
    #[must_use]
    pub fn take(&self) -> Timeline {
        Timeline { events: std::mem::take(&mut *self.events.lock()) }
    }
}

impl Recorder for TimelineRecorder {
    fn record(&self, event: &TimelineEvent) {
        self.events.lock().push(*event);
    }
}

/// An immutable task timeline: the event stream of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// The raw events in arrival order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Groups events by task, reducing each to its `(attempt, phase)`
    /// sequence — the backend-independent shape of the run. Worker ids,
    /// timestamps and cross-task interleaving are dropped: a DES run and
    /// a threaded run of the same seeded `FaultPlan` agree on exactly
    /// this projection.
    #[must_use]
    pub fn per_task_sequences(&self) -> BTreeMap<TaskId, Vec<(u32, &'static str)>> {
        let mut map: BTreeMap<TaskId, Vec<(u32, &'static str)>> = BTreeMap::new();
        for e in &self.events {
            map.entry(e.task).or_default().push((e.attempt, e.phase.label()));
        }
        map
    }

    /// Whether two timelines have identical per-task `(attempt, phase)`
    /// sequences (see [`per_task_sequences`](Self::per_task_sequences)).
    #[must_use]
    pub fn structurally_equal(&self, other: &Timeline) -> bool {
        self.per_task_sequences() == other.per_task_sequences()
    }

    /// Renders the timeline as a JSON array of event objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .events
            .iter()
            .map(|e| {
                let worker = e
                    .worker
                    .map_or_else(|| "null".to_string(), |w| w.index().to_string());
                format!(
                    "{{\"task\":{},\"job\":{},\"attempt\":{},\"worker\":{worker},\"at\":{},\"phase\":\"{}\"}}",
                    e.task.index(),
                    e.job.index(),
                    e.attempt,
                    json_f64(e.at),
                    json_escape(e.phase.label()),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }

    /// Renders the timeline as CSV rows `task,job,attempt,worker,at,phase`
    /// (empty worker column for master-side events).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("task,job,attempt,worker,at,phase\n");
        for e in &self.events {
            let worker = e.worker.map_or_else(String::new, |w| w.index().to_string());
            out.push_str(&format!(
                "{},{},{},{worker},{},{}\n",
                e.task.index(),
                e.job.index(),
                e.attempt,
                e.at,
                e.phase.label(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::{JobId, LossCause, TaskPhase, WorkerId};

    fn ev(task: u32, attempt: u32, phase: TaskPhase, worker: Option<u32>) -> TimelineEvent {
        TimelineEvent {
            task: TaskId::new(task),
            job: JobId::new(0),
            attempt,
            worker: worker.map(WorkerId::new),
            at: f64::from(task),
            phase,
        }
    }

    #[test]
    fn sequences_group_by_task_in_stream_order() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(0, 0, TaskPhase::Queued, None));
        rec.record(&ev(1, 0, TaskPhase::Queued, None));
        rec.record(&ev(0, 1, TaskPhase::Dispatched, Some(0)));
        rec.record(&ev(0, 1, TaskPhase::Failed(LossCause::Transient), Some(0)));
        rec.record(&ev(0, 2, TaskPhase::Dispatched, Some(1)));
        rec.record(&ev(0, 2, TaskPhase::Completed, Some(1)));
        let seqs = rec.snapshot().per_task_sequences();
        assert_eq!(
            seqs[&TaskId::new(0)],
            vec![
                (0, "queued"),
                (1, "dispatched"),
                (1, "failed:transient"),
                (2, "dispatched"),
                (2, "completed"),
            ]
        );
        assert_eq!(seqs[&TaskId::new(1)], vec![(0, "queued")]);
    }

    #[test]
    fn structural_equality_ignores_workers_and_times() {
        let a = Timeline {
            events: vec![
                ev(0, 0, TaskPhase::Queued, None),
                ev(0, 1, TaskPhase::Completed, Some(0)),
            ],
        };
        let mut shifted = a.clone();
        for e in &mut shifted.events {
            e.at += 100.0;
            e.worker = Some(WorkerId::new(9));
        }
        assert!(a.structurally_equal(&shifted));
        let mut different = a.clone();
        different.events[1].phase = TaskPhase::Exhausted;
        assert!(!a.structurally_equal(&different));
    }

    #[test]
    fn take_drains_the_recorder() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(0, 0, TaskPhase::Queued, None));
        assert_eq!(rec.take().events().len(), 1);
        assert!(rec.snapshot().events().is_empty());
    }

    #[test]
    fn json_and_csv_exports_carry_every_field() {
        let rec = TimelineRecorder::new();
        rec.record(&ev(3, 1, TaskPhase::Failed(LossCause::Evicted), Some(2)));
        rec.record(&ev(3, 2, TaskPhase::Exhausted, None));
        let tl = rec.snapshot();
        let json = tl.to_json();
        assert!(json.contains("\"phase\":\"failed:evicted\""), "{json}");
        assert!(json.contains("\"worker\":2"), "{json}");
        assert!(json.contains("\"worker\":null"), "{json}");
        let csv = tl.to_csv();
        assert!(csv.contains("3,0,1,2,3,failed:evicted\n"), "{csv}");
        assert!(csv.contains("3,0,2,,3,exhausted\n"), "{csv}");
    }
}
