//! The `BENCH_*.json` trajectory exporter.

use crate::{json_escape, json_f64};

/// A named sequence of measurement points, rendered in the repository's
/// `BENCH_*.json` trajectory format:
/// `{"bench":"<name>","points":[{"x":1,"y":2.5},...]}`.
///
/// Each point is an ordered list of `(field, value)` pairs, so curves
/// with different axes (workers → speedup, interval → latency) share one
/// exporter.
///
/// # Examples
///
/// ```
/// use sstd_obs::BenchReport;
///
/// let mut report = BenchReport::new("fig7_speedup");
/// report.push_point(&[("workers", 4.0), ("speedup", 3.4)]);
/// let json = report.to_json();
/// assert_eq!(json, r#"{"bench":"fig7_speedup","points":[{"workers":4,"speedup":3.4}]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    name: String,
    points: Vec<Vec<(String, f64)>>,
}

impl BenchReport {
    /// Creates an empty report for the benchmark `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), points: Vec::new() }
    }

    /// The benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one measurement point from `(field, value)` pairs.
    pub fn push_point(&mut self, fields: &[(&str, f64)]) {
        self.points.push(fields.iter().map(|&(k, v)| (k.to_string(), v)).collect());
    }

    /// Number of points recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the report as one `BENCH_*.json`-compatible object.
    /// Non-finite values render as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|fields| {
                let row = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{{row}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"bench\":\"{}\",\"points\":[{points}]}}", json_escape(&self.name))
    }

    /// Renders the report as CSV with one column per field of the first
    /// point (empty string when a later point misses a field).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let Some(first) = self.points.first() else {
            return String::new();
        };
        let header: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
        let mut out = header.join(",");
        out.push('\n');
        for fields in &self.points {
            let row = header
                .iter()
                .map(|&name| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map_or_else(String::new, |(_, v)| v.to_string())
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_matches_trajectory_shape() {
        let mut r = BenchReport::new("fig6_latency");
        r.push_point(&[("interval", 0.0), ("latency", 1.5)]);
        r.push_point(&[("interval", 1.0), ("latency", f64::NAN)]);
        let json = r.to_json();
        assert!(json.starts_with("{\"bench\":\"fig6_latency\",\"points\":["), "{json}");
        assert!(json.contains("{\"interval\":0,\"latency\":1.5}"), "{json}");
        assert!(json.contains("\"latency\":null"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn empty_report_is_valid_json() {
        let r = BenchReport::new("empty");
        assert_eq!(r.to_json(), "{\"bench\":\"empty\",\"points\":[]}");
        assert!(r.is_empty());
        assert_eq!(r.to_csv(), "");
    }

    #[test]
    fn csv_uses_first_point_as_header() {
        let mut r = BenchReport::new("x");
        r.push_point(&[("a", 1.0), ("b", 2.0)]);
        r.push_point(&[("a", 3.0), ("b", 4.0)]);
        assert_eq!(r.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn names_are_json_escaped() {
        let r = BenchReport::new("we\"ird\\name");
        assert!(r.to_json().contains("we\\\"ird\\\\name"));
    }
}
