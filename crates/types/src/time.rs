//! Trace time: timestamps, intervals and the timeline that maps between them.
//!
//! The SSTD evaluation discretizes each trace into equal time intervals
//! (§V-B: "We divide each data trace into 100 equal time intervals") and all
//! dynamic truth-discovery schemes emit one truth estimate per claim per
//! interval. [`Timeline`] owns that discretization.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in trace time, in seconds since the start of the trace.
///
/// Traces use their own epoch (0 = first report) so synthetic and replayed
/// traces are directly comparable.
///
/// # Examples
///
/// ```
/// use sstd_types::Timestamp;
///
/// let t = Timestamp::from_secs(90);
/// assert_eq!(t.as_secs(), 90);
/// assert_eq!(t + Timestamp::from_secs(30), Timestamp::from_secs(120));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace epoch (t = 0).
    pub const ZERO: Self = Self(0);

    /// Creates a timestamp from whole seconds since the trace epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs)
    }

    /// Returns the number of whole seconds since the trace epoch.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in seconds.
    #[must_use]
    pub const fn secs_since(self, earlier: Self) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::ops::Add for Timestamp {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

/// One of the equal time intervals a trace is divided into.
///
/// An interval knows its index and its half-open time range
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    index: usize,
    start: Timestamp,
    end: Timestamp,
}

impl Interval {
    /// Creates an interval covering `[start, end)` with position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    #[must_use]
    pub fn new(index: usize, start: Timestamp, end: Timestamp) -> Self {
        assert!(end > start, "interval must have positive length");
        Self { index, start, end }
    }

    /// Position of this interval in the timeline (0-based).
    #[must_use]
    pub const fn index(self) -> usize {
        self.index
    }

    /// Inclusive start of the interval.
    #[must_use]
    pub const fn start(self) -> Timestamp {
        self.start
    }

    /// Exclusive end of the interval.
    #[must_use]
    pub const fn end(self) -> Timestamp {
        self.end
    }

    /// Whether `t` falls inside `[start, end)`.
    #[must_use]
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the interval in seconds.
    #[must_use]
    pub const fn len_secs(self) -> u64 {
        self.end.as_secs() - self.start.as_secs()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}[{}, {})", self.index, self.start, self.end)
    }
}

/// The discretization of a trace horizon into equal intervals.
///
/// # Examples
///
/// ```
/// use sstd_types::{Timeline, Timestamp};
///
/// let tl = Timeline::new(Timestamp::from_secs(100), 10);
/// assert_eq!(tl.num_intervals(), 10);
/// assert_eq!(tl.interval_of(Timestamp::from_secs(35)), 3);
/// // the horizon endpoint folds into the last interval
/// assert_eq!(tl.interval_of(Timestamp::from_secs(100)), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    horizon: Timestamp,
    num_intervals: usize,
}

impl Timeline {
    /// Creates a timeline dividing `[0, horizon)` into `num_intervals`
    /// equal intervals.
    ///
    /// # Panics
    ///
    /// Panics if `num_intervals` is zero, `horizon` is zero, or there are
    /// more intervals than whole seconds in the horizon (timestamps have
    /// second resolution, so sub-second intervals cannot tile).
    #[must_use]
    pub fn new(horizon: Timestamp, num_intervals: usize) -> Self {
        assert!(num_intervals > 0, "timeline needs at least one interval");
        assert!(horizon > Timestamp::ZERO, "horizon must be positive");
        assert!(
            num_intervals as u64 <= horizon.as_secs(),
            "cannot split {horizon} into {num_intervals} whole-second intervals"
        );
        Self { horizon, num_intervals }
    }

    /// Total time range covered.
    #[must_use]
    pub const fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Number of intervals in the timeline.
    #[must_use]
    pub const fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Index of the interval containing `t`.
    ///
    /// Timestamps at or beyond the horizon clamp to the last interval, so
    /// every report in a trace maps somewhere.
    #[must_use]
    pub fn interval_of(&self, t: Timestamp) -> usize {
        let idx = (t.as_secs() as u128 * self.num_intervals as u128
            / self.horizon.as_secs() as u128) as usize;
        idx.min(self.num_intervals - 1)
    }

    /// The `index`-th interval.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_intervals()`.
    #[must_use]
    pub fn interval(&self, index: usize) -> Interval {
        assert!(index < self.num_intervals, "interval index out of range");
        // Bounds use ceiling division so that `interval_of` (floor mapping)
        // and `interval(i).contains` agree for every integer timestamp.
        let h = self.horizon.as_secs() as u128;
        let n = self.num_intervals as u128;
        let start = ((h * index as u128).div_ceil(n)) as u64;
        let end = ((h * (index as u128 + 1)).div_ceil(n)) as u64;
        Interval::new(index, Timestamp::from_secs(start), Timestamp::from_secs(end))
    }

    /// Iterates over all intervals in order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        (0..self.num_intervals).map(move |i| self.interval(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(3);
        assert_eq!((a + b).as_secs(), 13);
        assert_eq!(a.secs_since(b), 7);
        assert_eq!(b.secs_since(a), 0, "saturating");
    }

    #[test]
    fn interval_contains_half_open() {
        let iv = Interval::new(0, Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(iv.contains(Timestamp::from_secs(10)));
        assert!(iv.contains(Timestamp::from_secs(19)));
        assert!(!iv.contains(Timestamp::from_secs(20)));
        assert_eq!(iv.len_secs(), 10);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn degenerate_interval_panics() {
        let _ = Interval::new(0, Timestamp::from_secs(5), Timestamp::from_secs(5));
    }

    #[test]
    fn timeline_partitions_horizon() {
        let tl = Timeline::new(Timestamp::from_secs(100), 7);
        // intervals tile [0, 100) without gaps or overlaps
        let mut expected_start = 0;
        for iv in tl.iter() {
            assert_eq!(iv.start().as_secs(), expected_start);
            expected_start = iv.end().as_secs();
        }
        assert_eq!(expected_start, 100);
    }

    #[test]
    fn interval_of_is_consistent_with_interval_bounds() {
        let tl = Timeline::new(Timestamp::from_secs(97), 10);
        for s in 0..97 {
            let t = Timestamp::from_secs(s);
            let idx = tl.interval_of(t);
            assert!(tl.interval(idx).contains(t), "t={s} idx={idx}");
        }
    }

    #[test]
    fn interval_of_clamps_to_last() {
        let tl = Timeline::new(Timestamp::from_secs(50), 5);
        assert_eq!(tl.interval_of(Timestamp::from_secs(50)), 4);
        assert_eq!(tl.interval_of(Timestamp::from_secs(5000)), 4);
    }

    #[test]
    fn uneven_division_still_tiles() {
        let tl = Timeline::new(Timestamp::from_secs(10), 3);
        let lens: Vec<u64> = tl.iter().map(Interval::len_secs).collect();
        assert_eq!(lens.iter().sum::<u64>(), 10);
        assert!(lens.iter().all(|&l| l >= 3));
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn empty_timeline_panics() {
        let _ = Timeline::new(Timestamp::from_secs(10), 0);
    }

    #[test]
    #[should_panic(expected = "whole-second intervals")]
    fn subsecond_intervals_rejected() {
        let _ = Timeline::new(Timestamp::from_secs(5), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `interval_of` and `interval(i).contains` agree for every
        /// timestamp inside the horizon, for arbitrary discretizations.
        #[test]
        fn interval_mapping_is_consistent(
            horizon in 64u64..5_000,
            n in 1usize..64,
            t in 0u64..5_000,
        ) {
            let tl = Timeline::new(Timestamp::from_secs(horizon), n);
            let ts = Timestamp::from_secs(t.min(horizon.saturating_sub(1)));
            let idx = tl.interval_of(ts);
            prop_assert!(idx < n);
            prop_assert!(tl.interval(idx).contains(ts),
                "t={ts} idx={idx} iv={}", tl.interval(idx));
        }

        /// Intervals tile the horizon exactly: no gaps, no overlaps.
        #[test]
        fn intervals_tile_the_horizon(horizon in 128u64..10_000, n in 1usize..128) {
            let tl = Timeline::new(Timestamp::from_secs(horizon), n);
            let mut expected = 0u64;
            for iv in tl.iter() {
                prop_assert_eq!(iv.start().as_secs(), expected);
                expected = iv.end().as_secs();
            }
            prop_assert!(expected >= horizon);
        }
    }
}
