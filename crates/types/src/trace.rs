//! A full social-sensing trace: reports, populations, timeline and ground
//! truth — the input every experiment consumes.

use crate::{ClaimId, GroundTruth, Report, SourceId, Timeline, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A complete social-sensing data trace.
///
/// A `Trace` bundles the time-ordered scored [`Report`]s, the number of
/// sources and claims, the evaluation [`Timeline`], and the manually (here:
/// generatively) labeled [`GroundTruth`] — everything Table II of the paper
/// summarizes per trace.
///
/// # Examples
///
/// ```
/// use sstd_types::*;
///
/// let timeline = Timeline::new(Timestamp::from_secs(100), 10);
/// let mut gt = GroundTruth::new(10);
/// gt.insert(ClaimId::new(0), vec![TruthLabel::True; 10]);
/// let reports = vec![Report::plain(
///     SourceId::new(0), ClaimId::new(0), Timestamp::from_secs(5), Attitude::Agree,
/// )];
/// let trace = Trace::new("demo", reports, 1, 1, timeline, gt);
/// assert_eq!(trace.stats().num_reports, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    reports: Vec<Report>,
    num_sources: usize,
    num_claims: usize,
    timeline: Timeline,
    ground_truth: GroundTruth,
}

impl Trace {
    /// Assembles a trace, sorting reports by timestamp.
    ///
    /// # Panics
    ///
    /// Panics if any report references a source `>= num_sources` or a claim
    /// `>= num_claims`, or if the ground truth covers a different number of
    /// intervals than the timeline.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        mut reports: Vec<Report>,
        num_sources: usize,
        num_claims: usize,
        timeline: Timeline,
        ground_truth: GroundTruth,
    ) -> Self {
        assert_eq!(
            timeline.num_intervals(),
            ground_truth.num_intervals(),
            "ground truth and timeline must agree on interval count"
        );
        for r in &reports {
            assert!(r.source().index() < num_sources, "report references unknown source");
            assert!(r.claim().index() < num_claims, "report references unknown claim");
        }
        reports.sort_by_key(Report::time);
        Self { name: name.into(), reports, num_sources, num_claims, timeline, ground_truth }
    }

    /// Human-readable trace name (e.g. `"boston-bombing"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All reports in timestamp order.
    #[must_use]
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Number of distinct sources in the population.
    #[must_use]
    pub const fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of distinct claims.
    #[must_use]
    pub const fn num_claims(&self) -> usize {
        self.num_claims
    }

    /// The evaluation timeline.
    #[must_use]
    pub const fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The labeled ground truth.
    #[must_use]
    pub const fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Reports whose timestamps fall in timeline interval `interval`.
    ///
    /// Because reports are time-sorted this is a contiguous slice.
    #[must_use]
    pub fn reports_in_interval(&self, interval: usize) -> &[Report] {
        let iv = self.timeline.interval(interval);
        let start = self.reports.partition_point(|r| r.time() < iv.start());
        let end = if interval + 1 == self.timeline.num_intervals() {
            self.reports.len()
        } else {
            self.reports.partition_point(|r| r.time() < iv.end())
        };
        &self.reports[start..end]
    }

    /// Reports about one claim, in time order.
    #[must_use]
    pub fn reports_for_claim(&self, claim: ClaimId) -> Vec<Report> {
        self.reports.iter().filter(|r| r.claim() == claim).copied().collect()
    }

    /// Summary statistics (the paper's Table II row for this trace).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let active_sources: BTreeSet<SourceId> = self.reports.iter().map(Report::source).collect();
        TraceStats {
            name: self.name.clone(),
            num_reports: self.reports.len(),
            num_sources: self.num_sources,
            active_sources: active_sources.len(),
            num_claims: self.num_claims,
            horizon: self.timeline.horizon(),
            num_intervals: self.timeline.num_intervals(),
            truth_transitions: self.ground_truth.num_transitions(),
        }
    }
}

/// Summary statistics of a trace (cf. paper Table II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Total number of reports (`# of Reports` in Table II).
    pub num_reports: usize,
    /// Size of the source population (`# of Sources`).
    pub num_sources: usize,
    /// Sources that actually reported at least once.
    pub active_sources: usize,
    /// Number of distinct claims.
    pub num_claims: usize,
    /// Trace duration.
    pub horizon: Timestamp,
    /// Number of evaluation intervals.
    pub num_intervals: usize,
    /// Total ground-truth label changes across claims.
    pub truth_transitions: usize,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reports, {} sources ({} active), {} claims, {} intervals over {}, {} truth transitions",
            self.name,
            self.num_reports,
            self.num_sources,
            self.active_sources,
            self.num_claims,
            self.num_intervals,
            self.horizon,
            self.truth_transitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attitude, TruthLabel};

    fn mk_trace() -> Trace {
        let timeline = Timeline::new(Timestamp::from_secs(100), 4);
        let mut gt = GroundTruth::new(4);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True; 4]);
        gt.insert(
            ClaimId::new(1),
            vec![TruthLabel::False, TruthLabel::True, TruthLabel::True, TruthLabel::False],
        );
        let reports = vec![
            Report::plain(
                SourceId::new(0),
                ClaimId::new(0),
                Timestamp::from_secs(80),
                Attitude::Agree,
            ),
            Report::plain(
                SourceId::new(1),
                ClaimId::new(1),
                Timestamp::from_secs(10),
                Attitude::Disagree,
            ),
            Report::plain(
                SourceId::new(0),
                ClaimId::new(1),
                Timestamp::from_secs(30),
                Attitude::Agree,
            ),
        ];
        Trace::new("test", reports, 3, 2, timeline, gt)
    }

    #[test]
    fn reports_are_sorted_by_time() {
        let t = mk_trace();
        let times: Vec<u64> = t.reports().iter().map(|r| r.time().as_secs()).collect();
        assert_eq!(times, vec![10, 30, 80]);
    }

    #[test]
    fn interval_slicing_partitions_reports() {
        let t = mk_trace();
        let total: usize = (0..4).map(|i| t.reports_in_interval(i).len()).sum();
        assert_eq!(total, t.reports().len());
        assert_eq!(t.reports_in_interval(0).len(), 1); // t=10
        assert_eq!(t.reports_in_interval(1).len(), 1); // t=30
        assert_eq!(t.reports_in_interval(3).len(), 1); // t=80
    }

    #[test]
    fn last_interval_includes_horizon_stragglers() {
        let timeline = Timeline::new(Timestamp::from_secs(10), 2);
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True; 2]);
        let reports = vec![Report::plain(
            SourceId::new(0),
            ClaimId::new(0),
            Timestamp::from_secs(10), // exactly at the horizon
            Attitude::Agree,
        )];
        let t = Trace::new("edge", reports, 1, 1, timeline, gt);
        assert_eq!(t.reports_in_interval(1).len(), 1);
    }

    #[test]
    fn per_claim_filtering() {
        let t = mk_trace();
        assert_eq!(t.reports_for_claim(ClaimId::new(1)).len(), 2);
        assert_eq!(t.reports_for_claim(ClaimId::new(0)).len(), 1);
    }

    #[test]
    fn stats_match_contents() {
        let s = mk_trace().stats();
        assert_eq!(s.num_reports, 3);
        assert_eq!(s.num_sources, 3);
        assert_eq!(s.active_sources, 2);
        assert_eq!(s.num_claims, 2);
        assert_eq!(s.truth_transitions, 2);
        assert!(s.to_string().contains("3 reports"));
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn report_with_unknown_source_panics() {
        let timeline = Timeline::new(Timestamp::from_secs(10), 1);
        let mut gt = GroundTruth::new(1);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True]);
        let reports = vec![Report::plain(
            SourceId::new(5),
            ClaimId::new(0),
            Timestamp::ZERO,
            Attitude::Agree,
        )];
        let _ = Trace::new("bad", reports, 1, 1, timeline, gt);
    }

    #[test]
    fn serde_roundtrip() {
        let t = mk_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
