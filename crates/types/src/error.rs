//! Error types for domain-value validation.

use std::error::Error;
use std::fmt;

/// Error returned when a score value lies outside its documented range.
///
/// The SSTD paper constrains the uncertainty score `κ` and the independence
/// score `η` to `[0, 1]` (Definitions 2–3). Constructors of the score
/// newtypes enforce that invariant and return this error on violation.
///
/// # Examples
///
/// ```
/// use sstd_types::Uncertainty;
///
/// let err = Uncertainty::new(1.5).unwrap_err();
/// assert!(err.to_string().contains("uncertainty"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreError {
    kind: &'static str,
    value: f64,
}

impl ScoreError {
    pub(crate) fn new(kind: &'static str, value: f64) -> Self {
        Self { kind, value }
    }

    /// The offending value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The score family that rejected the value (e.g. `"uncertainty"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} score {} is outside the valid range [0, 1] or not finite",
            self.kind, self.value
        )
    }
}

impl Error for ScoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_value() {
        let e = ScoreError::new("independence", 2.0);
        let msg = e.to_string();
        assert!(msg.contains("independence"));
        assert!(msg.contains('2'));
    }

    #[test]
    fn accessors_expose_fields() {
        let e = ScoreError::new("uncertainty", -0.1);
        assert_eq!(e.kind(), "uncertainty");
        assert_eq!(e.value(), -0.1);
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ScoreError>();
    }
}
