//! The unified error surface of the public SSTD API.
//!
//! Three concrete error families live here, plus [`SstdError`], the enum
//! every fallible public entry point returns:
//!
//! - [`ScoreError`] — a domain value (uncertainty/independence score)
//!   outside its documented range;
//! - [`ConfigError`] — a builder rejected a configuration field in
//!   `build()`;
//! - [`BackendError`] — an execution backend refused an operation (e.g. a
//!   task whose resource requirements fit no cluster node).
//!
//! Layer-specific errors that cannot live in this base crate (like
//! `sstd_core::DistributedError`) are carried through
//! [`SstdError::Distributed`] as a boxed source and can be recovered with
//! [`SstdError::distributed_as`].

use std::error::Error;
use std::fmt;

/// Error returned when a score value lies outside its documented range.
///
/// The SSTD paper constrains the uncertainty score `κ` and the independence
/// score `η` to `[0, 1]` (Definitions 2–3). Constructors of the score
/// newtypes enforce that invariant and return this error on violation.
///
/// # Examples
///
/// ```
/// use sstd_types::Uncertainty;
///
/// let err = Uncertainty::new(1.5).unwrap_err();
/// assert!(err.to_string().contains("uncertainty"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreError {
    kind: &'static str,
    value: f64,
}

impl ScoreError {
    pub(crate) fn new(kind: &'static str, value: f64) -> Self {
        Self { kind, value }
    }

    /// The offending value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The score family that rejected the value (e.g. `"uncertainty"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} score {} is outside the valid range [0, 1] or not finite",
            self.kind, self.value
        )
    }
}

impl Error for ScoreError {}

/// An invalid configuration value, reported by a builder's `build()` (or
/// by an entry point validating its inputs).
///
/// # Examples
///
/// ```
/// use sstd_types::error::ConfigError;
///
/// let err = ConfigError::new("window", "must be at least 1");
/// assert_eq!(err.field(), "window");
/// assert!(err.to_string().contains("window"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    message: String,
}

impl ConfigError {
    /// Creates an error for `field` with a human-readable explanation.
    #[must_use]
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self { field, message: message.into() }
    }

    /// The rejected configuration field.
    #[must_use]
    pub const fn field(&self) -> &'static str {
        self.field
    }

    /// Why the value was rejected.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.message)
    }
}

impl Error for ConfigError {}

/// An execution backend refused or failed an operation — a task whose
/// requirements fit no node, an invalid resize, a submission the backend
/// cannot honor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    op: &'static str,
    detail: String,
}

impl BackendError {
    /// Creates an error for the backend operation `op` (e.g. `"submit"`).
    #[must_use]
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self { op, detail: detail.into() }
    }

    /// The refused operation.
    #[must_use]
    pub const fn op(&self) -> &'static str {
        self.op
    }

    /// What went wrong.
    #[must_use]
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend {} failed: {}", self.op, self.detail)
    }
}

impl Error for BackendError {}

/// The unified error of the public SSTD surface: every fallible entry
/// point (`run_distributed`, the DTM `run` family, `JobBackend::submit_job`)
/// returns this instead of panicking on misuse.
///
/// # Examples
///
/// ```
/// use sstd_types::error::{ConfigError, SstdError};
///
/// let err: SstdError = ConfigError::new("max_workers", "must be ≥ initial_workers").into();
/// assert!(matches!(err, SstdError::Config(_)));
/// assert!(err.to_string().contains("max_workers"));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum SstdError {
    /// An invalid configuration or input.
    Config(ConfigError),
    /// An execution backend refused or failed an operation.
    Backend(BackendError),
    /// A distributed run failed; the boxed source is the layer-specific
    /// error (e.g. `sstd_core::DistributedError`), recoverable via
    /// [`distributed_as`](Self::distributed_as).
    Distributed(Box<dyn Error + Send + Sync + 'static>),
    /// Crash recovery failed — a corrupt or mismatched snapshot, a
    /// journal that would not decode, an exhausted crash budget. The
    /// boxed source is the layer-specific error (e.g.
    /// `sstd_core::RecoveryError`), recoverable via
    /// [`recovery_as`](Self::recovery_as).
    Recovery(Box<dyn Error + Send + Sync + 'static>),
    /// Live ingest refused a report — most commonly backpressure from a
    /// saturated shard queue. The boxed source is the layer-specific
    /// error (e.g. `sstd_serve::IngestError`), recoverable via
    /// [`ingest_as`](Self::ingest_as).
    Ingest(Box<dyn Error + Send + Sync + 'static>),
}

impl SstdError {
    /// Wraps a layer-specific distributed-run error.
    #[must_use]
    pub fn distributed(err: impl Error + Send + Sync + 'static) -> Self {
        Self::Distributed(Box::new(err))
    }

    /// Wraps a layer-specific crash-recovery error.
    #[must_use]
    pub fn recovery(err: impl Error + Send + Sync + 'static) -> Self {
        Self::Recovery(Box::new(err))
    }

    /// Wraps a layer-specific live-ingest error.
    #[must_use]
    pub fn ingest(err: impl Error + Send + Sync + 'static) -> Self {
        Self::Ingest(Box::new(err))
    }

    /// The configuration error, if that is what this is.
    #[must_use]
    pub const fn as_config(&self) -> Option<&ConfigError> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }

    /// The backend error, if that is what this is.
    #[must_use]
    pub const fn as_backend(&self) -> Option<&BackendError> {
        match self {
            Self::Backend(e) => Some(e),
            _ => None,
        }
    }

    /// Downcasts the boxed distributed-run source to a concrete type.
    #[must_use]
    pub fn distributed_as<E: Error + 'static>(&self) -> Option<&E> {
        match self {
            Self::Distributed(boxed) => boxed.downcast_ref::<E>(),
            _ => None,
        }
    }

    /// Downcasts the boxed crash-recovery source to a concrete type.
    #[must_use]
    pub fn recovery_as<E: Error + 'static>(&self) -> Option<&E> {
        match self {
            Self::Recovery(boxed) => boxed.downcast_ref::<E>(),
            _ => None,
        }
    }

    /// Downcasts the boxed live-ingest source to a concrete type.
    #[must_use]
    pub fn ingest_as<E: Error + 'static>(&self) -> Option<&E> {
        match self {
            Self::Ingest(boxed) => boxed.downcast_ref::<E>(),
            _ => None,
        }
    }
}

impl fmt::Display for SstdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => e.fmt(f),
            Self::Backend(e) => e.fmt(f),
            Self::Distributed(e) => write!(f, "distributed run failed: {e}"),
            Self::Recovery(e) => write!(f, "recovery failed: {e}"),
            Self::Ingest(e) => write!(f, "ingest failed: {e}"),
        }
    }
}

impl Error for SstdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Backend(e) => Some(e),
            Self::Distributed(e) => Some(e.as_ref()),
            Self::Recovery(e) => Some(e.as_ref()),
            Self::Ingest(e) => Some(e.as_ref()),
        }
    }
}

impl From<ConfigError> for SstdError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<BackendError> for SstdError {
    fn from(e: BackendError) -> Self {
        Self::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_value() {
        let e = ScoreError::new("independence", 2.0);
        let msg = e.to_string();
        assert!(msg.contains("independence"));
        assert!(msg.contains('2'));
    }

    #[test]
    fn accessors_expose_fields() {
        let e = ScoreError::new("uncertainty", -0.1);
        assert_eq!(e.kind(), "uncertainty");
        assert_eq!(e.value(), -0.1);
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ScoreError>();
        assert_err::<ConfigError>();
        assert_err::<BackendError>();
        assert_err::<SstdError>();
    }

    #[test]
    fn sstd_error_wraps_and_recovers_each_family() {
        let cfg: SstdError = ConfigError::new("window", "must be ≥ 1").into();
        assert_eq!(cfg.as_config().map(ConfigError::field), Some("window"));
        assert!(cfg.as_backend().is_none());

        let be: SstdError = BackendError::new("submit", "no node fits").into();
        assert_eq!(be.as_backend().map(BackendError::op), Some("submit"));

        let dist = SstdError::distributed(ScoreError::new("uncertainty", 2.0));
        let inner = dist.distributed_as::<ScoreError>().expect("downcast");
        assert_eq!(inner.kind(), "uncertainty");
        assert!(dist.distributed_as::<ConfigError>().is_none());

        let rec = SstdError::recovery(ScoreError::new("independence", -1.0));
        let inner = rec.recovery_as::<ScoreError>().expect("downcast");
        assert_eq!(inner.kind(), "independence");
        assert!(rec.recovery_as::<ConfigError>().is_none());
        assert!(rec.distributed_as::<ScoreError>().is_none());
        assert!(rec.to_string().contains("recovery failed"));

        let ing = SstdError::ingest(ScoreError::new("uncertainty", 9.0));
        let inner = ing.ingest_as::<ScoreError>().expect("downcast");
        assert_eq!(inner.value(), 9.0);
        assert!(ing.ingest_as::<ConfigError>().is_none());
        assert!(ing.recovery_as::<ScoreError>().is_none());
        assert!(ing.to_string().contains("ingest failed"));
    }

    #[test]
    fn sstd_error_display_and_source_delegate() {
        use std::error::Error as _;
        let err: SstdError = BackendError::new("resize", "zero workers").into();
        assert!(err.to_string().contains("resize"));
        assert!(err.source().is_some());
    }
}
