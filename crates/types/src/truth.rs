//! Truth labels and per-claim ground-truth timelines.

use crate::{Attitude, ClaimId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The binary truth value of a claim at one time instant (`x_{u,t}` in §II).
///
/// # Examples
///
/// ```
/// use sstd_types::TruthLabel;
///
/// assert_eq!(TruthLabel::from_bool(true), TruthLabel::True);
/// assert_eq!(TruthLabel::True.flipped(), TruthLabel::False);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthLabel {
    /// The claim is true at this instant.
    True,
    /// The claim is false at this instant.
    False,
}

impl TruthLabel {
    /// Converts from a plain boolean.
    #[must_use]
    pub const fn from_bool(b: bool) -> Self {
        if b {
            TruthLabel::True
        } else {
            TruthLabel::False
        }
    }

    /// Converts to a plain boolean.
    #[must_use]
    pub const fn as_bool(self) -> bool {
        matches!(self, TruthLabel::True)
    }

    /// The opposite label.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            TruthLabel::True => TruthLabel::False,
            TruthLabel::False => TruthLabel::True,
        }
    }

    /// The attitude a perfectly reliable source would express about a claim
    /// with this truth value.
    #[must_use]
    pub const fn honest_attitude(self) -> Attitude {
        match self {
            TruthLabel::True => Attitude::Agree,
            TruthLabel::False => Attitude::Disagree,
        }
    }

    /// Hidden-state index used by the HMM (0 = true, 1 = false).
    #[must_use]
    pub const fn state_index(self) -> usize {
        match self {
            TruthLabel::True => 0,
            TruthLabel::False => 1,
        }
    }

    /// Inverse of [`state_index`](Self::state_index).
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn from_state_index(index: usize) -> Self {
        match index {
            0 => TruthLabel::True,
            1 => TruthLabel::False,
            _ => panic!("binary truth has states 0 and 1, got {index}"),
        }
    }
}

impl fmt::Display for TruthLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TruthLabel::True => "true",
            TruthLabel::False => "false",
        })
    }
}

/// Per-interval ground-truth labels for every claim in a trace.
///
/// All label vectors have the same length (the number of timeline
/// intervals); the container enforces that on insertion.
///
/// # Examples
///
/// ```
/// use sstd_types::{ClaimId, GroundTruth, TruthLabel};
///
/// let mut gt = GroundTruth::new(3);
/// gt.insert(ClaimId::new(0), vec![TruthLabel::True, TruthLabel::True, TruthLabel::False]);
/// assert_eq!(gt.label(ClaimId::new(0), 2), Some(TruthLabel::False));
/// assert_eq!(gt.num_claims(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    num_intervals: usize,
    labels: BTreeMap<ClaimId, Vec<TruthLabel>>,
}

impl GroundTruth {
    /// Creates an empty ground-truth table for `num_intervals` intervals.
    ///
    /// # Panics
    ///
    /// Panics if `num_intervals` is zero.
    #[must_use]
    pub fn new(num_intervals: usize) -> Self {
        assert!(num_intervals > 0, "ground truth needs at least one interval");
        Self { num_intervals, labels: BTreeMap::new() }
    }

    /// Number of intervals each label vector covers.
    #[must_use]
    pub const fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Number of claims with recorded ground truth.
    #[must_use]
    pub fn num_claims(&self) -> usize {
        self.labels.len()
    }

    /// Records the full label timeline for a claim, replacing any previous
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != num_intervals()`.
    pub fn insert(&mut self, claim: ClaimId, labels: Vec<TruthLabel>) {
        assert_eq!(labels.len(), self.num_intervals, "label vector must cover every interval");
        self.labels.insert(claim, labels);
    }

    /// The label of `claim` in interval `interval`, if recorded.
    #[must_use]
    pub fn label(&self, claim: ClaimId, interval: usize) -> Option<TruthLabel> {
        self.labels.get(&claim).and_then(|v| v.get(interval)).copied()
    }

    /// The full label timeline of `claim`, if recorded.
    #[must_use]
    pub fn timeline(&self, claim: ClaimId) -> Option<&[TruthLabel]> {
        self.labels.get(&claim).map(Vec::as_slice)
    }

    /// Iterates over `(claim, labels)` pairs in claim order.
    pub fn iter(&self) -> impl Iterator<Item = (ClaimId, &[TruthLabel])> {
        self.labels.iter().map(|(c, v)| (*c, v.as_slice()))
    }

    /// Claims with recorded ground truth, in id order.
    pub fn claims(&self) -> impl Iterator<Item = ClaimId> + '_ {
        self.labels.keys().copied()
    }

    /// Number of truth transitions (label changes between consecutive
    /// intervals) across all claims — a measure of how dynamic the trace is.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.labels.values().map(|v| v.windows(2).filter(|w| w[0] != w[1]).count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_bool_roundtrip() {
        for b in [true, false] {
            assert_eq!(TruthLabel::from_bool(b).as_bool(), b);
        }
    }

    #[test]
    fn flip_is_involutive() {
        assert_eq!(TruthLabel::True.flipped().flipped(), TruthLabel::True);
        assert_eq!(TruthLabel::False.flipped(), TruthLabel::True);
    }

    #[test]
    fn state_index_roundtrip() {
        for l in [TruthLabel::True, TruthLabel::False] {
            assert_eq!(TruthLabel::from_state_index(l.state_index()), l);
        }
    }

    #[test]
    #[should_panic(expected = "states 0 and 1")]
    fn bad_state_index_panics() {
        let _ = TruthLabel::from_state_index(2);
    }

    #[test]
    fn honest_attitude_matches_label() {
        assert_eq!(TruthLabel::True.honest_attitude(), Attitude::Agree);
        assert_eq!(TruthLabel::False.honest_attitude(), Attitude::Disagree);
    }

    #[test]
    fn ground_truth_insert_and_query() {
        let mut gt = GroundTruth::new(2);
        gt.insert(ClaimId::new(1), vec![TruthLabel::False, TruthLabel::True]);
        assert_eq!(gt.label(ClaimId::new(1), 0), Some(TruthLabel::False));
        assert_eq!(gt.label(ClaimId::new(1), 1), Some(TruthLabel::True));
        assert_eq!(gt.label(ClaimId::new(1), 2), None);
        assert_eq!(gt.label(ClaimId::new(9), 0), None);
        assert_eq!(gt.timeline(ClaimId::new(1)).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "every interval")]
    fn wrong_length_panics() {
        let mut gt = GroundTruth::new(3);
        gt.insert(ClaimId::new(0), vec![TruthLabel::True]);
    }

    #[test]
    fn transition_count() {
        let mut gt = GroundTruth::new(4);
        gt.insert(
            ClaimId::new(0),
            vec![TruthLabel::True, TruthLabel::False, TruthLabel::False, TruthLabel::True],
        );
        gt.insert(ClaimId::new(1), vec![TruthLabel::True; 4]);
        assert_eq!(gt.num_transitions(), 2);
    }

    #[test]
    fn display_labels() {
        assert_eq!(TruthLabel::True.to_string(), "true");
        assert_eq!(TruthLabel::False.to_string(), "false");
    }
}
