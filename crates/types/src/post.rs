//! Raw, unscored social-media posts — the input of the preprocessing
//! pipeline (`sstd-text`), which turns them into scored [`Report`]s.
//!
//! [`Report`]: crate::Report

use crate::{SourceId, Timestamp};
use serde::{Deserialize, Serialize};

/// A tweet-like post before claim extraction and scoring.
///
/// This mirrors what the paper's data crawler emits: author, timestamp, free
/// text, and — when the post is a retweet — the index of the original post.
///
/// # Examples
///
/// ```
/// use sstd_types::{RawPost, SourceId, Timestamp};
///
/// let post = RawPost::new(
///     SourceId::new(1),
///     Timestamp::from_secs(30),
///     "TONS of police near the engineering building, possible shooting",
/// );
/// assert!(post.retweet_of().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawPost {
    source: SourceId,
    time: Timestamp,
    text: String,
    retweet_of: Option<u64>,
}

impl RawPost {
    /// Creates an original (non-retweet) post.
    #[must_use]
    pub fn new(source: SourceId, time: Timestamp, text: impl Into<String>) -> Self {
        Self { source, time, text: text.into(), retweet_of: None }
    }

    /// Creates a retweet of the post with stream index `original`.
    #[must_use]
    pub fn retweet(
        source: SourceId,
        time: Timestamp,
        text: impl Into<String>,
        original: u64,
    ) -> Self {
        Self { source, time, text: text.into(), retweet_of: Some(original) }
    }

    /// The author of the post.
    #[must_use]
    pub const fn source(&self) -> SourceId {
        self.source
    }

    /// When the post was published (trace time).
    #[must_use]
    pub const fn time(&self) -> Timestamp {
        self.time
    }

    /// The free text of the post.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Stream index of the original post if this is a retweet.
    #[must_use]
    pub const fn retweet_of(&self) -> Option<u64> {
        self.retweet_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_post_has_no_parent() {
        let p = RawPost::new(SourceId::new(0), Timestamp::ZERO, "hello");
        assert_eq!(p.text(), "hello");
        assert_eq!(p.retweet_of(), None);
    }

    #[test]
    fn retweet_records_parent_index() {
        let p = RawPost::retweet(SourceId::new(2), Timestamp::from_secs(5), "RT hello", 17);
        assert_eq!(p.retweet_of(), Some(17));
        assert_eq!(p.source(), SourceId::new(2));
        assert_eq!(p.time().as_secs(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let p = RawPost::retweet(SourceId::new(9), Timestamp::from_secs(1), "x", 3);
        let json = serde_json::to_string(&p).unwrap();
        let back: RawPost = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
