//! Report scores: attitude, uncertainty, independence and their product,
//! the contribution score (paper Eq. 1).

use crate::error::ScoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The stance a report takes towards its claim (paper Definition 1).
///
/// The paper encodes attitudes as `1` (believes the claim is true), `-1`
/// (believes it is false) and `0` (no stance / silent).
///
/// # Examples
///
/// ```
/// use sstd_types::Attitude;
///
/// assert_eq!(Attitude::Agree.score(), 1.0);
/// assert_eq!(Attitude::Disagree.score(), -1.0);
/// assert_eq!(Attitude::Silent.score(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attitude {
    /// The source asserts the claim is true (`ρ = 1`).
    Agree,
    /// The source asserts the claim is false (`ρ = -1`).
    Disagree,
    /// The source makes no assertion (`ρ = 0`).
    Silent,
}

impl Attitude {
    /// Numeric attitude score `ρ` used in the contribution-score product.
    #[must_use]
    pub const fn score(self) -> f64 {
        match self {
            Attitude::Agree => 1.0,
            Attitude::Disagree => -1.0,
            Attitude::Silent => 0.0,
        }
    }

    /// The opposite stance; [`Attitude::Silent`] is its own opposite.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            Attitude::Agree => Attitude::Disagree,
            Attitude::Disagree => Attitude::Agree,
            Attitude::Silent => Attitude::Silent,
        }
    }

    /// Whether the report actually takes a stance.
    #[must_use]
    pub const fn is_vocal(self) -> bool {
        !matches!(self, Attitude::Silent)
    }
}

impl fmt::Display for Attitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Attitude::Agree => "agree",
            Attitude::Disagree => "disagree",
            Attitude::Silent => "silent",
        };
        f.write_str(s)
    }
}

macro_rules! unit_interval_score {
    ($(#[$doc:meta])* $name:ident, $kind:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Creates the score, validating that it is finite and in `[0, 1]`.
            ///
            /// # Errors
            ///
            /// Returns [`ScoreError`] if `value` is NaN, infinite, or outside
            /// `[0, 1]`.
            pub fn new(value: f64) -> Result<Self, ScoreError> {
                if value.is_finite() && (0.0..=1.0).contains(&value) {
                    Ok(Self(value))
                } else {
                    Err(ScoreError::new($kind, value))
                }
            }

            /// Creates the score by clamping `value` into `[0, 1]`.
            ///
            /// NaN clamps to `0`.
            #[must_use]
            pub fn saturating(value: f64) -> Self {
                if value.is_nan() {
                    Self(0.0)
                } else {
                    Self(value.clamp(0.0, 1.0))
                }
            }

            /// Returns the raw score in `[0, 1]`.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self(0.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3}", self.0)
            }
        }
    };
}

unit_interval_score!(
    /// Uncertainty score `κ` of a report (paper Definition 2).
    ///
    /// A higher score means the report hedges more ("possibly", "unconfirmed"),
    /// so it contributes less evidence: the contribution score multiplies by
    /// `1 − κ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sstd_types::Uncertainty;
    ///
    /// let kappa = Uncertainty::new(0.25)?;
    /// assert_eq!(kappa.value(), 0.25);
    /// assert!(Uncertainty::new(-0.1).is_err());
    /// # Ok::<(), sstd_types::ScoreError>(())
    /// ```
    Uncertainty,
    "uncertainty"
);

unit_interval_score!(
    /// Independence score `η` of a report (paper Definition 3).
    ///
    /// A higher score means the report is more likely an original observation
    /// rather than a retweet/copy of an earlier report.
    ///
    /// # Examples
    ///
    /// ```
    /// use sstd_types::Independence;
    ///
    /// let eta = Independence::new(0.8)?;
    /// assert_eq!(eta.value(), 0.8);
    /// assert!(Independence::new(f64::NAN).is_err());
    /// # Ok::<(), sstd_types::ScoreError>(())
    /// ```
    Independence,
    "independence"
);

/// Contribution score of a report (paper Eq. 1):
/// `CS = ρ × (1 − κ) × η ∈ [-1, 1]`.
///
/// The sign carries the attitude; the magnitude discounts hedged and copied
/// reports.
///
/// # Examples
///
/// ```
/// use sstd_types::{Attitude, ContributionScore, Independence, Uncertainty};
///
/// let cs = ContributionScore::compute(
///     Attitude::Disagree,
///     Uncertainty::new(0.5)?,
///     Independence::new(1.0)?,
/// );
/// assert_eq!(cs.value(), -0.5);
/// # Ok::<(), sstd_types::ScoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ContributionScore(f64);

impl ContributionScore {
    /// Computes `ρ × (1 − κ) × η` from the three component scores.
    #[must_use]
    pub fn compute(
        attitude: Attitude,
        uncertainty: Uncertainty,
        independence: Independence,
    ) -> Self {
        Self(attitude.score() * (1.0 - uncertainty.value()) * independence.value())
    }

    /// Returns the raw contribution score in `[-1, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Whether the score carries any evidence at all.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for ContributionScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attitude_scores_match_paper_encoding() {
        assert_eq!(Attitude::Agree.score(), 1.0);
        assert_eq!(Attitude::Disagree.score(), -1.0);
        assert_eq!(Attitude::Silent.score(), 0.0);
    }

    #[test]
    fn attitude_flip_is_involutive() {
        for a in [Attitude::Agree, Attitude::Disagree, Attitude::Silent] {
            assert_eq!(a.flipped().flipped(), a);
        }
        assert_eq!(Attitude::Agree.flipped(), Attitude::Disagree);
    }

    #[test]
    fn vocal_excludes_silent() {
        assert!(Attitude::Agree.is_vocal());
        assert!(Attitude::Disagree.is_vocal());
        assert!(!Attitude::Silent.is_vocal());
    }

    #[test]
    fn uncertainty_validates_range() {
        assert!(Uncertainty::new(0.0).is_ok());
        assert!(Uncertainty::new(1.0).is_ok());
        assert!(Uncertainty::new(1.0 + 1e-9).is_err());
        assert!(Uncertainty::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Independence::saturating(2.0).value(), 1.0);
        assert_eq!(Independence::saturating(-3.0).value(), 0.0);
        assert_eq!(Independence::saturating(f64::NAN).value(), 0.0);
        assert_eq!(Independence::saturating(0.4).value(), 0.4);
    }

    #[test]
    fn contribution_score_eq1() {
        let cs = ContributionScore::compute(
            Attitude::Agree,
            Uncertainty::new(0.2).unwrap(),
            Independence::new(0.5).unwrap(),
        );
        assert!((cs.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn silent_reports_contribute_nothing() {
        let cs = ContributionScore::compute(
            Attitude::Silent,
            Uncertainty::new(0.0).unwrap(),
            Independence::new(1.0).unwrap(),
        );
        assert!(cs.is_zero());
    }

    #[test]
    fn fully_uncertain_reports_contribute_nothing() {
        let cs = ContributionScore::compute(
            Attitude::Agree,
            Uncertainty::new(1.0).unwrap(),
            Independence::new(1.0).unwrap(),
        );
        assert!(cs.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attitude::Agree.to_string(), "agree");
        let cs = ContributionScore::compute(
            Attitude::Disagree,
            Uncertainty::new(0.0).unwrap(),
            Independence::new(1.0).unwrap(),
        );
        assert_eq!(cs.to_string(), "-1.000");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn attitudes() -> impl Strategy<Value = Attitude> {
        prop_oneof![Just(Attitude::Agree), Just(Attitude::Disagree), Just(Attitude::Silent),]
    }

    proptest! {
        /// Eq. 1 algebra: the contribution score always lies in [-1, 1],
        /// carries the attitude's sign, and is monotone in both discounts.
        #[test]
        fn contribution_score_bounds_and_sign(
            att in attitudes(),
            kappa in 0.0f64..=1.0,
            eta in 0.0f64..=1.0,
        ) {
            let cs = ContributionScore::compute(
                att,
                Uncertainty::new(kappa).unwrap(),
                Independence::new(eta).unwrap(),
            );
            prop_assert!((-1.0..=1.0).contains(&cs.value()));
            match att {
                Attitude::Agree => prop_assert!(cs.value() >= 0.0),
                Attitude::Disagree => prop_assert!(cs.value() <= 0.0),
                Attitude::Silent => prop_assert!(cs.is_zero()),
            }
        }

        /// More hedging never increases the magnitude of the evidence.
        #[test]
        fn hedging_is_monotone(
            k1 in 0.0f64..=1.0,
            k2 in 0.0f64..=1.0,
            eta in 0.0f64..=1.0,
        ) {
            let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
            let strong = ContributionScore::compute(
                Attitude::Agree,
                Uncertainty::new(lo).unwrap(),
                Independence::new(eta).unwrap(),
            );
            let weak = ContributionScore::compute(
                Attitude::Agree,
                Uncertainty::new(hi).unwrap(),
                Independence::new(eta).unwrap(),
            );
            prop_assert!(weak.value().abs() <= strong.value().abs() + 1e-12);
        }

        /// Flipping the attitude exactly negates the score.
        #[test]
        fn flip_negates(kappa in 0.0f64..=1.0, eta in 0.0f64..=1.0) {
            let k = Uncertainty::new(kappa).unwrap();
            let e = Independence::new(eta).unwrap();
            let pos = ContributionScore::compute(Attitude::Agree, k, e);
            let neg = ContributionScore::compute(Attitude::Disagree, k, e);
            prop_assert!((pos.value() + neg.value()).abs() < 1e-12);
        }
    }
}
