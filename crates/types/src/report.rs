//! Scored reports — the unit of evidence every truth-discovery scheme
//! consumes.

use crate::{Attitude, ClaimId, ContributionScore, Independence, SourceId, Timestamp, Uncertainty};
use serde::{Deserialize, Serialize};

/// A report `R_{i,u}^t`: source `S_i`'s scored statement about claim `C_u`
/// at time `t` (paper §II).
///
/// A report bundles the three semantic scores the preprocessing pipeline
/// assigns (attitude `ρ`, uncertainty `κ`, independence `η`); its
/// [`contribution_score`](Report::contribution_score) is their product
/// (paper Eq. 1).
///
/// # Examples
///
/// ```
/// use sstd_types::*;
///
/// let r = Report::new(
///     SourceId::new(4),
///     ClaimId::new(0),
///     Timestamp::from_secs(12),
///     Attitude::Agree,
///     Uncertainty::new(0.0)?,
///     Independence::new(1.0)?,
/// );
/// assert_eq!(r.contribution_score().value(), 1.0);
/// # Ok::<(), ScoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Report {
    source: SourceId,
    claim: ClaimId,
    time: Timestamp,
    attitude: Attitude,
    uncertainty: Uncertainty,
    independence: Independence,
}

impl Report {
    /// Creates a fully scored report.
    #[must_use]
    pub const fn new(
        source: SourceId,
        claim: ClaimId,
        time: Timestamp,
        attitude: Attitude,
        uncertainty: Uncertainty,
        independence: Independence,
    ) -> Self {
        Self { source, claim, time, attitude, uncertainty, independence }
    }

    /// Convenience constructor for a confident, independent report — the
    /// common case in tests and examples.
    #[must_use]
    pub fn plain(source: SourceId, claim: ClaimId, time: Timestamp, attitude: Attitude) -> Self {
        Self {
            source,
            claim,
            time,
            attitude,
            uncertainty: Uncertainty::saturating(0.0),
            independence: Independence::saturating(1.0),
        }
    }

    /// The reporting source.
    #[must_use]
    pub const fn source(&self) -> SourceId {
        self.source
    }

    /// The claim the report is about.
    #[must_use]
    pub const fn claim(&self) -> ClaimId {
        self.claim
    }

    /// When the report was made (trace time).
    #[must_use]
    pub const fn time(&self) -> Timestamp {
        self.time
    }

    /// The stance the report takes (`ρ`).
    #[must_use]
    pub const fn attitude(&self) -> Attitude {
        self.attitude
    }

    /// How much the report hedges (`κ`).
    #[must_use]
    pub const fn uncertainty(&self) -> Uncertainty {
        self.uncertainty
    }

    /// How likely the report is original rather than copied (`η`).
    #[must_use]
    pub const fn independence(&self) -> Independence {
        self.independence
    }

    /// The contribution score `CS = ρ × (1 − κ) × η` (paper Eq. 1).
    #[must_use]
    pub fn contribution_score(&self) -> ContributionScore {
        ContributionScore::compute(self.attitude, self.uncertainty, self.independence)
    }

    /// Returns a copy of this report with the stance flipped — handy for
    /// constructing contradiction scenarios in tests.
    #[must_use]
    pub fn with_flipped_attitude(mut self) -> Self {
        self.attitude = self.attitude.flipped();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            SourceId::new(1),
            ClaimId::new(2),
            Timestamp::from_secs(3),
            Attitude::Agree,
            Uncertainty::new(0.25).unwrap(),
            Independence::new(0.8).unwrap(),
        )
    }

    #[test]
    fn accessors_return_constructor_values() {
        let r = sample();
        assert_eq!(r.source(), SourceId::new(1));
        assert_eq!(r.claim(), ClaimId::new(2));
        assert_eq!(r.time().as_secs(), 3);
        assert_eq!(r.attitude(), Attitude::Agree);
        assert_eq!(r.uncertainty().value(), 0.25);
        assert_eq!(r.independence().value(), 0.8);
    }

    #[test]
    fn contribution_score_matches_eq1() {
        let r = sample();
        assert!((r.contribution_score().value() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn plain_report_is_full_strength() {
        let r =
            Report::plain(SourceId::new(0), ClaimId::new(0), Timestamp::ZERO, Attitude::Disagree);
        assert_eq!(r.contribution_score().value(), -1.0);
    }

    #[test]
    fn flip_negates_contribution() {
        let r = sample();
        let f = r.with_flipped_attitude();
        assert!((r.contribution_score().value() + f.contribution_score().value()).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
