//! Core domain types shared by every SSTD crate.
//!
//! This crate defines the vocabulary of the social-sensing truth-discovery
//! problem exactly as formulated in §II of the SSTD paper (ICDCS 2017):
//! *sources* make *reports* about *claims*; each report carries an
//! [`Attitude`], an [`Uncertainty`] score and an [`Independence`] score that
//! combine into a [`ContributionScore`] (paper Eq. 1); the hidden, evolving
//! truth of a claim is a sequence of [`TruthLabel`]s over discrete
//! [`Interval`]s.
//!
//! # Examples
//!
//! ```
//! use sstd_types::{Attitude, ContributionScore, Independence, Uncertainty};
//!
//! # fn main() -> Result<(), sstd_types::ScoreError> {
//! let cs = ContributionScore::compute(
//!     Attitude::Agree,
//!     Uncertainty::new(0.2)?,
//!     Independence::new(0.9)?,
//! );
//! assert!((cs.value() - 0.72).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod error;
mod ids;
mod post;
mod report;
mod score;
mod time;
mod trace;
mod truth;

pub use error::{BackendError, ConfigError, ScoreError, SstdError};
pub use ids::{ClaimId, SourceId};
pub use post::RawPost;
pub use report::Report;
pub use score::{Attitude, ContributionScore, Independence, Uncertainty};
pub use time::{Interval, Timeline, Timestamp};
pub use trace::{Trace, TraceStats};
pub use truth::{GroundTruth, TruthLabel};
