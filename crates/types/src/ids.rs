//! Identifier newtypes for sources and claims.
//!
//! Using distinct newtypes (rather than bare `u32`s) statically prevents a
//! source index from being used where a claim index is expected — a real
//! hazard in truth-discovery code, where both are dense integer ranges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data source (e.g. one Twitter user).
///
/// Source ids are dense indices assigned by the trace builder: a trace with
/// `M` sources uses ids `0..M`.
///
/// # Examples
///
/// ```
/// use sstd_types::SourceId;
///
/// let s = SourceId::new(7);
/// assert_eq!(s.index(), 7);
/// assert_eq!(format!("{s}"), "S7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SourceId(u32);

impl SourceId {
    /// Creates a source id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this source.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for SourceId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a claim (a statement whose truth evolves over time).
///
/// Claim ids are dense indices assigned by the claim generator: a trace with
/// `N` claims uses ids `0..N`.
///
/// # Examples
///
/// ```
/// use sstd_types::ClaimId;
///
/// let c = ClaimId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(format!("{c}"), "C3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClaimId(u32);

impl ClaimId {
    /// Creates a claim id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this claim.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ClaimId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl fmt::Display for ClaimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn source_id_roundtrip() {
        let s = SourceId::new(42);
        assert_eq!(s.index(), 42);
        assert_eq!(SourceId::from(42u32), s);
    }

    #[test]
    fn claim_id_roundtrip() {
        let c = ClaimId::new(9);
        assert_eq!(c.index(), 9);
        assert_eq!(ClaimId::from(9u32), c);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(SourceId::new(1));
        set.insert(SourceId::new(1));
        set.insert(SourceId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ClaimId::new(1) < ClaimId::new(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SourceId::new(0).to_string(), "S0");
        assert_eq!(ClaimId::new(10).to_string(), "C10");
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&ClaimId::new(5)).unwrap();
        assert_eq!(json, "5");
        let back: ClaimId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ClaimId::new(5));
    }
}
