//! The end-to-end preprocessing pipeline: raw posts in, scored reports out.

use crate::{
    AttitudeScorer, ClaimClusterer, ClusterConfig, HedgeUncertaintyScorer, IndependenceScorer,
    KeywordFilter, LexiconAttitudeScorer, RetweetIndependenceScorer, UncertaintyScorer,
};
use sstd_types::{Attitude, RawPost, Report};

/// Configuration of the default pipeline stages.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Event keywords; posts matching none are dropped.
    pub keywords: Vec<String>,
    /// Clustering thresholds.
    pub cluster: ClusterConfig,
    /// Near-duplicate window (seconds) for independence scoring.
    pub duplicate_window_secs: u64,
    /// Jaccard similarity above which a post counts as a copy.
    pub duplicate_similarity: f64,
}

impl PipelineConfig {
    /// A sensible default configuration for the given event keywords.
    ///
    /// # Panics
    ///
    /// Panics if `keywords` is empty.
    #[must_use]
    pub fn for_event<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let keywords: Vec<String> = keywords.into_iter().map(|k| k.as_ref().to_string()).collect();
        assert!(!keywords.is_empty(), "event needs at least one keyword");
        Self {
            keywords,
            cluster: ClusterConfig::default(),
            duplicate_window_secs: 300,
            duplicate_similarity: 0.8,
        }
    }
}

/// Streaming preprocessing pipeline (paper §V-A2).
///
/// Feed it [`RawPost`]s in time order; it filters, clusters, scores, and
/// emits fully scored [`Report`]s, assigning each post to a claim.
///
/// Every scorer is a replaceable plugin (paper §VII-2: "the SSTD is
/// designed as a general framework where one can easily update or replace
/// components like uncertainty classifier as a plugin of the system") —
/// see [`with_uncertainty_scorer`](Self::with_uncertainty_scorer) and
/// friends. For example, swap the hedge lexicon for the trained
/// [`NaiveBayesUncertaintyScorer`](crate::NaiveBayesUncertaintyScorer):
///
/// ```
/// use sstd_text::{NaiveBayesUncertaintyScorer, PipelineConfig, ReportPipeline};
///
/// let p = ReportPipeline::new(PipelineConfig::for_event(["boston"]))
///     .with_uncertainty_scorer(NaiveBayesUncertaintyScorer::with_builtin_corpus());
/// drop(p);
/// ```
///
/// # Examples
///
/// ```
/// use sstd_text::{PipelineConfig, ReportPipeline};
/// use sstd_types::{RawPost, SourceId, Timestamp};
///
/// let mut p = ReportPipeline::new(PipelineConfig::for_event(["marathon", "bombing"]));
/// let post = RawPost::new(
///     SourceId::new(0),
///     Timestamp::from_secs(10),
///     "Two explosions reported at the marathon finish line",
/// );
/// let report = p.process(&post).expect("matches keywords");
/// assert_eq!(report.claim().index(), 0);
/// assert!(p.process(&RawPost::new(
///     SourceId::new(1), Timestamp::from_secs(11), "lovely weather",
/// )).is_none());
/// ```
pub struct ReportPipeline {
    filter: KeywordFilter,
    clusterer: ClaimClusterer,
    attitude: Box<dyn AttitudeScorer + Send>,
    uncertainty: Box<dyn UncertaintyScorer + Send>,
    independence: Box<dyn IndependenceScorer + Send>,
    processed: u64,
    dropped: u64,
}

impl std::fmt::Debug for ReportPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportPipeline")
            .field("filter", &self.filter)
            .field("claims", &self.clusterer.num_claims())
            .field("processed", &self.processed)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl ReportPipeline {
    /// Builds the default pipeline for `config` (lexicon attitude scorer,
    /// hedge-lexicon uncertainty scorer, retweet independence scorer).
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            filter: KeywordFilter::new(&config.keywords),
            clusterer: ClaimClusterer::new(config.cluster),
            attitude: Box::new(LexiconAttitudeScorer::new()),
            uncertainty: Box::new(HedgeUncertaintyScorer::new()),
            independence: Box::new(RetweetIndependenceScorer::new(
                config.duplicate_window_secs,
                config.duplicate_similarity,
            )),
            processed: 0,
            dropped: 0,
        }
    }

    /// Replaces the attitude scorer plugin.
    #[must_use]
    pub fn with_attitude_scorer(mut self, scorer: impl AttitudeScorer + Send + 'static) -> Self {
        self.attitude = Box::new(scorer);
        self
    }

    /// Replaces the uncertainty scorer plugin.
    #[must_use]
    pub fn with_uncertainty_scorer(
        mut self,
        scorer: impl UncertaintyScorer + Send + 'static,
    ) -> Self {
        self.uncertainty = Box::new(scorer);
        self
    }

    /// Replaces the independence scorer plugin.
    #[must_use]
    pub fn with_independence_scorer(
        mut self,
        scorer: impl IndependenceScorer + Send + 'static,
    ) -> Self {
        self.independence = Box::new(scorer);
        self
    }

    /// Processes one post; returns `None` when the post is filtered out
    /// (no keyword match, or no stance taken).
    pub fn process(&mut self, post: &RawPost) -> Option<Report> {
        if !self.filter.matches(post.text()) {
            self.dropped += 1;
            return None;
        }
        let attitude = self.attitude.attitude(post.text());
        if attitude == Attitude::Silent {
            self.dropped += 1;
            return None;
        }
        let claim = self.clusterer.assign(post.text());
        let kappa = self.uncertainty.uncertainty(post.text());
        let eta = self.independence.independence(post);
        self.processed += 1;
        Some(Report::new(post.source(), claim, post.time(), attitude, kappa, eta))
    }

    /// Number of claims discovered so far.
    #[must_use]
    pub fn num_claims(&self) -> usize {
        self.clusterer.num_claims()
    }

    /// `(processed, dropped)` post counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.processed, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_types::{SourceId, Timestamp};

    fn post(src: u32, t: u64, text: &str) -> RawPost {
        RawPost::new(SourceId::new(src), Timestamp::from_secs(t), text)
    }

    fn pipeline() -> ReportPipeline {
        ReportPipeline::new(PipelineConfig::for_event(["boston", "marathon", "bombing"]))
    }

    #[test]
    fn keyword_mismatch_is_dropped() {
        let mut p = pipeline();
        assert!(p.process(&post(0, 0, "what a lovely day")).is_none());
        assert_eq!(p.counters(), (0, 1));
    }

    #[test]
    fn matching_post_becomes_report() {
        let mut p = pipeline();
        let r = p.process(&post(3, 42, "explosion at the boston marathon")).unwrap();
        assert_eq!(r.source(), SourceId::new(3));
        assert_eq!(r.time().as_secs(), 42);
        assert_eq!(r.attitude(), Attitude::Agree);
        assert!(r.contribution_score().value() > 0.0);
    }

    #[test]
    fn denial_post_disagrees() {
        let mut p = pipeline();
        let _ = p.process(&post(0, 0, "second bomb at boston library"));
        let r = p.process(&post(1, 10, "the boston library bomb story is fake")).unwrap();
        assert_eq!(r.attitude(), Attitude::Disagree);
        assert!(r.contribution_score().value() < 0.0);
    }

    #[test]
    fn similar_posts_map_to_same_claim() {
        let mut p = pipeline();
        let a = p.process(&post(0, 0, "boston marathon explosion at finish line")).unwrap();
        let b = p.process(&post(1, 20, "explosion near marathon finish line boston")).unwrap();
        assert_eq!(a.claim(), b.claim());
        assert_eq!(p.num_claims(), 1);
    }

    #[test]
    fn retweet_gets_low_independence() {
        let mut p = pipeline();
        let _ = p.process(&post(0, 0, "boston suspect in custody"));
        let rt = RawPost::retweet(
            SourceId::new(1),
            Timestamp::from_secs(5),
            "boston suspect in custody",
            0,
        );
        let r = p.process(&rt).unwrap();
        assert!(r.independence().value() <= 0.1);
    }

    #[test]
    fn hedged_post_scores_uncertainty() {
        let mut p = pipeline();
        let r = p.process(&post(0, 0, "possibly another bombing in boston, unconfirmed")).unwrap();
        assert!(r.uncertainty().value() >= 0.6);
        // Heavily hedged → small contribution magnitude.
        assert!(r.contribution_score().value().abs() < 0.5);
    }
}
