//! Tokenization for micro-blog text.

use std::collections::BTreeSet;

/// Common English stopwords excluded from token sets so Jaccard distances
/// reflect content words, not glue.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "he",
    "her", "his", "i", "in", "is", "it", "its", "of", "on", "or", "our", "she", "so", "that",
    "the", "their", "there", "they", "this", "to", "was", "we", "were", "will", "with", "you",
];

/// Splits text into lowercase alphanumeric tokens, dropping stopwords.
///
/// Hashtags keep their word ("#osu" → "osu"), mentions keep the handle,
/// and URLs are reduced to their hostname-ish tokens — the same light
/// normalization the paper's crawler applies before clustering.
///
/// # Examples
///
/// ```
/// use sstd_text::tokenize;
///
/// let toks = tokenize("Shooting at OSU campus! #osu @police https://t.co/x");
/// assert!(toks.contains(&"shooting".to_string()));
/// assert!(toks.contains(&"osu".to_string()));
/// assert!(!toks.contains(&"at".to_string()), "stopword removed");
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter_map(|raw| {
            let t: String =
                raw.chars().filter(|c| c.is_alphanumeric()).collect::<String>().to_lowercase();
            if t.is_empty() || STOPWORDS.contains(&t.as_str()) {
                None
            } else {
                Some(t)
            }
        })
        .collect()
}

/// An owned set of distinct tokens — the unit the Jaccard metric and the
/// clusterer operate on.
///
/// # Examples
///
/// ```
/// use sstd_text::TokenSet;
///
/// let a = TokenSet::from_text("bomb at the marathon finish line");
/// let b = TokenSet::from_text("marathon finish line bombing");
/// assert!(a.intersection_size(&b) >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenSet {
    tokens: BTreeSet<String>,
}

impl TokenSet {
    /// Builds the token set of `text`.
    #[must_use]
    pub fn from_text(text: &str) -> Self {
        Self { tokens: tokenize(text).into_iter().collect() }
    }

    /// Number of distinct tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether `token` (already lowercase) is present.
    #[must_use]
    pub fn contains(&self, token: &str) -> bool {
        self.tokens.contains(token)
    }

    /// Size of the intersection with `other`.
    #[must_use]
    pub fn intersection_size(&self, other: &Self) -> usize {
        if self.len() > other.len() {
            return other.intersection_size(self);
        }
        self.tokens.iter().filter(|t| other.tokens.contains(*t)).count()
    }

    /// Size of the union with `other`.
    #[must_use]
    pub fn union_size(&self, other: &Self) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Merges `other` into this set.
    pub fn merge(&mut self, other: &Self) {
        for t in &other.tokens {
            self.tokens.insert(t.clone());
        }
    }

    /// Iterates over tokens in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().map(String::as_str)
    }
}

impl FromIterator<String> for TokenSet {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Self { tokens: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        let toks = tokenize("BREAKING: Explosion!!! Near finish-line.");
        assert_eq!(toks, vec!["breaking", "explosion", "near", "finish", "line"]);
    }

    #[test]
    fn removes_stopwords() {
        let toks = tokenize("there is a bomb at the library");
        assert_eq!(toks, vec!["bomb", "library"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn hashtags_and_mentions_keep_words() {
        let toks = tokenize("#PrayForBoston @BostonPolice");
        assert_eq!(toks, vec!["prayforboston", "bostonpolice"]);
    }

    #[test]
    fn token_set_dedups() {
        let s = TokenSet::from_text("bomb bomb bomb");
        assert_eq!(s.len(), 1);
        assert!(s.contains("bomb"));
    }

    #[test]
    fn set_operations() {
        let a = TokenSet::from_text("suspect seen near campus");
        let b = TokenSet::from_text("suspect arrested near bridge");
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 6);
    }

    #[test]
    fn merge_unions_tokens() {
        let mut a = TokenSet::from_text("police chase");
        let b = TokenSet::from_text("chase ended");
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_set_behaves() {
        let e = TokenSet::default();
        let a = TokenSet::from_text("anything");
        assert!(e.is_empty());
        assert_eq!(e.intersection_size(&a), 0);
        assert_eq!(e.union_size(&a), 1);
    }
}
