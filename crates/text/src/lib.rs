//! Tweet preprocessing: from raw posts to scored reports.
//!
//! The SSTD paper's data pipeline (§V-A2) derives claims and report scores
//! from raw tweets before any truth discovery runs:
//!
//! 1. **keyword filtering** drops posts irrelevant to the tracked event
//!    ([`KeywordFilter`]);
//! 2. **online clustering** with Jaccard distance groups similar posts into
//!    claims, splitting clusters whose diameter grows too large
//!    ([`ClaimClusterer`]);
//! 3. **attitude scoring** classifies each post as agreeing or disagreeing
//!    with its claim via a negation lexicon ([`LexiconAttitudeScorer`]);
//! 4. **uncertainty scoring** detects hedged language with a CoNLL-2010
//!    style cue-word inventory ([`HedgeUncertaintyScorer`]);
//! 5. **independence scoring** down-weights retweets and near-duplicates
//!    ([`RetweetIndependenceScorer`]).
//!
//! [`ReportPipeline`] chains all five stages. Every stage is behind a trait
//! (the paper's §VII explicitly calls for pluggable classifiers), so a
//! downstream user can swap in a real NLP model without touching the rest
//! of the system.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod attitude;
mod cluster;
mod independence;
mod jaccard;
mod keywords;
mod nb;
mod pipeline;
mod tokenize;
mod uncertainty;

pub use attitude::{AttitudeScorer, LexiconAttitudeScorer};
pub use cluster::{ClaimClusterer, ClusterConfig};
pub use independence::{IndependenceScorer, RetweetIndependenceScorer};
pub use jaccard::{jaccard_distance, jaccard_similarity};
pub use keywords::KeywordFilter;
pub use nb::{NaiveBayes, NaiveBayesUncertaintyScorer};
pub use pipeline::{PipelineConfig, ReportPipeline};
pub use tokenize::{tokenize, TokenSet};
pub use uncertainty::{HedgeUncertaintyScorer, UncertaintyScorer};
