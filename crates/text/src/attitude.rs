//! Attitude scoring: does a post agree or disagree with its claim?
//!
//! The paper classifies a tweet as "disagree" when it contains negation
//! cues ("false", "fake", "rumor", "debunked", "not true", …) and "agree"
//! otherwise (§V-A2). The scorer is behind a trait so a polarity classifier
//! can replace the lexicon (paper §VII-2).

use crate::TokenSet;
use sstd_types::Attitude;

/// Assigns an [`Attitude`] to a post relative to its claim.
pub trait AttitudeScorer {
    /// Classifies `text` as agreeing with, disagreeing with, or silent
    /// about the claim it was clustered into.
    fn attitude(&self, text: &str) -> Attitude;
}

/// Default denial cues, following the paper's examples plus common
/// variants observed in rumor-debunking tweets.
const DENIAL_CUES: &[&str] = &[
    "false",
    "fake",
    "rumor",
    "rumour",
    "debunked",
    "hoax",
    "untrue",
    "misinformation",
    "incorrect",
    "wrong",
    "lie",
    "lies",
    "denied",
    "denies",
];

/// Bigram denial cues checked on the raw lowercase text (token sets lose
/// adjacency).
const DENIAL_PHRASES: &[&str] = &["not true", "no evidence", "not confirmed", "didn't happen"];

/// Lexicon-based attitude scorer.
///
/// # Examples
///
/// ```
/// use sstd_text::{AttitudeScorer, LexiconAttitudeScorer};
/// use sstd_types::Attitude;
///
/// let s = LexiconAttitudeScorer::new();
/// assert_eq!(s.attitude("There was a shooting at the campus"), Attitude::Agree);
/// assert_eq!(s.attitude("That shooting story is fake news"), Attitude::Disagree);
/// assert_eq!(s.attitude(""), Attitude::Silent);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LexiconAttitudeScorer {
    extra_denials: Vec<String>,
}

impl LexiconAttitudeScorer {
    /// Creates a scorer with the built-in denial lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds event-specific denial cues (e.g. `"photoshopped"`).
    #[must_use]
    pub fn with_denial_cues<I, S>(mut self, cues: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.extra_denials.extend(cues.into_iter().map(|c| c.as_ref().to_lowercase()));
        self
    }
}

impl AttitudeScorer for LexiconAttitudeScorer {
    fn attitude(&self, text: &str) -> Attitude {
        let tokens = TokenSet::from_text(text);
        if tokens.is_empty() {
            return Attitude::Silent;
        }
        let lower = text.to_lowercase();
        let denies = DENIAL_CUES.iter().any(|c| tokens.contains(c))
            || DENIAL_PHRASES.iter().any(|p| lower.contains(p))
            || self.extra_denials.iter().any(|c| tokens.contains(c));
        if denies {
            Attitude::Disagree
        } else {
            Attitude::Agree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_assertion_agrees() {
        let s = LexiconAttitudeScorer::new();
        assert_eq!(s.attitude("Suspect arrested near the bridge"), Attitude::Agree);
    }

    #[test]
    fn denial_words_disagree() {
        let s = LexiconAttitudeScorer::new();
        for text in [
            "this is FALSE",
            "total hoax, ignore",
            "that rumor was debunked hours ago",
            "fake claims spreading again",
        ] {
            assert_eq!(s.attitude(text), Attitude::Disagree, "{text}");
        }
    }

    #[test]
    fn denial_phrases_disagree() {
        let s = LexiconAttitudeScorer::new();
        assert_eq!(s.attitude("police say it's not true"), Attitude::Disagree);
        assert_eq!(s.attitude("there is no evidence of a second bomb"), Attitude::Disagree);
    }

    #[test]
    fn empty_text_is_silent() {
        let s = LexiconAttitudeScorer::new();
        assert_eq!(s.attitude("   "), Attitude::Silent);
    }

    #[test]
    fn custom_cues_extend_lexicon() {
        let s = LexiconAttitudeScorer::new().with_denial_cues(["photoshopped"]);
        assert_eq!(s.attitude("that image is photoshopped"), Attitude::Disagree);
    }

    #[test]
    fn matches_paper_osu_example() {
        // Third tweet of paper Table I: contains "fake claims" → disagree.
        let s = LexiconAttitudeScorer::new();
        assert_eq!(
            s.attitude("Liberals putting out fake claims about the terrorist attack"),
            Attitude::Disagree
        );
        // First tweet: assertion → agree.
        assert_eq!(
            s.attitude("OSU POSSIBLE SHOOTING: I am on campus TONS of police"),
            Attitude::Agree
        );
    }
}
