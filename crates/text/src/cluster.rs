//! Online claim clustering.
//!
//! "a newly arrived tweet will be clustered into one of the existing
//! clusters based [on] the computed Jaccard distance and a cluster will be
//! broken into two clusters if the diameter of the cluster is larger than
//! some pre-specified threshold" (paper §V-A2). Each cluster is one claim;
//! cluster indices become [`ClaimId`]s.

use crate::{jaccard_distance, TokenSet};
use sstd_types::ClaimId;
use std::collections::VecDeque;

/// Tuning knobs of the online clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Maximum Jaccard distance to the cluster representative for a post
    /// to join the cluster; beyond it a new cluster is opened.
    pub assign_threshold: f64,
    /// Diameter (max pairwise distance within the retained sample) beyond
    /// which a cluster is split in two.
    pub split_diameter: f64,
    /// How many recent member token-sets each cluster retains for
    /// diameter estimation.
    pub sample_size: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self { assign_threshold: 0.7, split_diameter: 0.85, sample_size: 12 }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    /// Representative token set (the founding post; refreshed on split).
    representative: TokenSet,
    /// Recent member token sets, bounded by `sample_size`.
    sample: VecDeque<TokenSet>,
    size: usize,
}

impl Cluster {
    fn new(seed: TokenSet, sample_size: usize) -> Self {
        let mut sample = VecDeque::with_capacity(sample_size);
        sample.push_back(seed.clone());
        Self { representative: seed, sample, size: 1 }
    }

    fn admit(&mut self, tokens: TokenSet, sample_size: usize) {
        if self.sample.len() == sample_size {
            self.sample.pop_front();
        }
        self.sample.push_back(tokens);
        self.size += 1;
    }

    /// Max pairwise Jaccard distance within the retained sample.
    fn diameter(&self) -> f64 {
        let mut d: f64 = 0.0;
        let v: Vec<&TokenSet> = self.sample.iter().collect();
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                d = d.max(jaccard_distance(v[i], v[j]));
            }
        }
        d
    }
}

/// Online single-pass clusterer mapping posts to claims.
///
/// # Examples
///
/// ```
/// use sstd_text::{ClaimClusterer, ClusterConfig};
///
/// let mut c = ClaimClusterer::new(ClusterConfig::default());
/// let a = c.assign("explosion at the marathon finish line");
/// let b = c.assign("explosion reported near marathon finish line");
/// let other = c.assign("library receiving a bomb threat");
/// assert_eq!(a, b);
/// assert_ne!(a, other);
/// ```
#[derive(Debug, Clone)]
pub struct ClaimClusterer {
    config: ClusterConfig,
    clusters: Vec<Cluster>,
}

impl ClaimClusterer {
    /// Creates an empty clusterer.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are outside `(0, 1]` or `sample_size < 2`.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        assert!(
            config.assign_threshold > 0.0 && config.assign_threshold <= 1.0,
            "assign threshold must be in (0, 1]"
        );
        assert!(
            config.split_diameter > 0.0 && config.split_diameter <= 1.0,
            "split diameter must be in (0, 1]"
        );
        assert!(config.sample_size >= 2, "diameter needs at least two samples");
        Self { config, clusters: Vec::new() }
    }

    /// Number of claims discovered so far.
    #[must_use]
    pub fn num_claims(&self) -> usize {
        self.clusters.len()
    }

    /// Number of posts admitted into claim `claim` so far.
    ///
    /// # Panics
    ///
    /// Panics if `claim` was not produced by this clusterer.
    #[must_use]
    pub fn claim_size(&self, claim: ClaimId) -> usize {
        self.clusters[claim.index()].size
    }

    /// Assigns `text` to a claim, creating a new one if nothing is close
    /// enough, and splitting the target cluster afterwards if its diameter
    /// exceeded the threshold.
    pub fn assign(&mut self, text: &str) -> ClaimId {
        let tokens = TokenSet::from_text(text);

        // Nearest cluster by distance to representative.
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = jaccard_distance(&tokens, &c.representative);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }

        match best {
            Some((i, d)) if d <= self.config.assign_threshold => {
                self.clusters[i].admit(tokens, self.config.sample_size);
                if self.clusters[i].diameter() > self.config.split_diameter {
                    self.split(i);
                }
                ClaimId::new(i as u32)
            }
            _ => {
                self.clusters.push(Cluster::new(tokens, self.config.sample_size));
                ClaimId::new((self.clusters.len() - 1) as u32)
            }
        }
    }

    /// Splits cluster `i`: the sampled member farthest from the
    /// representative seeds a new cluster and pulls the sample members
    /// closer to it than to the old representative.
    fn split(&mut self, i: usize) {
        let (far_idx, _) = {
            let c = &self.clusters[i];
            let mut far = (0usize, -1.0f64);
            for (k, m) in c.sample.iter().enumerate() {
                let d = jaccard_distance(m, &c.representative);
                if d > far.1 {
                    far = (k, d);
                }
            }
            far
        };
        let seed = self.clusters[i].sample[far_idx].clone();
        let mut new_cluster = Cluster::new(seed.clone(), self.config.sample_size);

        let old_rep = self.clusters[i].representative.clone();
        let mut retained = VecDeque::new();
        let mut moved = 0usize;
        let drained: Vec<TokenSet> = self.clusters[i].sample.drain(..).collect();
        for m in drained {
            if jaccard_distance(&m, &seed) < jaccard_distance(&m, &old_rep) {
                moved += 1;
                if m != seed {
                    new_cluster.admit(m, self.config.sample_size);
                }
            } else {
                retained.push_back(m);
            }
        }
        // Transfer the head-count with the members: posts that left must
        // stop counting against the old cluster, or claim sizes stop
        // summing to the number of posts seen. Unsampled history stays
        // attributed to the old cluster (we cannot know which side it
        // would have chosen).
        self.clusters[i].size -= moved;
        new_cluster.size = moved;
        self.clusters[i].sample = retained;
        self.clusters.push(new_cluster);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_posts_share_a_claim() {
        let mut c = ClaimClusterer::new(ClusterConfig::default());
        let a = c.assign("police chasing suspect near watertown");
        let b = c.assign("suspect chased by police in watertown now");
        assert_eq!(a, b);
        assert_eq!(c.num_claims(), 1);
        assert_eq!(c.claim_size(a), 2);
    }

    #[test]
    fn dissimilar_posts_open_new_claims() {
        let mut c = ClaimClusterer::new(ClusterConfig::default());
        let a = c.assign("bomb threat at jfk library");
        let b = c.assign("touchdown for the fighting irish");
        assert_ne!(a, b);
        assert_eq!(c.num_claims(), 2);
    }

    #[test]
    fn claim_ids_are_dense_and_stable() {
        let mut c = ClaimClusterer::new(ClusterConfig::default());
        let ids: Vec<ClaimId> =
            ["first topic alpha beta", "second topic gamma delta", "third topic epsilon zeta"]
                .iter()
                .map(|t| c.assign(t))
                .collect();
        assert_eq!(ids.iter().map(|c| c.index()).collect::<Vec<_>>(), vec![0, 1, 2]);
        // Re-assigning similar text returns the original id.
        assert_eq!(c.assign("first topic alpha beta gamma").index(), 0);
    }

    #[test]
    fn oversized_diameter_triggers_split() {
        // Low split threshold forces a split when a borderline post joins.
        let cfg = ClusterConfig { assign_threshold: 0.9, split_diameter: 0.5, sample_size: 8 };
        let mut c = ClaimClusterer::new(cfg);
        let _ = c.assign("alpha beta gamma delta");
        // Shares one token, distance ≈ 6/7 — joins under 0.9 but blows the diameter.
        let _ = c.assign("alpha omega sigma tau");
        assert!(c.num_claims() >= 2, "split should have created a new cluster");
    }

    #[test]
    fn empty_text_posts_cluster_together() {
        let mut c = ClaimClusterer::new(ClusterConfig::default());
        let a = c.assign("");
        let b = c.assign("!!!");
        assert_eq!(a, b, "token-free posts are identical under Jaccard");
    }

    #[test]
    #[should_panic(expected = "assign threshold")]
    fn invalid_config_panics() {
        let _ = ClaimClusterer::new(ClusterConfig {
            assign_threshold: 0.0,
            ..ClusterConfig::default()
        });
    }
}
