//! Jaccard similarity/distance over token sets — the micro-blog clustering
//! metric the paper adopts (§V-A2, citing Uddin et al.).

use crate::TokenSet;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
///
/// Two empty sets are defined to have similarity 1 (they are identical).
///
/// # Examples
///
/// ```
/// use sstd_text::{jaccard_similarity, TokenSet};
///
/// let a = TokenSet::from_text("bomb near finish line");
/// let b = TokenSet::from_text("bomb near finish line boston");
/// assert!(jaccard_similarity(&a, &b) > 0.7);
/// ```
#[must_use]
pub fn jaccard_similarity(a: &TokenSet, b: &TokenSet) -> f64 {
    let union = a.union_size(b);
    if union == 0 {
        return 1.0;
    }
    a.intersection_size(b) as f64 / union as f64
}

/// Jaccard distance `1 − similarity` in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use sstd_text::{jaccard_distance, TokenSet};
///
/// let a = TokenSet::from_text("touchdown irish");
/// let b = TokenSet::from_text("weather forecast");
/// assert_eq!(jaccard_distance(&a, &b), 1.0);
/// ```
#[must_use]
pub fn jaccard_distance(a: &TokenSet, b: &TokenSet) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_sets_have_distance_zero() {
        let a = TokenSet::from_text("police arrested suspect");
        assert_eq!(jaccard_distance(&a, &a.clone()), 0.0);
    }

    #[test]
    fn disjoint_sets_have_distance_one() {
        let a = TokenSet::from_text("football game");
        let b = TokenSet::from_text("marathon bombing");
        assert_eq!(jaccard_distance(&a, &b), 1.0);
    }

    #[test]
    fn empty_sets_are_identical() {
        let e = TokenSet::default();
        assert_eq!(jaccard_similarity(&e, &e.clone()), 1.0);
    }

    #[test]
    fn known_overlap() {
        // A = {a,b,c}, B = {b,c,d}: sim = 2/4.
        let a: TokenSet = ["alpha", "bravo", "charlie"].iter().map(|s| s.to_string()).collect();
        let b: TokenSet = ["bravo", "charlie", "delta"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard_similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn similarity_is_symmetric_and_bounded(
            xs in prop::collection::btree_set("[a-e]{1,3}", 0..8),
            ys in prop::collection::btree_set("[a-e]{1,3}", 0..8),
        ) {
            let a: TokenSet = xs.into_iter().collect();
            let b: TokenSet = ys.into_iter().collect();
            let s1 = jaccard_similarity(&a, &b);
            let s2 = jaccard_similarity(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&s1));
        }

        #[test]
        fn distance_satisfies_identity(xs in prop::collection::btree_set("[a-d]{1,2}", 0..6)) {
            let a: TokenSet = xs.into_iter().collect();
            prop_assert_eq!(jaccard_distance(&a, &a.clone()), 0.0);
        }
    }
}
