//! A trainable hedge classifier — the paper's §VII-2 future-work item
//! ("we plan to develop accurate classifiers to scale the labeling
//! process by leveraging more refined techniques from NLP").
//!
//! [`NaiveBayes`] is a multinomial naive Bayes text classifier with
//! Laplace smoothing, evaluated in log space. [`NaiveBayesUncertaintyScorer`]
//! wraps it as a drop-in [`UncertaintyScorer`]: the uncertainty score is
//! the posterior probability that the post is hedged. A built-in labeled
//! corpus (hedged vs. confident micro-blog sentences, modeled on the
//! CoNLL-2010 cue inventory the paper trained on) makes it usable out of
//! the box; [`NaiveBayes::train`] accepts any labeled corpus for domain
//! adaptation.

use crate::{tokenize, UncertaintyScorer};
use sstd_types::Uncertainty;
use std::collections::BTreeMap;

/// A binary multinomial naive Bayes classifier over word tokens.
///
/// # Examples
///
/// ```
/// use sstd_text::NaiveBayes;
///
/// let nb = NaiveBayes::train(&[
///     ("maybe there was an explosion", true),
///     ("possibly fake, not sure", true),
///     ("two explosions confirmed by police", false),
///     ("the suspect is in custody", false),
/// ]);
/// assert!(nb.predict_proba("maybe possibly a suspect") > 0.5);
/// assert!(nb.predict_proba("police confirmed the arrest") < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    /// log P(class = positive)
    log_prior_pos: f64,
    /// log P(class = negative)
    log_prior_neg: f64,
    /// Per-token (count in positive, count in negative).
    counts: BTreeMap<String, (u32, u32)>,
    total_pos: u32,
    total_neg: u32,
}

impl NaiveBayes {
    /// Trains on `(text, is_positive)` examples.
    ///
    /// # Panics
    ///
    /// Panics unless the corpus contains at least one example of each
    /// class (a one-class corpus cannot define a posterior).
    #[must_use]
    pub fn train(examples: &[(&str, bool)]) -> Self {
        let n_pos = examples.iter().filter(|(_, y)| *y).count();
        let n_neg = examples.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need examples of both classes");

        let mut counts: BTreeMap<String, (u32, u32)> = BTreeMap::new();
        let mut total_pos = 0u32;
        let mut total_neg = 0u32;
        for (text, y) in examples {
            for token in tokenize(text) {
                let e = counts.entry(token).or_insert((0, 0));
                if *y {
                    e.0 += 1;
                    total_pos += 1;
                } else {
                    e.1 += 1;
                    total_neg += 1;
                }
            }
        }
        Self {
            log_prior_pos: (n_pos as f64 / examples.len() as f64).ln(),
            log_prior_neg: (n_neg as f64 / examples.len() as f64).ln(),
            counts,
            total_pos,
            total_neg,
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.counts.len()
    }

    /// Posterior probability that `text` belongs to the positive class.
    /// Token-free text returns the prior.
    #[must_use]
    pub fn predict_proba(&self, text: &str) -> f64 {
        let v = self.counts.len() as f64;
        let mut lp = self.log_prior_pos;
        let mut ln = self.log_prior_neg;
        for token in tokenize(text) {
            let (cp, cn) = self.counts.get(&token).copied().unwrap_or((0, 0));
            // Laplace smoothing.
            lp += ((f64::from(cp) + 1.0) / (f64::from(self.total_pos) + v)).ln();
            ln += ((f64::from(cn) + 1.0) / (f64::from(self.total_neg) + v)).ln();
        }
        // Normalize in log space.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }

    /// Hard classification at the 0.5 threshold.
    #[must_use]
    pub fn predict(&self, text: &str) -> bool {
        self.predict_proba(text) > 0.5
    }
}

/// Built-in hedge corpus: positive = hedged, negative = confident. The
/// sentences are synthetic but follow the CoNLL-2010 Wikipedia-weasel /
/// BioScope cue distribution restricted to micro-blog register.
const HEDGE_CORPUS: &[(&str, bool)] = &[
    // hedged
    ("possibly a second device at the library", true),
    ("reportedly shots fired near the square", true),
    ("unconfirmed reports of casualties", true),
    ("maybe the game is delayed", true),
    ("sources say the suspect fled on foot", true),
    ("apparently the bridge is closed", true),
    ("allegedly involved in the attack", true),
    ("might be another explosion downtown", true),
    ("perhaps the score is tied", true),
    ("rumored transfer of the star player", true),
    ("could be a gas leak not a bomb", true),
    ("seems like the police are leaving", true),
    ("not sure if the road is open", true),
    ("waiting for confirmation on the arrest", true),
    ("some reports claim the mall is on lockdown", true),
    ("it is unclear whether anyone was hurt", true),
    ("heard there may be a curfew tonight", true),
    ("speculation about the coach being fired", true),
    ("supposedly the flight was cancelled", true),
    ("if true this changes everything", true),
    // confident
    ("two explosions at the marathon finish line", false),
    ("police confirmed the suspect is in custody", false),
    ("the bridge is closed to all traffic", false),
    ("touchdown puts the irish ahead by seven", false),
    ("the mayor announced a curfew at nine", false),
    ("firefighters contained the blaze", false),
    ("the final score was twenty one to ten", false),
    ("officials identified the victim", false),
    ("the airport reopened this morning", false),
    ("the game ended in overtime", false),
    ("emergency crews are on the scene", false),
    ("the road has been cleared", false),
    ("the team won the championship", false),
    ("classes are cancelled tomorrow", false),
    ("the power is back on downtown", false),
    ("the president addressed the nation tonight", false),
    ("three people were arrested at the protest", false),
    ("the train service resumed at noon", false),
    ("the stadium holds eighty thousand fans", false),
    ("the verdict was announced this afternoon", false),
];

/// An [`UncertaintyScorer`] backed by a trained [`NaiveBayes`] hedge
/// classifier.
///
/// # Examples
///
/// ```
/// use sstd_text::{NaiveBayesUncertaintyScorer, UncertaintyScorer};
///
/// let scorer = NaiveBayesUncertaintyScorer::with_builtin_corpus();
/// let hedged = scorer.uncertainty("possibly another device, unconfirmed");
/// let firm = scorer.uncertainty("police confirmed the arrest");
/// assert!(hedged.value() > firm.value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesUncertaintyScorer {
    model: NaiveBayes,
}

impl NaiveBayesUncertaintyScorer {
    /// Trains the scorer on the built-in hedge corpus.
    #[must_use]
    pub fn with_builtin_corpus() -> Self {
        Self { model: NaiveBayes::train(HEDGE_CORPUS) }
    }

    /// Wraps a custom-trained classifier (positive class = hedged).
    #[must_use]
    pub fn from_model(model: NaiveBayes) -> Self {
        Self { model }
    }

    /// The underlying classifier.
    #[must_use]
    pub fn model(&self) -> &NaiveBayes {
        &self.model
    }
}

impl UncertaintyScorer for NaiveBayesUncertaintyScorer {
    fn uncertainty(&self, text: &str) -> Uncertainty {
        Uncertainty::saturating(self.model.predict_proba(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HedgeUncertaintyScorer;

    #[test]
    fn training_learns_cue_words() {
        let nb = NaiveBayes::train(HEDGE_CORPUS);
        assert!(nb.vocab_size() > 50);
        assert!(nb.predict("allegedly a riot maybe"));
        assert!(!nb.predict("the final score was announced"));
    }

    #[test]
    fn unseen_words_fall_back_to_prior_signal() {
        let nb = NaiveBayes::train(HEDGE_CORPUS);
        // Entirely novel vocabulary: posterior stays near the prior (0.5
        // for the balanced corpus).
        let p = nb.predict_proba("zxqv wklm ptrs");
        assert!((p - 0.5).abs() < 0.1, "p = {p}");
    }

    #[test]
    fn empty_text_returns_prior() {
        let nb = NaiveBayes::train(HEDGE_CORPUS);
        assert!((nb.predict_proba("") - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn one_class_corpus_rejected() {
        let _ = NaiveBayes::train(&[("a", true), ("b", true)]);
    }

    #[test]
    fn scorer_orders_hedged_above_confident() {
        let s = NaiveBayesUncertaintyScorer::with_builtin_corpus();
        let pairs = [
            ("maybe shots fired, unconfirmed", "police confirmed shots fired"),
            ("sources say the game is delayed", "the game is delayed two hours"),
            ("allegedly a gas leak", "crews repaired the gas leak"),
        ];
        for (hedged, firm) in pairs {
            assert!(
                s.uncertainty(hedged).value() > s.uncertainty(firm).value(),
                "{hedged:?} vs {firm:?}"
            );
        }
    }

    #[test]
    fn classifier_generalizes_beyond_the_lexicon() {
        // "if true" is a phrase cue the token-set lexicon can only catch
        // via its phrase list; the classifier learns the tokens directly.
        let nb = NaiveBayesUncertaintyScorer::with_builtin_corpus();
        let lex = HedgeUncertaintyScorer::new();
        let text = "if true the arena is evacuated";
        assert!(nb.uncertainty(text).value() > 0.5);
        // Both scorers flag it (the lexicon via its phrase list) — the
        // classifier additionally produces a calibrated probability.
        assert!(lex.uncertainty(text).value() > 0.0);
    }

    #[test]
    fn custom_corpus_domain_adaptation() {
        // A domain corpus where "breaking" signals hedging (live unverified
        // coverage): the classifier adapts, the fixed lexicon cannot.
        let nb = NaiveBayes::train(&[
            ("breaking possible incident downtown", true),
            ("breaking early reports of smoke", true),
            ("official statement released", false),
            ("statement confirms the closure", false),
        ]);
        let scorer = NaiveBayesUncertaintyScorer::from_model(nb);
        use crate::UncertaintyScorer as _;
        assert!(scorer.uncertainty("breaking something happening").value() > 0.5);
    }
}
