//! Independence scoring: original observation vs. copied content.
//!
//! The paper "classified the retweets or tweets that are significantly
//! similar to the previous tweets within a time interval as repeated
//! claims and assign them relatively low independent scores" (§V-A2).
//! [`RetweetIndependenceScorer`] implements exactly that: explicit
//! retweets get the lowest score, near-duplicates (high Jaccard
//! similarity to a recent post) get a low score, everything else is
//! treated as an original observation.

use crate::{jaccard_similarity, TokenSet};
use sstd_types::{Independence, RawPost, Timestamp};
use std::collections::VecDeque;

/// Assigns an [`Independence`] score `η ∈ [0, 1]` to a post.
///
/// Implementations may be stateful (they typically remember recent posts
/// to detect copies), hence `&mut self`.
pub trait IndependenceScorer {
    /// Scores `post`, updating internal state with it.
    fn independence(&mut self, post: &RawPost) -> Independence;
}

/// Retweet/near-duplicate detector with a sliding time window.
///
/// # Examples
///
/// ```
/// use sstd_text::{IndependenceScorer, RetweetIndependenceScorer};
/// use sstd_types::{RawPost, SourceId, Timestamp};
///
/// let mut s = RetweetIndependenceScorer::new(60, 0.8);
/// let original = RawPost::new(SourceId::new(0), Timestamp::from_secs(0), "bomb at the library");
/// let copy = RawPost::retweet(SourceId::new(1), Timestamp::from_secs(10), "bomb at the library", 0);
/// assert_eq!(s.independence(&original).value(), 1.0);
/// assert!(s.independence(&copy).value() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct RetweetIndependenceScorer {
    window_secs: u64,
    similarity_threshold: f64,
    retweet_score: f64,
    duplicate_score: f64,
    recent: VecDeque<(Timestamp, TokenSet)>,
}

impl RetweetIndependenceScorer {
    /// Creates a scorer that compares each post against posts from the
    /// last `window_secs` seconds and treats Jaccard similarity above
    /// `similarity_threshold` as a copy.
    ///
    /// # Panics
    ///
    /// Panics unless `similarity_threshold` is in `(0, 1]`.
    #[must_use]
    pub fn new(window_secs: u64, similarity_threshold: f64) -> Self {
        assert!(
            similarity_threshold > 0.0 && similarity_threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        Self {
            window_secs,
            similarity_threshold,
            retweet_score: 0.1,
            duplicate_score: 0.3,
            recent: VecDeque::new(),
        }
    }

    /// Overrides the scores assigned to explicit retweets and to detected
    /// near-duplicates.
    ///
    /// # Panics
    ///
    /// Panics unless both scores are in `[0, 1]`.
    #[must_use]
    pub fn with_scores(mut self, retweet_score: f64, duplicate_score: f64) -> Self {
        assert!((0.0..=1.0).contains(&retweet_score));
        assert!((0.0..=1.0).contains(&duplicate_score));
        self.retweet_score = retweet_score;
        self.duplicate_score = duplicate_score;
        self
    }

    /// Number of posts currently retained in the comparison window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.recent.len()
    }

    fn evict_expired(&mut self, now: Timestamp) {
        while let Some((t, _)) = self.recent.front() {
            if now.secs_since(*t) > self.window_secs {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }
}

impl IndependenceScorer for RetweetIndependenceScorer {
    fn independence(&mut self, post: &RawPost) -> Independence {
        self.evict_expired(post.time());
        let tokens = TokenSet::from_text(post.text());

        let score = if post.retweet_of().is_some() {
            self.retweet_score
        } else if self
            .recent
            .iter()
            .any(|(_, prev)| jaccard_similarity(prev, &tokens) >= self.similarity_threshold)
        {
            self.duplicate_score
        } else {
            1.0
        };

        self.recent.push_back((post.time(), tokens));
        Independence::saturating(score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_types::SourceId;

    fn post(src: u32, t: u64, text: &str) -> RawPost {
        RawPost::new(SourceId::new(src), Timestamp::from_secs(t), text)
    }

    #[test]
    fn first_post_is_independent() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8);
        assert_eq!(s.independence(&post(0, 0, "explosion downtown")).value(), 1.0);
    }

    #[test]
    fn explicit_retweet_scores_lowest() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8);
        let rt = RawPost::retweet(SourceId::new(1), Timestamp::from_secs(5), "RT explosion", 0);
        assert_eq!(s.independence(&rt).value(), 0.1);
    }

    #[test]
    fn near_duplicate_within_window_scores_low() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8);
        let _ = s.independence(&post(0, 0, "suspect fleeing on foot near bridge"));
        let dup = s.independence(&post(1, 30, "suspect fleeing on foot near bridge"));
        assert_eq!(dup.value(), 0.3);
    }

    #[test]
    fn duplicate_outside_window_is_independent() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8);
        let _ = s.independence(&post(0, 0, "suspect fleeing on foot near bridge"));
        let later = s.independence(&post(1, 300, "suspect fleeing on foot near bridge"));
        assert_eq!(later.value(), 1.0);
    }

    #[test]
    fn dissimilar_posts_stay_independent() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8);
        let _ = s.independence(&post(0, 0, "explosion near the finish line"));
        let other = s.independence(&post(1, 10, "library locked down as precaution"));
        assert_eq!(other.value(), 1.0);
    }

    #[test]
    fn window_evicts_old_posts() {
        let mut s = RetweetIndependenceScorer::new(10, 0.8);
        let _ = s.independence(&post(0, 0, "first"));
        let _ = s.independence(&post(1, 5, "second"));
        assert_eq!(s.window_len(), 2);
        let _ = s.independence(&post(2, 100, "third"));
        assert_eq!(s.window_len(), 1, "expired posts evicted");
    }

    #[test]
    fn custom_scores_apply() {
        let mut s = RetweetIndependenceScorer::new(60, 0.8).with_scores(0.0, 0.5);
        let rt = RawPost::retweet(SourceId::new(1), Timestamp::from_secs(1), "x", 0);
        assert_eq!(s.independence(&rt).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn zero_threshold_panics() {
        let _ = RetweetIndependenceScorer::new(60, 0.0);
    }
}
