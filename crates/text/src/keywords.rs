//! Event keyword filtering — the first stage of the paper's pipeline
//! ("we first used a set of pre-specified keywords to filter out tweets
//! that are irrelevant to the event of interests", §V-A2).

use crate::TokenSet;

/// Keeps only posts mentioning at least one tracked event keyword.
///
/// # Examples
///
/// ```
/// use sstd_text::KeywordFilter;
///
/// let f = KeywordFilter::new(["boston", "marathon", "bombing"]);
/// assert!(f.matches("Explosion at the Boston marathon finish line"));
/// assert!(!f.matches("Nice weather today"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordFilter {
    keywords: Vec<String>,
}

impl KeywordFilter {
    /// Creates a filter from event query terms (case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if no keyword is given — a keywordless filter would silently
    /// drop the whole stream.
    #[must_use]
    pub fn new<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let keywords: Vec<String> =
            keywords.into_iter().map(|k| k.as_ref().to_lowercase()).collect();
        assert!(!keywords.is_empty(), "keyword filter needs at least one keyword");
        Self { keywords }
    }

    /// The tracked keywords (lowercase).
    #[must_use]
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Whether `text` mentions any tracked keyword as a token.
    #[must_use]
    pub fn matches(&self, text: &str) -> bool {
        let tokens = TokenSet::from_text(text);
        self.keywords.iter().any(|k| tokens.contains(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_any_keyword() {
        let f = KeywordFilter::new(["paris", "shooting"]);
        assert!(f.matches("Shooting reported in central Paris"));
        assert!(f.matches("paris is on lockdown"));
        assert!(!f.matches("great concert last night"));
    }

    #[test]
    fn matching_is_token_based_not_substring() {
        let f = KeywordFilter::new(["osu"]);
        assert!(f.matches("stay safe #osu"));
        // "colosseum" contains "osu" as a substring but not as a token
        assert!(!f.matches("visiting the colosseum"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let f = KeywordFilter::new(["BOMBING"]);
        assert!(f.matches("bombing near the finish line"));
        assert_eq!(f.keywords(), &["bombing".to_string()]);
    }

    #[test]
    #[should_panic(expected = "at least one keyword")]
    fn empty_keywords_panic() {
        let _ = KeywordFilter::new(Vec::<String>::new());
    }
}
