//! Uncertainty (hedging) scoring.
//!
//! The paper trains a hedge classifier on the CoNLL-2010 shared task
//! ("Learning to detect hedges and their scope in natural language text")
//! and uses its output as the uncertainty score `κ`. We reproduce the
//! signal with the CoNLL-2010 hedge-cue inventory: each cue found in a
//! post raises `κ`, saturating below 1.

use crate::TokenSet;
use sstd_types::Uncertainty;

/// Assigns an [`Uncertainty`] score `κ ∈ [0, 1]` to a post.
pub trait UncertaintyScorer {
    /// Scores how much `text` hedges its assertion.
    fn uncertainty(&self, text: &str) -> Uncertainty;
}

/// Single-word hedge cues from the CoNLL-2010 Wikipedia/BioScope cue
/// inventories, restricted to those plausible in tweets.
const HEDGE_CUES: &[&str] = &[
    "may",
    "might",
    "maybe",
    "possibly",
    "possible",
    "perhaps",
    "probably",
    "likely",
    "unlikely",
    "apparently",
    "allegedly",
    "reportedly",
    "seems",
    "seemingly",
    "suggests",
    "unconfirmed",
    "unverified",
    "unclear",
    "uncertain",
    "speculation",
    "supposedly",
    "potentially",
    "could",
    "hear",
    "heard",
    "rumored",
    "rumoured",
];

/// Multi-word hedge cues matched on raw lowercase text.
const HEDGE_PHRASES: &[&str] = &[
    "not sure",
    "no confirmation",
    "can't confirm",
    "cannot confirm",
    "yet to confirm",
    "waiting for confirmation",
    "if true",
    "sources say",
    "some reports",
];

/// Lexicon ("hedge cue") uncertainty scorer.
///
/// Each matched cue contributes `per_cue` to the score, saturating at
/// `max_score`; a cue-free post scores 0.
///
/// # Examples
///
/// ```
/// use sstd_text::{HedgeUncertaintyScorer, UncertaintyScorer};
///
/// let s = HedgeUncertaintyScorer::new();
/// assert_eq!(s.uncertainty("Police confirmed the arrest").value(), 0.0);
/// assert!(s.uncertainty("Possibly a second suspect, unconfirmed").value() > 0.4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeUncertaintyScorer {
    per_cue: f64,
    max_score: f64,
}

impl Default for HedgeUncertaintyScorer {
    fn default() -> Self {
        Self { per_cue: 0.3, max_score: 0.9 }
    }
}

impl HedgeUncertaintyScorer {
    /// Creates a scorer with the default calibration (0.3 per cue, capped
    /// at 0.9).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-cue increment and the saturation cap.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < per_cue ≤ max_score ≤ 1`.
    #[must_use]
    pub fn with_calibration(per_cue: f64, max_score: f64) -> Self {
        assert!(per_cue > 0.0 && per_cue <= max_score && max_score <= 1.0);
        Self { per_cue, max_score }
    }

    fn count_cues(&self, text: &str) -> usize {
        let tokens = TokenSet::from_text(text);
        let lower = text.to_lowercase();
        HEDGE_CUES.iter().filter(|c| tokens.contains(c)).count()
            + HEDGE_PHRASES.iter().filter(|p| lower.contains(*p)).count()
    }
}

impl UncertaintyScorer for HedgeUncertaintyScorer {
    fn uncertainty(&self, text: &str) -> Uncertainty {
        let cues = self.count_cues(text) as f64;
        Uncertainty::saturating((cues * self.per_cue).min(self.max_score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_text_scores_zero() {
        let s = HedgeUncertaintyScorer::new();
        assert_eq!(s.uncertainty("Two explosions at the finish line").value(), 0.0);
    }

    #[test]
    fn single_cue_scores_per_cue() {
        let s = HedgeUncertaintyScorer::new();
        assert!((s.uncertainty("possibly an explosion").value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn multiple_cues_accumulate_and_saturate() {
        let s = HedgeUncertaintyScorer::new();
        let v =
            s.uncertainty("allegedly maybe possibly unconfirmed reports, not sure if true").value();
        assert_eq!(v, 0.9, "saturates at the cap");
    }

    #[test]
    fn phrases_count() {
        let s = HedgeUncertaintyScorer::new();
        assert!(s.uncertainty("sources say there was a blast").value() > 0.0);
        assert!(s.uncertainty("can't confirm anything yet").value() > 0.0);
    }

    #[test]
    fn paper_osu_tweet_is_hedged() {
        // "OSU POSSIBLE SHOOTING" — the paper's Table I example hedges.
        let s = HedgeUncertaintyScorer::new();
        assert!(s.uncertainty("OSU POSSIBLE SHOOTING: I am on campus").value() > 0.0);
    }

    #[test]
    fn custom_calibration() {
        let s = HedgeUncertaintyScorer::with_calibration(0.5, 0.5);
        assert_eq!(s.uncertainty("maybe perhaps").value(), 0.5);
    }

    #[test]
    #[should_panic]
    fn invalid_calibration_panics() {
        let _ = HedgeUncertaintyScorer::with_calibration(0.9, 0.5);
    }
}
