//! Property tests for the text substrate: tokenizer, Jaccard metric,
//! and the online clusterer on empty, single-token, and unicode/emoji
//! content.

use sstd_testkit::{check, domain, gens, Gen};
use sstd_text::{
    jaccard_distance, jaccard_similarity, tokenize, ClaimClusterer, ClusterConfig, TokenSet,
};

// ---------------------------------------------------------------------
// Tokenizer edge cases
// ---------------------------------------------------------------------

#[test]
fn empty_and_whitespace_posts_tokenize_to_nothing() {
    for text in ["", "   ", "\t\n", "\u{200B}"] {
        assert!(tokenize(text).is_empty(), "{text:?} should produce no tokens");
        assert!(TokenSet::from_text(text).is_empty());
    }
}

#[test]
fn punctuation_and_emoji_only_posts_are_empty() {
    for text in ["!!!", "... --- ...", "🔥🔥🔥", "😱 🚒", "«»—„“"] {
        assert!(tokenize(text).is_empty(), "{text:?} has no alphanumeric content");
    }
}

#[test]
fn single_token_posts_survive_normalization() {
    assert_eq!(tokenize("FLOOD"), vec!["flood"]);
    assert_eq!(tokenize("flood!"), vec!["flood"]);
    assert_eq!(tokenize("  flood  "), vec!["flood"]);
    let set = TokenSet::from_text("flood");
    assert_eq!(set.len(), 1);
    assert!(set.contains("flood"));
}

#[test]
fn unicode_words_are_kept_and_emoji_split_tokens() {
    // Accented latin, CJK, Hangul, and Cyrillic are alphanumeric and must
    // survive; emoji are not and must act as separators.
    let tokens = tokenize("Café 日本語 서울 москва");
    assert_eq!(tokens, vec!["café", "日本語", "서울", "москва"]);
    assert_eq!(tokenize("bridge🔥closed"), vec!["bridge", "closed"]);
}

#[test]
fn tokenization_is_idempotent_on_generated_posts() {
    check("tokenization_is_idempotent_on_generated_posts", 1_000, &domain::post_text(), |text| {
        let once = tokenize(text);
        let again = tokenize(&once.join(" "));
        if once == again {
            Ok(())
        } else {
            Err(format!("tokenize is not idempotent: {once:?} -> {again:?}"))
        }
    });
}

#[test]
fn token_sets_ignore_order_and_duplication() {
    check(
        "token_sets_ignore_order_and_duplication",
        1_000,
        &domain::post_tokens(),
        |words: &Vec<String>| {
            let forward = TokenSet::from_text(&words.join(" "));
            let mut reversed_words = words.clone();
            reversed_words.reverse();
            let mut doubled = reversed_words.join(" ");
            doubled.push(' ');
            doubled.push_str(&words.join(" "));
            let reversed = TokenSet::from_text(&doubled);
            if forward.len() == reversed.len()
                && forward.intersection_size(&reversed) == forward.len()
            {
                Ok(())
            } else {
                Err(format!("order/duplication changed the set: {forward:?} vs {reversed:?}"))
            }
        },
    );
}

// ---------------------------------------------------------------------
// Jaccard metric invariants
// ---------------------------------------------------------------------

fn three_posts() -> Gen<Vec<Vec<String>>> {
    gens::vec_of(domain::post_tokens(), 3, 3)
}

#[test]
fn jaccard_similarity_is_bounded_symmetric_and_reflexive() {
    check(
        "jaccard_similarity_is_bounded_symmetric_and_reflexive",
        1_000,
        &three_posts(),
        |posts| {
            let a = TokenSet::from_text(&posts[0].join(" "));
            let b = TokenSet::from_text(&posts[1].join(" "));
            let sim = jaccard_similarity(&a, &b);
            if !(0.0..=1.0).contains(&sim) {
                return Err(format!("similarity {sim} outside [0, 1]"));
            }
            if (sim - jaccard_similarity(&b, &a)).abs() > 1e-12 {
                return Err("similarity is not symmetric".into());
            }
            if (jaccard_similarity(&a, &a) - 1.0).abs() > 1e-12 {
                return Err("self-similarity must be 1 (including the empty set)".into());
            }
            if (jaccard_distance(&a, &b) - (1.0 - sim)).abs() > 1e-12 {
                return Err("distance must be 1 - similarity".into());
            }
            Ok(())
        },
    );
}

#[test]
fn jaccard_distance_satisfies_the_triangle_inequality() {
    // Jaccard distance is a true metric (Levandowsky & Winter 1971); the
    // clusterer's diameter logic silently relies on it.
    check("jaccard_distance_satisfies_the_triangle_inequality", 1_000, &three_posts(), |posts| {
        let a = TokenSet::from_text(&posts[0].join(" "));
        let b = TokenSet::from_text(&posts[1].join(" "));
        let c = TokenSet::from_text(&posts[2].join(" "));
        let ab = jaccard_distance(&a, &b);
        let bc = jaccard_distance(&b, &c);
        let ac = jaccard_distance(&a, &c);
        if ac > ab + bc + 1e-12 {
            Err(format!("triangle violated: d(a,c)={ac} > d(a,b)={ab} + d(b,c)={bc}"))
        } else {
            Ok(())
        }
    });
}

#[test]
fn empty_sets_are_identical_not_infinitely_far() {
    let empty = TokenSet::from_text("");
    assert_eq!(jaccard_similarity(&empty, &empty), 1.0);
    assert_eq!(jaccard_distance(&empty, &empty), 0.0);
    let some = TokenSet::from_text("flood bridge");
    assert_eq!(jaccard_similarity(&empty, &some), 0.0);
}

// ---------------------------------------------------------------------
// Clusterer properties
// ---------------------------------------------------------------------

#[test]
fn clusterer_is_deterministic_and_ids_are_dense() {
    let posts_gen = gens::vec_of(domain::post_text(), 0, 30);
    check("clusterer_is_deterministic_and_ids_are_dense", 300, &posts_gen, |posts| {
        let mut a = ClaimClusterer::new(ClusterConfig::default());
        let mut b = ClaimClusterer::new(ClusterConfig::default());
        let ids_a: Vec<_> = posts.iter().map(|p| a.assign(p)).collect();
        let ids_b: Vec<_> = posts.iter().map(|p| b.assign(p)).collect();
        if ids_a != ids_b {
            return Err("same post stream produced different assignments".into());
        }
        for id in &ids_a {
            if id.index() >= a.num_claims() {
                return Err(format!("claim id {id:?} outside 0..{}", a.num_claims()));
            }
        }
        // Every claim that exists holds at least one post, and sizes add
        // up to the number of posts.
        let total: usize =
            (0..a.num_claims()).map(|i| a.claim_size(sstd_types::ClaimId::new(i as u32))).sum();
        if total != posts.len() {
            return Err(format!("cluster sizes sum to {total}, expected {}", posts.len()));
        }
        Ok(())
    });
}

#[test]
fn identical_posts_share_a_claim() {
    let mut c = ClaimClusterer::new(ClusterConfig::default());
    let first = c.assign("explosion downtown bridge closed");
    let second = c.assign("explosion downtown bridge closed");
    assert_eq!(first, second, "identical posts are the same claim");
}

#[test]
fn empty_posts_cluster_together() {
    let mut c = ClaimClusterer::new(ClusterConfig::default());
    let a = c.assign("");
    let b = c.assign("🔥🔥🔥");
    let d = c.assign("   ");
    assert_eq!(a, b, "token-free posts are indistinguishable");
    assert_eq!(a, d);
}
