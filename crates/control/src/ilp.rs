//! Exact integer allocation — the paper's §VII-3 future-work idea,
//! implemented as a brute-force integer search (the problem sizes the DTM
//! faces per control epoch are tiny, so exact search is feasible and
//! serves as an upper bound for the PID heuristic).

use crate::DtmJob;
use sstd_runtime::ExecutionModel;
use std::collections::BTreeMap;

/// Searches worker counts and per-job priority assignments for the
/// combination that (1) maximizes predicted deadline hits and (2) among
/// ties, uses the fewest workers.
///
/// Priorities are chosen from a small discrete ladder per job
/// (1, 2, 4, 8), which is exactly the reachable set of the θ₃ = 2
/// multiplicative knob after a few control steps.
///
/// # Examples
///
/// ```
/// use sstd_control::IlpAllocator;
/// use sstd_control::DtmJob;
/// use sstd_runtime::{ExecutionModel, JobId};
///
/// let jobs = vec![
///     DtmJob::new(JobId::new(0), 10_000.0, 5.0, 4),
///     DtmJob::new(JobId::new(1), 1_000.0, 60.0, 4),
/// ];
/// let alloc = IlpAllocator::new(ExecutionModel::default(), 32);
/// let plan = alloc.allocate(&jobs);
/// assert!(plan.workers >= 1);
/// assert!(plan.predicted_hits <= jobs.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpAllocator {
    model: ExecutionModel,
    max_workers: usize,
}

/// The allocation an [`IlpAllocator`] search produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// Chosen worker-pool size.
    pub workers: usize,
    /// Chosen per-job priorities.
    pub priorities: BTreeMap<sstd_runtime::JobId, f64>,
    /// Number of jobs predicted (by the WCET model) to meet their
    /// deadline under this plan.
    pub predicted_hits: usize,
}

impl IlpAllocator {
    /// Creates an allocator bounded by `max_workers`.
    ///
    /// # Panics
    ///
    /// Panics if `max_workers` is zero.
    #[must_use]
    pub fn new(model: ExecutionModel, max_workers: usize) -> Self {
        assert!(max_workers >= 1, "need at least one worker");
        Self { model, max_workers }
    }

    /// Finds the best (workers, priorities) plan for `jobs`.
    #[must_use]
    pub fn allocate(&self, jobs: &[DtmJob]) -> AllocationPlan {
        const LADDER: [f64; 4] = [1.0, 2.0, 4.0, 8.0];
        let mut best: Option<AllocationPlan> = None;

        // Worker counts: powers of two up to the cap (the GCK's reachable
        // set), plus the cap itself.
        let mut worker_options: Vec<usize> = std::iter::successors(Some(1usize), |&w| {
            let n = w * 2;
            (n <= self.max_workers).then_some(n)
        })
        .collect();
        if !worker_options.contains(&self.max_workers) {
            worker_options.push(self.max_workers);
        }

        // Priority assignment search. For tractability each job picks its
        // ladder rung independently per candidate pool size, greedily from
        // most-urgent (largest data/deadline ratio) to least, since the
        // WCET share denominator couples jobs.
        for &workers in &worker_options {
            let mut order: Vec<usize> = (0..jobs.len()).collect();
            order.sort_by(|&a, &b| {
                let ka = jobs[a].data_size / jobs[a].deadline;
                let kb = jobs[b].data_size / jobs[b].deadline;
                kb.partial_cmp(&ka).unwrap()
            });
            let mut priorities: Vec<f64> = vec![1.0; jobs.len()];
            for &j in &order {
                let mut best_rung = 1.0;
                let mut best_hits = -1i64;
                for &rung in &LADDER {
                    priorities[j] = rung;
                    let hits = self.predicted_hits(jobs, workers, &priorities) as i64;
                    if hits > best_hits {
                        best_hits = hits;
                        best_rung = rung;
                    }
                }
                priorities[j] = best_rung;
            }
            let hits = self.predicted_hits(jobs, workers, &priorities);
            let plan = AllocationPlan {
                workers,
                priorities: jobs.iter().zip(&priorities).map(|(j, &p)| (j.job, p)).collect(),
                predicted_hits: hits,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    hits > b.predicted_hits || (hits == b.predicted_hits && workers < b.workers)
                }
            };
            if better {
                best = Some(plan);
            }
        }
        best.unwrap_or(AllocationPlan {
            workers: 1,
            priorities: BTreeMap::new(),
            predicted_hits: 0,
        })
    }

    fn predicted_hits(&self, jobs: &[DtmJob], workers: usize, priorities: &[f64]) -> usize {
        let total: f64 = priorities.iter().sum();
        jobs.iter()
            .zip(priorities)
            .filter(|(j, &p)| {
                let share = (p / total).max(1e-9);
                let wcet = self.model.job_wcet(j.data_size.max(1e-9), workers, share);
                wcet <= j.deadline
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstd_runtime::JobId;

    fn model() -> ExecutionModel {
        ExecutionModel::new(0.0, 0.001, 0.001)
    }

    #[test]
    fn trivially_feasible_uses_one_worker() {
        let jobs = vec![DtmJob::new(JobId::new(0), 100.0, 1_000.0, 1)];
        let plan = IlpAllocator::new(model(), 64).allocate(&jobs);
        assert_eq!(plan.workers, 1);
        assert_eq!(plan.predicted_hits, 1);
    }

    #[test]
    fn infeasible_load_scales_out() {
        // 1M units × 0.001 s/unit = 1000 s of work; deadline 40 s needs
        // ≥ 25 workers.
        let jobs = vec![DtmJob::new(JobId::new(0), 1_000_000.0, 40.0, 32)];
        let plan = IlpAllocator::new(model(), 64).allocate(&jobs);
        assert!(plan.workers >= 32, "picked {} workers", plan.workers);
        assert_eq!(plan.predicted_hits, 1);
    }

    #[test]
    fn urgent_job_gets_higher_priority() {
        let jobs = vec![
            DtmJob::new(JobId::new(0), 50_000.0, 9.0, 4),   // urgent
            DtmJob::new(JobId::new(1), 50_000.0, 500.0, 4), // relaxed
        ];
        let plan = IlpAllocator::new(model(), 16).allocate(&jobs);
        assert!(
            plan.priorities[&JobId::new(0)] >= plan.priorities[&JobId::new(1)],
            "priorities: {:?}",
            plan.priorities
        );
        assert_eq!(plan.predicted_hits, 2);
    }

    #[test]
    fn empty_job_set() {
        let plan = IlpAllocator::new(model(), 8).allocate(&[]);
        assert_eq!(plan.predicted_hits, 0);
        assert!(plan.workers >= 1);
    }

    #[test]
    fn hits_never_exceed_job_count() {
        let jobs: Vec<DtmJob> =
            (0..5).map(|i| DtmJob::new(JobId::new(i), 1_000.0, 2.0, 2)).collect();
        let plan = IlpAllocator::new(model(), 8).allocate(&jobs);
        assert!(plan.predicted_hits <= 5);
    }
}
