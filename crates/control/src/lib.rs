//! Deadline-driven feedback control (paper §IV-C).
//!
//! The Dynamic Task Manager (DTM) monitors the execution of every
//! truth-discovery job and keeps jobs on schedule with a
//! Proportional–Integral–Derivative controller per job (paper Eq. 9):
//!
//! - the **error** is the gap between a job's predicted finish time (via
//!   the WCET model) and its deadline;
//! - the **Local Control Knob** (LCK) scales the job's priority by `θ₃`
//!   when it falls behind;
//! - the **Global Control Knob** (GCK) scales the worker pool by `θ₄`
//!   when the system as a whole falls behind.
//!
//! The paper's tuned gains (`Kp = 1.2, Ki = 0.3, Kd = 0.2`) and knob
//! factors (`θ₃ = 2, θ₄ = 1.5`) are the defaults.
//!
//! [`IlpAllocator`] implements the paper's §VII-3 future-work idea — an
//! exact integer search over worker counts and priority assignments — as
//! a comparison point for the PID heuristic.
//!
//! # Examples
//!
//! ```
//! use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
//! use sstd_runtime::{Cluster, ExecutionModel, JobId};
//!
//! let jobs = vec![
//!     DtmJob::new(JobId::new(0), 4_000.0, 8.0, 4),
//!     DtmJob::new(JobId::new(1), 1_000.0, 12.0, 4),
//! ];
//! let mut dtm = DynamicTaskManager::new(
//!     DtmConfig::default(),
//!     Cluster::homogeneous(8, 1.0),
//!     ExecutionModel::default(),
//! );
//! let outcome = dtm.run(&jobs).expect("valid config");
//! assert_eq!(outcome.report.completed.len(), 8);
//! assert!(!outcome.control.is_empty(), "every sampling epoch is recorded");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod dtm;
mod ilp;
mod knobs;
mod pid;

pub use dtm::{DtmConfig, DtmConfigBuilder, DtmJob, DtmOutcome, DynamicTaskManager};
pub use ilp::IlpAllocator;
pub use knobs::{GlobalKnob, LocalKnob};
pub use pid::PidController;
pub use sstd_obs::{ControlTick, ControlTrace};
