//! The PID controller of paper Eq. 9.

/// A discrete PID controller:
/// `y(k) = Kp·e(k) + Ki·Σ e(k)·Δt + Kd·Δe(k)/Δt`.
///
/// The integral term is clamped (anti-windup) so a long period of
/// saturation — e.g. a hopelessly tight deadline — does not poison later
/// control decisions.
///
/// # Examples
///
/// ```
/// use sstd_control::PidController;
///
/// let mut pid = PidController::new(1.2, 0.3, 0.2);
/// let y1 = pid.update(2.0, 1.0);
/// let y2 = pid.update(1.0, 1.0); // error shrinking → derivative negative
/// assert!(y1 > 0.0);
/// assert!(y2 < y1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PidController {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    integral_limit: f64,
    last_error: Option<f64>,
}

impl PidController {
    /// Creates a controller with the given gains.
    ///
    /// # Panics
    ///
    /// Panics unless every gain is finite and non-negative.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        for (name, g) in [("Kp", kp), ("Ki", ki), ("Kd", kd)] {
            assert!(g.is_finite() && g >= 0.0, "{name} must be finite and non-negative");
        }
        Self { kp, ki, kd, integral: 0.0, integral_limit: 100.0, last_error: None }
    }

    /// The paper's tuned gains: `Kp = 1.2, Ki = 0.3, Kd = 0.2` (§V-A3).
    #[must_use]
    pub fn paper_tuned() -> Self {
        Self::new(1.2, 0.3, 0.2)
    }

    /// Sets the anti-windup clamp on the integral term.
    ///
    /// # Panics
    ///
    /// Panics unless `limit` is positive.
    #[must_use]
    pub fn with_integral_limit(mut self, limit: f64) -> Self {
        assert!(limit > 0.0, "integral limit must be positive");
        self.integral_limit = limit;
        self
    }

    /// Feeds one error sample taken `dt` seconds after the previous one
    /// and returns the control signal.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is finite and positive.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        self.integral =
            (self.integral + error * dt).clamp(-self.integral_limit, self.integral_limit);
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        self.kp * error + self.ki * self.integral + self.kd * derivative
    }

    /// Clears all accumulated state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// The accumulated integral term (for observability in tests/metrics).
    #[must_use]
    pub const fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = PidController::new(2.0, 0.0, 0.0);
        assert_eq!(pid.update(3.0, 1.0), 6.0);
        assert_eq!(pid.update(-1.5, 1.0), -3.0);
    }

    #[test]
    fn integral_accumulates_persistent_error() {
        let mut pid = PidController::new(0.0, 1.0, 0.0);
        assert_eq!(pid.update(1.0, 1.0), 1.0);
        assert_eq!(pid.update(1.0, 1.0), 2.0);
        assert_eq!(pid.update(1.0, 1.0), 3.0);
    }

    #[test]
    fn integral_is_clamped() {
        let mut pid = PidController::new(0.0, 1.0, 0.0).with_integral_limit(2.0);
        for _ in 0..10 {
            let _ = pid.update(5.0, 1.0);
        }
        assert_eq!(pid.integral(), 2.0);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = PidController::new(0.0, 0.0, 1.0);
        assert_eq!(pid.update(1.0, 1.0), 0.0, "no previous sample");
        assert_eq!(pid.update(3.0, 1.0), 2.0);
        assert_eq!(pid.update(3.0, 0.5), 0.0, "steady error has zero derivative");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::paper_tuned();
        let _ = pid.update(4.0, 1.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // After reset, the derivative term starts over.
        let y = pid.update(1.0, 1.0);
        assert!((y - (1.2 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn zero_error_settles_to_zero_signal() {
        let mut pid = PidController::new(1.0, 0.0, 1.0);
        let _ = pid.update(2.0, 1.0);
        let _ = pid.update(0.0, 1.0);
        let y = pid.update(0.0, 1.0);
        assert_eq!(y, 0.0);
    }

    #[test]
    #[should_panic(expected = "Kp must be")]
    fn negative_gain_rejected() {
        let _ = PidController::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let mut pid = PidController::paper_tuned();
        let _ = pid.update(1.0, 0.0);
    }
}
