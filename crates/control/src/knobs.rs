//! Control knobs: how PID signals become scheduling actions (paper
//! §IV-C2/C4).

/// The Local Control Knob: a job's priority, stepped multiplicatively by
/// `θ₃` when the control signal exceeds a deadband.
///
/// # Examples
///
/// ```
/// use sstd_control::LocalKnob;
///
/// let mut k = LocalKnob::new(2.0, 1.0, 0.125, 64.0);
/// assert_eq!(k.apply(5.0), 2.0, "behind schedule → priority doubles");
/// assert_eq!(k.apply(-5.0), 1.0, "ahead → halves back");
/// assert_eq!(k.apply(0.01), 1.0, "inside the deadband → unchanged");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LocalKnob {
    theta3: f64,
    value: f64,
    min: f64,
    max: f64,
    deadband: f64,
}

impl LocalKnob {
    /// Creates a priority knob with step factor `theta3` starting at
    /// `initial`, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `theta3 > 1`, `0 < min <= initial <= max`.
    #[must_use]
    pub fn new(theta3: f64, initial: f64, min: f64, max: f64) -> Self {
        assert!(theta3 > 1.0, "theta3 must exceed 1");
        assert!(min > 0.0 && min <= initial && initial <= max, "need 0 < min <= initial <= max");
        Self { theta3, value: initial, min, max, deadband: 0.1 }
    }

    /// Current priority value.
    #[must_use]
    pub const fn value(&self) -> f64 {
        self.value
    }

    /// Applies a control signal and returns the new priority.
    pub fn apply(&mut self, signal: f64) -> f64 {
        if signal > self.deadband {
            self.value = (self.value * self.theta3).min(self.max);
        } else if signal < -self.deadband {
            self.value = (self.value / self.theta3).max(self.min);
        }
        self.value
    }
}

/// The Global Control Knob: the worker-pool size, scaled by `θ₄` when the
/// aggregate control signal says the whole system is behind.
///
/// # Examples
///
/// ```
/// use sstd_control::GlobalKnob;
///
/// let mut k = GlobalKnob::new(1.5, 4, 1, 64);
/// assert_eq!(k.apply(10.0), 6, "behind → grow by θ₄");
/// assert_eq!(k.apply(-10.0), 4, "ahead → shrink");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalKnob {
    theta4: f64,
    value: usize,
    min: usize,
    max: usize,
    deadband: f64,
}

impl GlobalKnob {
    /// Creates a worker-count knob with scale factor `theta4` starting at
    /// `initial`, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `theta4 > 1` and `1 <= min <= initial <= max`.
    #[must_use]
    pub fn new(theta4: f64, initial: usize, min: usize, max: usize) -> Self {
        assert!(theta4 > 1.0, "theta4 must exceed 1");
        assert!(min >= 1 && min <= initial && initial <= max, "need 1 <= min <= initial <= max");
        Self { theta4, value: initial, min, max, deadband: 0.1 }
    }

    /// Current worker count.
    #[must_use]
    pub const fn value(&self) -> usize {
        self.value
    }

    /// Applies a control signal and returns the new worker count.
    pub fn apply(&mut self, signal: f64) -> usize {
        if signal > self.deadband {
            let grown = ((self.value as f64) * self.theta4).ceil() as usize;
            self.value = grown.clamp(self.min, self.max);
        } else if signal < -self.deadband {
            let shrunk = ((self.value as f64) / self.theta4).floor() as usize;
            self.value = shrunk.clamp(self.min, self.max);
        }
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_knob_clamps_at_bounds() {
        let mut k = LocalKnob::new(2.0, 1.0, 0.5, 4.0);
        assert_eq!(k.apply(1.0), 2.0);
        assert_eq!(k.apply(1.0), 4.0);
        assert_eq!(k.apply(1.0), 4.0, "clamped at max");
        for _ in 0..5 {
            let _ = k.apply(-1.0);
        }
        assert_eq!(k.value(), 0.5, "clamped at min");
    }

    #[test]
    fn global_knob_grows_and_shrinks() {
        let mut k = GlobalKnob::new(1.5, 8, 1, 100);
        assert_eq!(k.apply(2.0), 12);
        assert_eq!(k.apply(-2.0), 8);
        for _ in 0..10 {
            let _ = k.apply(-5.0);
        }
        assert_eq!(k.value(), 1, "never below min");
    }

    #[test]
    fn deadband_suppresses_jitter() {
        let mut k = GlobalKnob::new(1.5, 4, 1, 10);
        assert_eq!(k.apply(0.05), 4);
        assert_eq!(k.apply(-0.05), 4);
    }

    #[test]
    fn growth_is_monotone_until_max() {
        let mut k = GlobalKnob::new(1.5, 1, 1, 16);
        let mut last = 1;
        for _ in 0..10 {
            let v = k.apply(5.0);
            assert!(v >= last);
            last = v;
        }
        assert_eq!(last, 16);
    }

    #[test]
    #[should_panic(expected = "theta3")]
    fn theta3_must_exceed_one() {
        let _ = LocalKnob::new(1.0, 1.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "min <= initial")]
    fn global_bounds_validated() {
        let _ = GlobalKnob::new(1.5, 0, 1, 4);
    }
}
