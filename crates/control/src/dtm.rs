//! The Dynamic Task Manager: the closed control loop over an execution
//! backend (paper Fig. 2 and 3).
//!
//! The DTM is written against [`ExecutionBackend`], so the same PID /
//! knob machinery drives the virtual-clock simulator (the default, via
//! [`DynamicTaskManager::run`]) or real OS threads (via
//! [`DynamicTaskManager::run_on`] with a `ThreadedEngine`) without a
//! single backend-specific branch.

use crate::{GlobalKnob, LocalKnob, PidController};
use sstd_obs::{ControlTick, ControlTrace, EventStore};
use sstd_runtime::{
    Cluster, DesEngine, ExecutionBackend, ExecutionModel, ExecutionReport, FastAbort, FaultPlan,
    FaultStats, JobId, RetryPolicy, TaskSpec,
};
use sstd_types::{ConfigError, SstdError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One truth-discovery job as the DTM sees it: a data volume with a soft
/// deadline, split into equal tasks (paper §IV-C4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmJob {
    /// Job identity.
    pub job: JobId,
    /// Total data volume (abstract units, e.g. tweets).
    pub data_size: f64,
    /// Soft deadline in virtual seconds from submission.
    pub deadline: f64,
    /// Number of equal tasks to split into ("we keep the number of tasks
    /// in each TD job small", §IV-C4).
    pub num_tasks: usize,
}

impl DtmJob {
    /// Creates a job description.
    ///
    /// # Panics
    ///
    /// Panics unless `data_size >= 0`, `deadline > 0` and `num_tasks > 0`.
    #[must_use]
    pub fn new(job: JobId, data_size: f64, deadline: f64, num_tasks: usize) -> Self {
        assert!(data_size >= 0.0, "data size must be non-negative");
        assert!(deadline > 0.0, "deadline must be positive");
        assert!(num_tasks > 0, "need at least one task");
        Self { job, data_size, deadline, num_tasks }
    }
}

/// DTM configuration: PID gains, knob factors, sampling period, pool
/// bounds and the scheduling policy handed to the execution backend.
/// Defaults are the paper's tuned values.
///
/// This struct is the *single* configuration path for a DTM run: when the
/// DTM takes over a backend (its own DES, or an external engine via
/// [`DynamicTaskManager::run_on`]) it installs `initial_workers`, `retry`
/// and `fast_abort` on the backend before submitting work, overwriting
/// anything preset there. Policy set directly on a backend therefore
/// cannot silently diverge from what the controller assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmConfig {
    /// Proportional gain (paper: 1.2).
    pub kp: f64,
    /// Integral gain (paper: 0.3).
    pub ki: f64,
    /// Derivative gain (paper: 0.2).
    pub kd: f64,
    /// LCK multiplier θ₃ (paper: 2).
    pub theta3: f64,
    /// GCK multiplier θ₄ (paper: 1.5).
    pub theta4: f64,
    /// Controller sampling period (paper: 1 second).
    pub sample_period: f64,
    /// Initial worker count.
    pub initial_workers: usize,
    /// Worker-pool cap.
    pub max_workers: usize,
    /// Whether feedback control is active (off = static allocation
    /// ablation).
    pub control_enabled: bool,
    /// Retry/backoff/quarantine policy handed to the execution engine.
    pub retry: RetryPolicy,
    /// Straggler fast-abort, if enabled.
    pub fast_abort: Option<FastAbort>,
}

impl Default for DtmConfig {
    fn default() -> Self {
        Self {
            kp: 1.2,
            ki: 0.3,
            kd: 0.2,
            theta3: 2.0,
            theta4: 1.5,
            sample_period: 1.0,
            initial_workers: 4,
            max_workers: 64,
            control_enabled: true,
            retry: RetryPolicy::default(),
            fast_abort: None,
        }
    }
}

impl DtmConfig {
    /// Starts a fallible builder seeded with the paper's tuned defaults.
    #[must_use]
    pub fn builder() -> DtmConfigBuilder {
        DtmConfigBuilder::default()
    }

    /// Checks every field, naming the first invalid one.
    ///
    /// The DTM run family calls this before touching the backend, so a
    /// hand-assembled struct literal with a bad value surfaces as an
    /// [`SstdError::Config`] instead of a panic deep inside the PID.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] when a gain is negative or non-finite, a knob
    /// factor or the sampling period is non-positive or non-finite, the
    /// pool starts empty, or the pool cap is below the initial size.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, g) in [("kp", self.kp), ("ki", self.ki), ("kd", self.kd)] {
            if !(g.is_finite() && g >= 0.0) {
                return Err(ConfigError::new(
                    name,
                    format!("gain must be finite and non-negative, got {g}"),
                ));
            }
        }
        for (name, v) in [("theta3", self.theta3), ("theta4", self.theta4)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::new(
                    name,
                    format!("knob factor must be finite and positive, got {v}"),
                ));
            }
        }
        if !(self.sample_period.is_finite() && self.sample_period > 0.0) {
            return Err(ConfigError::new(
                "sample_period",
                format!("must be finite and positive, got {}", self.sample_period),
            ));
        }
        if self.initial_workers == 0 {
            return Err(ConfigError::new("initial_workers", "need at least one worker"));
        }
        if self.max_workers < self.initial_workers {
            return Err(ConfigError::new(
                "max_workers",
                format!(
                    "cap {} is below the initial pool of {}",
                    self.max_workers, self.initial_workers
                ),
            ));
        }
        Ok(())
    }
}

/// A fallible builder for [`DtmConfig`]: set any subset of fields, then
/// [`build`](Self::build) validates them all at once via
/// [`DtmConfig::validate`].
///
/// # Examples
///
/// ```
/// use sstd_control::DtmConfig;
///
/// let cfg = DtmConfig::builder()
///     .initial_workers(2)
///     .max_workers(32)
///     .control_enabled(false)
///     .build()
///     .expect("valid");
/// assert_eq!(cfg.initial_workers, 2);
/// assert!(!cfg.control_enabled);
///
/// let err = DtmConfig::builder().kp(f64::NAN).build().unwrap_err();
/// assert_eq!(err.field(), "kp");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DtmConfigBuilder {
    config: DtmConfig,
}

impl DtmConfigBuilder {
    /// Sets the proportional gain.
    #[must_use]
    pub fn kp(mut self, kp: f64) -> Self {
        self.config.kp = kp;
        self
    }

    /// Sets the integral gain.
    #[must_use]
    pub fn ki(mut self, ki: f64) -> Self {
        self.config.ki = ki;
        self
    }

    /// Sets the derivative gain.
    #[must_use]
    pub fn kd(mut self, kd: f64) -> Self {
        self.config.kd = kd;
        self
    }

    /// Sets the LCK multiplier θ₃.
    #[must_use]
    pub fn theta3(mut self, theta3: f64) -> Self {
        self.config.theta3 = theta3;
        self
    }

    /// Sets the GCK multiplier θ₄.
    #[must_use]
    pub fn theta4(mut self, theta4: f64) -> Self {
        self.config.theta4 = theta4;
        self
    }

    /// Sets the controller sampling period.
    #[must_use]
    pub fn sample_period(mut self, period: f64) -> Self {
        self.config.sample_period = period;
        self
    }

    /// Sets the initial worker count.
    #[must_use]
    pub fn initial_workers(mut self, n: usize) -> Self {
        self.config.initial_workers = n;
        self
    }

    /// Sets the worker-pool cap.
    #[must_use]
    pub fn max_workers(mut self, n: usize) -> Self {
        self.config.max_workers = n;
        self
    }

    /// Enables or disables feedback control.
    #[must_use]
    pub fn control_enabled(mut self, enabled: bool) -> Self {
        self.config.control_enabled = enabled;
        self
    }

    /// Sets the retry/backoff/quarantine policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Enables straggler fast-abort.
    #[must_use]
    pub fn fast_abort(mut self, fa: FastAbort) -> Self {
        self.config.fast_abort = Some(fa);
        self
    }

    /// Validates every field and returns the configuration.
    ///
    /// # Errors
    ///
    /// Whatever [`DtmConfig::validate`] reports.
    pub fn build(self) -> Result<DtmConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Result of a DTM run.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmOutcome {
    /// The raw execution report.
    pub report: ExecutionReport,
    /// Per-job completion time.
    pub job_completion: BTreeMap<JobId, f64>,
    /// Per-job deadline verdict.
    pub job_met_deadline: BTreeMap<JobId, bool>,
    /// Final worker count after control.
    pub final_workers: usize,
    /// Tasks re-queued after losing an attempt (eviction, injected fault
    /// or fast-abort).
    pub retries: u64,
    /// Failed-attempt accounting (also available as `report.faults`).
    pub faults: FaultStats,
    /// Control-loop telemetry: one [`ControlTick`] per job per sampling
    /// epoch (empty when `control_enabled` is off or no epoch had pending
    /// work). Deterministic on the DES backend.
    pub control: ControlTrace,
}

impl DtmOutcome {
    /// Fraction of jobs that met their deadline.
    #[must_use]
    pub fn job_hit_rate(&self) -> f64 {
        if self.job_met_deadline.is_empty() {
            return 1.0;
        }
        self.job_met_deadline.values().filter(|&&m| m).count() as f64
            / self.job_met_deadline.len() as f64
    }
}

/// The deadline-driven Dynamic Task Manager (paper §IV-C).
#[derive(Debug)]
pub struct DynamicTaskManager {
    config: DtmConfig,
    cluster: Cluster,
    model: ExecutionModel,
    /// Shared trace store control ticks are recorded into; a private
    /// per-run store when unset.
    store: Option<Arc<EventStore>>,
}

impl DynamicTaskManager {
    /// Creates a DTM over `cluster` with cost model `model`.
    ///
    /// # Panics
    ///
    /// Panics unless `initial_workers >= 1`, `max_workers >=
    /// initial_workers` and `sample_period > 0`.
    #[must_use]
    pub fn new(config: DtmConfig, cluster: Cluster, model: ExecutionModel) -> Self {
        assert!(config.initial_workers >= 1, "need at least one worker");
        assert!(config.max_workers >= config.initial_workers, "max < initial workers");
        assert!(config.sample_period > 0.0, "sampling period must be positive");
        Self { config, cluster, model, store: None }
    }

    /// Routes control ticks into a shared [`EventStore`], so the control
    /// trace interleaves with task/stream/recovery events in one
    /// causally-linked log. Without a store the DTM records into a
    /// private per-run one; either way the outcome's [`ControlTrace`]
    /// is materialized from the store through the query layer.
    pub fn set_event_store(&mut self, store: Arc<EventStore>) {
        self.store = Some(store);
    }

    /// Builder form of [`set_event_store`](Self::set_event_store).
    #[must_use]
    pub fn with_event_store(mut self, store: Arc<EventStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Runs `jobs` to completion under feedback control and reports the
    /// outcome.
    ///
    /// # Errors
    ///
    /// [`SstdError::Config`] when the [`DtmConfig`] fails
    /// [`validate`](DtmConfig::validate).
    pub fn run(&mut self, jobs: &[DtmJob]) -> Result<DtmOutcome, SstdError> {
        self.run_with_evictions(jobs, &[])
    }

    /// Runs `jobs` while the cluster loses workers at the given virtual
    /// times (HTCondor preemption). The PID controller observes the
    /// slowdown through its WCET predictions and compensates by growing
    /// the pool — the resilience the paper gets for free from Work
    /// Queue's elastic workers.
    ///
    /// # Errors
    ///
    /// [`SstdError::Config`] when the [`DtmConfig`] fails
    /// [`validate`](DtmConfig::validate).
    pub fn run_with_evictions(
        &mut self,
        jobs: &[DtmJob],
        evictions: &[f64],
    ) -> Result<DtmOutcome, SstdError> {
        self.run_with_faults(jobs, evictions, None)
    }

    /// Runs `jobs` under scheduled evictions *and* a seeded fault plan
    /// (transient failures, worker crashes, stragglers). Failed attempts
    /// show up to the controller as lost capacity: the observed fault
    /// ratio inflates the WCET prediction by `1 / (1 − ratio)`, so the
    /// PID grows the pool to compensate for work it expects to lose.
    ///
    /// # Errors
    ///
    /// [`SstdError::Config`] when the [`DtmConfig`] fails
    /// [`validate`](DtmConfig::validate).
    pub fn run_with_faults(
        &mut self,
        jobs: &[DtmJob],
        evictions: &[f64],
        plan: Option<FaultPlan>,
    ) -> Result<DtmOutcome, SstdError> {
        let mut des = DesEngine::new(self.cluster.clone(), self.model, self.config.initial_workers);
        self.run_on(&mut des, jobs, evictions, plan)
    }

    /// Runs `jobs` on a caller-supplied execution backend — the DES for
    /// deterministic simulation, or a `ThreadedEngine` for real threads —
    /// through the identical control loop. The DTM first installs its own
    /// [`DtmConfig`] policy (worker count, retry, fast-abort) plus the
    /// given fault plan and evictions on the backend, overwriting any
    /// preset values: configuration flows through one path only.
    ///
    /// Each sampling epoch with pending work records one [`ControlTick`]
    /// per job — what the PID saw (predicted finish vs. deadline) and
    /// what it actuated (priority, pool size) — through the trace store
    /// (shared via [`set_event_store`](Self::set_event_store), private
    /// otherwise); the outcome's [`ControlTrace`] is materialized from
    /// the store, scoped to this run.
    ///
    /// # Errors
    ///
    /// [`SstdError::Config`] when the [`DtmConfig`] fails
    /// [`validate`](DtmConfig::validate). The backend is untouched in
    /// that case.
    pub fn run_on<B: ExecutionBackend + ?Sized>(
        &mut self,
        backend: &mut B,
        jobs: &[DtmJob],
        evictions: &[f64],
        plan: Option<FaultPlan>,
    ) -> Result<DtmOutcome, SstdError> {
        let cfg = self.config;
        cfg.validate()?;
        backend.set_num_workers(cfg.initial_workers);
        backend.set_retry_policy(cfg.retry);
        if let Some(fa) = cfg.fast_abort {
            backend.set_fast_abort(fa);
        }
        if let Some(p) = plan {
            backend.set_fault_plan(p);
        }
        for &t in evictions {
            backend.schedule_eviction(t);
        }

        // Submit all tasks up front (one batch per experiment, as in the
        // paper); each task carries the job deadline for reporting.
        let mut job_data: BTreeMap<JobId, f64> = BTreeMap::new();
        for j in jobs {
            job_data.insert(j.job, j.data_size);
            let per_task = j.data_size / j.num_tasks as f64;
            for _ in 0..j.num_tasks {
                backend.submit(TaskSpec::new(j.job, per_task).with_deadline(j.deadline));
            }
        }

        let mut pids: BTreeMap<JobId, PidController> =
            jobs.iter().map(|j| (j.job, PidController::new(cfg.kp, cfg.ki, cfg.kd))).collect();
        let mut lcks: BTreeMap<JobId, LocalKnob> = jobs
            .iter()
            .map(|j| (j.job, LocalKnob::new(cfg.theta3, 1.0, 1.0 / 64.0, 64.0)))
            .collect();
        let mut gck = GlobalKnob::new(cfg.theta4, cfg.initial_workers, 1, cfg.max_workers);
        // Ticks go through the trace store (a shared one when installed
        // via `set_event_store`, else a private per-run one); the
        // outcome's `ControlTrace` is read back from it, scoped to this
        // run by the sequence watermark.
        let store = self.store.clone().unwrap_or_else(|| Arc::new(EventStore::new()));
        let control_since = store.next_seq();
        // Ticks of the current epoch, buffered so `workers` can reflect
        // the pool size after the GCK actuates on the aggregate signal.
        let mut epoch: Vec<ControlTick> = Vec::new();

        // Start sampling from the backend's current clock (zero for the
        // DES; a threaded engine may already have ticked).
        let mut t = backend.now();
        loop {
            t += cfg.sample_period;
            backend.run_until(t);
            if backend.pending() == 0 && backend.running() == 0 {
                break;
            }
            if !cfg.control_enabled {
                // Without feedback control the Work Queue worker factory
                // still replaces evicted workers up to the configured
                // pool size (`work_queue_factory -w`); otherwise a fully
                // evicted static pool would never drain its queue.
                if backend.num_workers() < cfg.initial_workers {
                    backend.set_num_workers(cfg.initial_workers);
                }
                continue;
            }
            if backend.num_workers() == 0 {
                // All workers evicted between control epochs: restore a
                // seed worker so WCET predictions stay finite; the GCK
                // grows from there.
                backend.set_num_workers(1);
            }

            // Per-job control: predicted finish vs. deadline (Eq. 9 uses
            // measured execution time; prediction via the WCET model lets
            // the controller act before the deadline passes).
            //
            // The GCK reacts to the *worst-off* job: one job about to miss
            // its deadline must grow the pool even when every other job is
            // comfortably early (a sum would let the early jobs outvote
            // the urgent one and shrink the pool under it).
            let mut aggregate = f64::NEG_INFINITY;
            epoch.clear();
            for j in jobs {
                let remaining_tasks = backend.pending_of(j.job);
                if remaining_tasks == 0 {
                    continue;
                }
                let remaining_data = job_data[&j.job] * remaining_tasks as f64 / j.num_tasks as f64;
                let share = self.priority_share(&lcks, j.job);
                let workers = backend.num_workers().max(1);
                // Faults are lost capacity: if a fraction `r` of attempts
                // is being wasted, effective throughput is `(1 − r)×`, so
                // the remaining work takes `1 / (1 − r)` longer.
                let fault_ratio = backend.fault_stats().fault_ratio().min(0.9);
                let fault_inflation = 1.0 / (1.0 - fault_ratio);
                let predicted_finish = backend.now()
                    + fault_inflation
                        * self.model.job_wcet(remaining_data.max(1e-9), workers, share.max(1e-6));
                let error = predicted_finish - j.deadline;
                let signal = pids
                    .get_mut(&j.job)
                    .expect("pid registered per job")
                    .update(error, cfg.sample_period);
                aggregate = aggregate.max(signal);
                let new_priority =
                    lcks.get_mut(&j.job).expect("lck registered per job").apply(signal);
                backend.set_job_priority(j.job, new_priority);
                epoch.push(ControlTick {
                    t: 0.0, // filled in after global actuation
                    job: j.job,
                    setpoint: j.deadline,
                    measured: predicted_finish,
                    error,
                    signal,
                    priority: new_priority,
                    workers: 0, // filled in after global actuation
                    pending: remaining_tasks,
                });
            }
            // Global control on the aggregate signal.
            if aggregate.is_finite() {
                let workers = gck.apply(aggregate);
                backend.set_num_workers(workers);
            }
            let now = backend.now();
            let pool = backend.num_workers();
            for mut tick in epoch.drain(..) {
                tick.t = now;
                tick.workers = pool;
                store.record_control(tick);
            }
        }

        let report = backend.run_to_completion();
        let job_completion = report.job_completion_times();
        let job_met_deadline = jobs
            .iter()
            .map(|j| {
                let done = job_completion.get(&j.job).copied().unwrap_or(f64::INFINITY);
                (j.job, done <= j.deadline)
            })
            .collect();
        Ok(DtmOutcome {
            final_workers: backend.num_workers(),
            retries: backend.retries(),
            faults: report.faults,
            report,
            job_completion,
            job_met_deadline,
            control: ControlTrace::from_store_since(&store, control_since),
        })
    }

    fn priority_share(&self, lcks: &BTreeMap<JobId, LocalKnob>, job: JobId) -> f64 {
        let total: f64 = lcks.values().map(LocalKnob::value).sum();
        if total <= 0.0 {
            return 1.0;
        }
        lcks[&job].value() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_even(n: u32, data: f64, deadline: f64) -> Vec<DtmJob> {
        (0..n).map(|i| DtmJob::new(JobId::new(i), data, deadline, 4)).collect()
    }

    fn dtm(config: DtmConfig) -> DynamicTaskManager {
        DynamicTaskManager::new(config, Cluster::homogeneous(64, 1.0), ExecutionModel::default())
    }

    #[test]
    fn all_jobs_complete() {
        let mut m = dtm(DtmConfig::default());
        let outcome = m.run(&jobs_even(5, 2_000.0, 30.0)).expect("valid config");
        assert_eq!(outcome.job_completion.len(), 5);
        assert_eq!(outcome.report.completed.len(), 20);
    }

    #[test]
    fn loose_deadlines_are_all_met() {
        let mut m = dtm(DtmConfig::default());
        let outcome = m.run(&jobs_even(4, 1_000.0, 1_000.0)).expect("valid config");
        assert!((outcome.job_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn control_beats_static_allocation_under_tight_deadlines() {
        // Heavy load on a small initial pool with a deadline the static
        // pool cannot meet but a grown pool can.
        let jobs = jobs_even(8, 30_000.0, 30.0);
        let controlled = dtm(DtmConfig::default()).run(&jobs).expect("valid config");
        let static_cfg = DtmConfig { control_enabled: false, ..DtmConfig::default() };
        let uncontrolled = dtm(static_cfg).run(&jobs).expect("valid config");
        assert!(
            controlled.job_hit_rate() > uncontrolled.job_hit_rate(),
            "controlled {} vs static {}",
            controlled.job_hit_rate(),
            uncontrolled.job_hit_rate()
        );
        assert!(controlled.final_workers > DtmConfig::default().initial_workers);
    }

    #[test]
    fn urgent_job_gets_priority() {
        // One job with a tight deadline among laggards: control should
        // raise its priority so it finishes earlier than FIFO would.
        let mut jobs = jobs_even(4, 6_000.0, 200.0);
        jobs[3] = DtmJob::new(JobId::new(3), 6_000.0, 8.0, 4);
        let outcome = dtm(DtmConfig::default()).run(&jobs).expect("valid config");
        let urgent = outcome.job_completion[&JobId::new(3)];
        // Compare against a job whose tasks queue behind the first wave
        // (job 0's tasks start instantly at submission, before control).
        let relaxed = outcome.job_completion[&JobId::new(1)];
        assert!(urgent <= relaxed + 1e-9, "urgent finished at {urgent}, relaxed at {relaxed}");
    }

    #[test]
    fn outcome_hit_rate_empty_is_one() {
        let outcome = dtm(DtmConfig::default()).run(&[]).expect("valid config");
        assert_eq!(outcome.job_hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn invalid_job_rejected() {
        let _ = DtmJob::new(JobId::new(0), 1.0, 0.0, 1);
    }

    #[test]
    fn builder_matches_defaults_and_names_bad_fields() {
        assert_eq!(DtmConfig::builder().build().expect("defaults valid"), DtmConfig::default());
        let cfg =
            DtmConfig::builder().kp(2.0).initial_workers(2).max_workers(8).build().expect("valid");
        assert_eq!(cfg.kp, 2.0);
        assert_eq!(cfg.initial_workers, 2);
        for (field, built) in [
            ("kp", DtmConfig::builder().kp(-1.0).build()),
            ("ki", DtmConfig::builder().ki(f64::INFINITY).build()),
            ("kd", DtmConfig::builder().kd(f64::NAN).build()),
            ("theta3", DtmConfig::builder().theta3(0.0).build()),
            ("theta4", DtmConfig::builder().theta4(-2.0).build()),
            ("sample_period", DtmConfig::builder().sample_period(0.0).build()),
            ("initial_workers", DtmConfig::builder().initial_workers(0).build()),
            ("max_workers", DtmConfig::builder().max_workers(1).build()),
        ] {
            assert_eq!(built.expect_err("invalid").field(), field);
        }
    }

    #[test]
    fn invalid_config_surfaces_as_error_not_panic() {
        let cfg = DtmConfig { kp: f64::NAN, ..DtmConfig::default() };
        let err = dtm(cfg).run(&jobs_even(1, 100.0, 10.0)).expect_err("NaN gain");
        assert_eq!(err.as_config().expect("a config error").field(), "kp");
    }

    #[test]
    fn control_trace_first_tick_matches_pid_hand_computation() {
        let cfg = DtmConfig::default();
        let jobs = vec![DtmJob::new(JobId::new(0), 20_000.0, 20.0, 8)];
        let outcome = dtm(cfg).run(&jobs).expect("valid config");
        let ticks = outcome.control.ticks();
        assert!(!ticks.is_empty(), "an active run must record control ticks");
        let k = ticks[0];
        assert_eq!(k.job, JobId::new(0));
        assert_eq!(k.setpoint, 20.0, "setpoint is the job deadline");
        assert!((k.error - (k.measured - k.setpoint)).abs() < 1e-9, "error = measured − setpoint");
        // First PID sample: the derivative term is zero and the integral
        // holds exactly one sample (Eq. 9 with e(0) only).
        let expected =
            cfg.kp * k.error + cfg.ki * (k.error * cfg.sample_period).clamp(-100.0, 100.0);
        assert!(
            (k.signal - expected).abs() < 1e-9,
            "signal {} vs hand-computed {}",
            k.signal,
            expected
        );
        assert!(k.workers >= 1);
        assert!(k.pending > 0);
    }

    #[test]
    fn static_allocation_records_no_control_ticks() {
        let cfg = DtmConfig { control_enabled: false, ..DtmConfig::default() };
        let outcome = dtm(cfg).run(&jobs_even(2, 2_000.0, 50.0)).expect("valid config");
        assert!(outcome.control.is_empty(), "control off ⇒ no telemetry");
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;

    #[test]
    fn control_recovers_from_eviction_storms() {
        // 6 jobs, moderate deadline; at t = 2..5 the cluster loses four
        // workers. The static pool (4 workers) is crippled; the PID
        // controller regrows capacity and keeps hitting deadlines.
        let jobs: Vec<DtmJob> =
            (0..6).map(|i| DtmJob::new(JobId::new(i), 10_000.0, 25.0, 4)).collect();
        let evictions = [2.0, 3.0, 4.0, 5.0];

        let controlled = {
            let mut dtm = DynamicTaskManager::new(
                DtmConfig::default(),
                Cluster::homogeneous(64, 1.0),
                ExecutionModel::default(),
            );
            dtm.run_with_evictions(&jobs, &evictions).expect("valid config")
        };
        let static_run = {
            let cfg = DtmConfig { control_enabled: false, ..DtmConfig::default() };
            let mut dtm = DynamicTaskManager::new(
                cfg,
                Cluster::homogeneous(64, 1.0),
                ExecutionModel::default(),
            );
            dtm.run_with_evictions(&jobs, &evictions).expect("valid config")
        };
        assert_eq!(controlled.report.completed.len(), 24, "no task lost");
        assert!(
            controlled.job_hit_rate() >= static_run.job_hit_rate(),
            "controlled {} vs static {}",
            controlled.job_hit_rate(),
            static_run.job_hit_rate()
        );
        assert!(
            controlled.job_hit_rate() > 0.8,
            "control should rescue most jobs: {}",
            controlled.job_hit_rate()
        );
    }

    #[test]
    fn control_beats_static_under_injected_faults() {
        // The acceptance scenario: ≥10% transient faults plus worker
        // crashes. The PID sees the fault ratio as lost capacity and
        // grows the pool; the static pool eats the wasted work.
        let jobs: Vec<DtmJob> =
            (0..6).map(|i| DtmJob::new(JobId::new(i), 10_000.0, 28.0, 4)).collect();
        let plan = FaultPlan::new(42)
            .with_transient_rate(0.12)
            .with_crash_rate(0.04)
            .with_restart_delay(1.0);

        let controlled = DynamicTaskManager::new(
            DtmConfig::default(),
            Cluster::homogeneous(64, 1.0),
            ExecutionModel::default(),
        )
        .run_with_faults(&jobs, &[], Some(plan))
        .expect("valid config");
        let static_run = DynamicTaskManager::new(
            DtmConfig { control_enabled: false, ..DtmConfig::default() },
            Cluster::homogeneous(64, 1.0),
            ExecutionModel::default(),
        )
        .run_with_faults(&jobs, &[], Some(plan))
        .expect("valid config");

        assert_eq!(controlled.report.completed.len(), 24, "no task lost to faults");
        assert!(controlled.faults.reconciles(), "{}", controlled.faults);
        assert!(
            controlled.faults.failures() > 0,
            "the plan must actually inject faults: {}",
            controlled.faults
        );
        assert!(
            controlled.job_hit_rate() >= static_run.job_hit_rate(),
            "controlled {} vs static {}",
            controlled.job_hit_rate(),
            static_run.job_hit_rate()
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let jobs: Vec<DtmJob> =
            (0..3).map(|i| DtmJob::new(JobId::new(i), 5_000.0, 20.0, 4)).collect();
        let plan = FaultPlan::new(7)
            .with_transient_rate(0.2)
            .with_crash_rate(0.05)
            .with_stragglers(0.05, 6.0);
        let cfg = DtmConfig { fast_abort: Some(FastAbort::default()), ..DtmConfig::default() };
        let run = || {
            DynamicTaskManager::new(cfg, Cluster::homogeneous(32, 1.0), ExecutionModel::default())
                .run_with_faults(&jobs, &[1.5], Some(plan))
                .expect("valid config")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical seeds must replay identically");
        assert!(a.faults.reconciles(), "{}", a.faults);
    }

    #[test]
    fn config_overrides_backend_presets_one_path_only() {
        // Regression for silent config divergence: policy preset directly
        // on a backend must not survive `run_on` — the DtmConfig is the
        // single source of scheduling policy. The preset here (a single
        // attempt, no quarantine headroom) would exhaust tasks under the
        // fault plan if it leaked through.
        let jobs: Vec<DtmJob> =
            (0..3).map(|i| DtmJob::new(JobId::new(i), 5_000.0, 25.0, 4)).collect();
        let plan = FaultPlan::new(13).with_transient_rate(0.3).with_crash_rate(0.05);
        let cluster = Cluster::homogeneous(32, 1.0);

        let clean = DynamicTaskManager::new(
            DtmConfig::default(),
            cluster.clone(),
            ExecutionModel::default(),
        )
        .run_with_faults(&jobs, &[], Some(plan))
        .expect("valid config");

        let mut preset = DesEngine::new(
            cluster,
            ExecutionModel::default(),
            DtmConfig::default().initial_workers,
        );
        preset.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            backoff_base: 9.0,
            ..RetryPolicy::default()
        });
        preset.set_fast_abort(FastAbort { multiplier: 1.01, min_samples: 1, max_speculations: 9 });
        let through_dtm = DynamicTaskManager::new(
            DtmConfig::default(),
            Cluster::homogeneous(32, 1.0),
            ExecutionModel::default(),
        )
        .run_on(&mut preset, &jobs, &[], Some(plan))
        .expect("valid config");

        assert_eq!(through_dtm, clean, "preset backend policy must not leak into the run");
        assert_eq!(through_dtm.faults.exhausted_tasks, 0, "DtmConfig retry budget applied");
        assert_eq!(through_dtm.report.completed.len(), 12);
    }

    #[test]
    fn threaded_engine_is_a_drop_in_backend() {
        // The same control loop drives real OS threads: simulated task
        // durations compressed 200× so the run takes tens of
        // milliseconds of wall time.
        use sstd_runtime::ThreadedEngine;
        let jobs: Vec<DtmJob> =
            (0..2).map(|i| DtmJob::new(JobId::new(i), 2_000.0, 1_000.0, 4)).collect();
        let mut engine: ThreadedEngine<()> = ThreadedEngine::new(2);
        engine.set_simulation(ExecutionModel::default(), 0.005);
        let cfg = DtmConfig { initial_workers: 2, max_workers: 8, ..DtmConfig::default() };
        let outcome =
            DynamicTaskManager::new(cfg, Cluster::homogeneous(8, 1.0), ExecutionModel::default())
                .run_on(&mut engine, &jobs, &[], None)
                .expect("valid config");
        assert_eq!(outcome.report.completed.len(), 8, "all tasks ran on real threads");
        assert_eq!(outcome.job_completion.len(), 2);
        assert!((outcome.job_hit_rate() - 1.0).abs() < 1e-12, "loose deadlines met");
        assert!(outcome.faults.reconciles(), "{}", outcome.faults);
        assert!(outcome.final_workers >= 1);
    }

    #[test]
    fn evictions_delay_but_never_lose_jobs() {
        let jobs = vec![DtmJob::new(JobId::new(0), 5_000.0, 100.0, 8)];
        let mut dtm = DynamicTaskManager::new(
            DtmConfig::default(),
            Cluster::homogeneous(16, 1.0),
            ExecutionModel::default(),
        );
        let baseline = dtm.run(&jobs).expect("valid config").job_completion[&JobId::new(0)];
        let mut dtm2 = DynamicTaskManager::new(
            DtmConfig::default(),
            Cluster::homogeneous(16, 1.0),
            ExecutionModel::default(),
        );
        let evicted = dtm2.run_with_evictions(&jobs, &[0.5, 1.0]).expect("valid config");
        assert_eq!(evicted.report.completed.len(), 8);
        assert!(
            evicted.job_completion[&JobId::new(0)] >= baseline - 1e-9,
            "failures cannot speed things up"
        );
    }
}
