//! Criterion counterpart of Fig. 7: the cost of computing one speedup
//! point through the `ExecutionBackend` trait as the worker pool grows.
//! The speedup series itself is `cargo run -p sstd-eval --bin fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstd_eval::exp::fig7;
use sstd_runtime::{Cluster, DesEngine};

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_des_makespan");
    for workers in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                // 16.9M tweets in 25k chunks = 676 tasks, submitted and
                // drained through the trait — the same path the sweep uses.
                let mut des = DesEngine::new(Cluster::homogeneous(w, 1.0), fig7::model(), w);
                std::hint::black_box(fig7::makespan(&mut des, 16_900_000))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = fig7_bench;
    config = Criterion::default().sample_size(20);
    targets = bench_des
);
criterion_main!(fig7_bench);
