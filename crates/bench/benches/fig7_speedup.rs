//! Criterion counterpart of Fig. 7: the DES simulation cost of computing
//! one speedup point as the worker pool grows. The speedup series itself
//! is `cargo run -p sstd-eval --bin fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};

fn bench_des(c: &mut Criterion) {
    let model = ExecutionModel::new(0.3, 4.0e-5, 4.8e-5);
    let mut group = c.benchmark_group("fig7_des_makespan");
    for workers in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let mut des = DesEngine::new(Cluster::homogeneous(w, 1.0), model, w);
                // 16.9M tweets in 25k chunks = 676 tasks.
                for _ in 0..676 {
                    des.submit(TaskSpec::new(JobId::new(0), 25_000.0));
                }
                std::hint::black_box(des.run_to_completion().makespan)
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = fig7;
    config = Criterion::default().sample_size(20);
    targets = bench_des
);
criterion_main!(fig7);
