//! Criterion counterpart of Fig. 4: execution time vs. data size for the
//! two ends of the spectrum — SSTD (volume-insensitive per-claim models)
//! and TruthFinder (volume-proportional batch iteration). The full
//! seven-scheme sweep is `cargo run -p sstd-eval --bin fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstd_data::{Scenario, TraceBuilder};
use sstd_eval::{run_scheme, SchemeKind};

fn bench_data_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_exec_time");
    for scale_milli in [1u64, 4, 16] {
        let trace = TraceBuilder::scenario(Scenario::ParisShooting)
            .scale(scale_milli as f64 / 1_000.0)
            .seed(42)
            .build();
        let n = trace.reports().len() as u64;
        group.throughput(Throughput::Elements(n));
        for scheme in [SchemeKind::Sstd, SchemeKind::TruthFinder] {
            group.bench_with_input(BenchmarkId::new(scheme.name(), n), &scheme, |b, &s| {
                b.iter(|| std::hint::black_box(run_scheme(s, &trace)))
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = fig4;
    config = Criterion::default().sample_size(10);
    targets = bench_data_sizes
);
criterion_main!(fig4);
