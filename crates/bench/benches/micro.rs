//! Micro-benchmarks of the core algorithmic kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sstd_core::AcsAggregator;
use sstd_hmm::{
    viterbi, viterbi_into, BaumWelch, DecodeWorkspace, EmWorkspace, Hmm, StreamingViterbi,
    SymmetricGaussianEmission,
};
use sstd_runtime::{JobId, TaskPool, TaskSpec};
use sstd_text::{jaccard_distance, TokenSet};

fn observation_sequence(len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..len)
        .map(|t| {
            let sign = if (t / 25) % 2 == 0 { 1.0 } else { -1.0 };
            sign * 4.0 + rng.gen_range(-1.0..1.0)
        })
        .collect()
}

fn truth_hmm() -> Hmm<SymmetricGaussianEmission> {
    Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        SymmetricGaussianEmission::new(4.0, 1.5).unwrap(),
    )
    .unwrap()
}

fn bench_hmm(c: &mut Criterion) {
    let obs = observation_sequence(100);
    c.bench_function("baum_welch_train_T100", |b| {
        b.iter(|| {
            let out = BaumWelch::default().max_iterations(25).train(truth_hmm(), &obs);
            std::hint::black_box(out.log_likelihood)
        });
    });
    c.bench_function("viterbi_decode_T100", |b| {
        let hmm = truth_hmm();
        b.iter(|| std::hint::black_box(viterbi(&hmm, &obs)));
    });
    c.bench_function("streaming_viterbi_push_1k", |b| {
        let long = observation_sequence(1_000);
        b.iter_batched(
            || StreamingViterbi::new(truth_hmm()),
            |mut dec| {
                for &o in &long {
                    std::hint::black_box(dec.push(o));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

/// Zero-allocation kernel benches: the `_into` entry points with
/// caller-owned workspaces, the layout the engine runs in steady state.
/// `BENCH_PR5.json` (emitted by the `kernels` bin) tracks the same
/// shapes over time; these criterion variants give the detailed
/// statistics.
fn bench_kernels(c: &mut Criterion) {
    let trainer = BaumWelch::default().max_iterations(25).tolerance(0.0);
    for t_len in [100usize, 1_000, 10_000] {
        let obs = observation_sequence(t_len);
        let mut em = EmWorkspace::new();
        c.bench_function(&format!("baum_welch_train_into_T{t_len}"), |b| {
            b.iter_batched(
                truth_hmm,
                |mut model| {
                    std::hint::black_box(trainer.train_into(&mut model, &obs, &mut em));
                },
                BatchSize::SmallInput,
            );
        });
    }
    c.bench_function("viterbi_decode_into_T10k", |b| {
        let hmm = truth_hmm();
        let obs = observation_sequence(10_000);
        let mut ws = DecodeWorkspace::new();
        b.iter(|| {
            std::hint::black_box(viterbi_into(&hmm, &obs, &mut ws).len());
        });
    });
    c.bench_function("acs_rolling_windowed_into_10k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let sums: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = Vec::new();
        b.iter(|| {
            AcsAggregator::windowed_into(&sums, 6, &mut out);
            std::hint::black_box(out.last().copied());
        });
    });
}

fn bench_acs(c: &mut Criterion) {
    c.bench_function("acs_aggregate_10k_reports", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let adds: Vec<(usize, f64)> =
            (0..10_000).map(|_| (rng.gen_range(0..100), rng.gen_range(-1.0..1.0))).collect();
        b.iter(|| {
            let mut agg = AcsAggregator::new(100, 3);
            for &(iv, cs) in &adds {
                agg.add_score(iv, cs);
            }
            std::hint::black_box(agg.sequence())
        });
    });
}

fn bench_text(c: &mut Criterion) {
    let a = TokenSet::from_text("suspect spotted fleeing across the bridge near watertown");
    let b_set = TokenSet::from_text("police chasing a suspect near the watertown bridge");
    c.bench_function("jaccard_distance", |b| {
        b.iter(|| std::hint::black_box(jaccard_distance(&a, &b_set)));
    });
    c.bench_function("tokenize_tweet", |b| {
        b.iter(|| {
            std::hint::black_box(TokenSet::from_text(
                "BREAKING: explosion reported near the marathon finish line #boston",
            ))
        });
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("task_pool_submit_pop_1k", |b| {
        b.iter(|| {
            let mut pool = TaskPool::new();
            for i in 0..1_000u32 {
                pool.submit(TaskSpec::new(JobId::new(i % 8), 100.0));
            }
            pool.set_priority(JobId::new(0), 4.0);
            while let Some(t) = pool.pop() {
                std::hint::black_box(t);
            }
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_hmm, bench_kernels, bench_acs, bench_text, bench_scheduler
);
criterion_main!(micro);
