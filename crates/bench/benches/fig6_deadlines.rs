//! Criterion counterpart of Fig. 6: cost of one DTM control run (DES +
//! PID) for an interval workload, controlled vs. static. The hit-rate
//! sweep itself is `cargo run -p sstd-eval --bin fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstd_control::{DtmConfig, DtmJob, DynamicTaskManager};
use sstd_runtime::{Cluster, ExecutionModel, JobId};

fn bench_dtm(c: &mut Criterion) {
    let model = ExecutionModel::new(0.005, 0.001, 0.0012);
    let jobs: Vec<DtmJob> = (0..8)
        .map(|i| DtmJob::new(JobId::new(i), 2_000.0 + 500.0 * f64::from(i), 4.0, 4))
        .collect();

    let mut group = c.benchmark_group("fig6_dtm_run");
    for (label, control) in [("pid_controlled", true), ("static", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &control, |b, &ctl| {
            b.iter(|| {
                let config = DtmConfig {
                    control_enabled: ctl,
                    initial_workers: 4,
                    max_workers: 16,
                    ..DtmConfig::default()
                };
                let mut dtm = DynamicTaskManager::new(config, Cluster::homogeneous(16, 1.0), model);
                std::hint::black_box(dtm.run(&jobs).expect("valid config").job_hit_rate())
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = fig6;
    config = Criterion::default().sample_size(20);
    targets = bench_dtm
);
criterion_main!(fig6);
