//! Ablation benches for the design choices DESIGN.md calls out: the cost
//! side of each variant. The accuracy side is
//! `cargo run -p sstd-eval --bin ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstd_core::{SstdConfig, SstdEngine};
use sstd_data::{Scenario, TraceBuilder};
use sstd_types::Trace;

fn trace() -> Trace {
    TraceBuilder::scenario(Scenario::ParisShooting).scale(0.004).seed(42).build()
}

fn bench_window(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation_window");
    for (label, cfg) in [
        ("adaptive", SstdConfig::default()),
        ("fixed_w1", SstdConfig::default().with_window(1)),
        ("fixed_w3", SstdConfig::default().with_window(3)),
        ("fixed_w8", SstdConfig::default().with_window(8)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let engine = SstdEngine::new(*cfg);
            b.iter(|| std::hint::black_box(engine.run(&trace)));
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("ablation_em");
    for (label, cfg) in [
        ("em_on", SstdConfig::default()),
        ("em_off", SstdConfig::default().with_training(false)),
        ("em_5_iters", SstdConfig::default().with_em_iterations(5)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let engine = SstdEngine::new(*cfg);
            b.iter(|| std::hint::black_box(engine.run(&trace)));
        });
    }
    group.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_window, bench_training
);
criterion_main!(ablation);
