//! Criterion counterpart of Fig. 5: per-interval ingestion cost of the
//! streaming engine vs. the cost of one cumulative batch re-solve — the
//! two work shapes whose divergence produces the paper's Fig. 5 curves.
//! The full sweep is `cargo run -p sstd-eval --bin fig5`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sstd_baselines::{SnapshotInput, TruthDiscovery, TruthFinder};
use sstd_core::{SstdConfig, StreamingSstd};
use sstd_data::{Scenario, TraceBuilder};

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_ingest");
    for rate in [100usize, 400] {
        let mut builder = TraceBuilder::scenario(Scenario::Synthetic).seed(42);
        {
            let cfg = builder.config_mut();
            cfg.horizon_secs = 20;
            cfg.num_intervals = 20;
            cfg.target_reports = rate * 20;
            cfg.num_sources = (rate * 20).max(100);
        }
        let trace = builder.build();

        group.bench_with_input(
            BenchmarkId::new("sstd_stream_whole_trace", rate),
            &trace,
            |b, trace| {
                b.iter_batched(
                    || StreamingSstd::new(SstdConfig::default(), trace.timeline().clone()),
                    |mut engine| {
                        for r in trace.reports() {
                            engine.push(r);
                        }
                        std::hint::black_box(engine.finish())
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("truthfinder_batch_resolve", rate),
            &trace,
            |b, trace| {
                let input =
                    SnapshotInput::new(trace.reports(), trace.num_sources(), trace.num_claims());
                let scheme = TruthFinder::new();
                b.iter(|| std::hint::black_box(scheme.discover(&input)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = fig5;
    config = Criterion::default().sample_size(10);
    targets = bench_streaming_vs_batch
);
criterion_main!(fig5);
