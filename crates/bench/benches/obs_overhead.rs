//! The observability zero-cost guard: one Fig. 7 makespan computed with
//! recording off, with the branch taken (`NoopRecorder`), and with full
//! timeline collection (`TimelineRecorder`). The acceptance bar is that
//! `noop` stays within noise (< 2%) of `off` — the disabled hook is one
//! `Option` branch per event site and must price like it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sstd_eval::exp::fig7;
use sstd_obs::{EventStore, TimelineRecorder};
use sstd_runtime::{Cluster, DesEngine, NoopRecorder};
use std::sync::Arc;

fn bench_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let variants: [(&str, fn(&mut DesEngine)); 4] = [
        ("off", |_| {}),
        ("noop", |des| des.set_recorder(Some(Arc::new(NoopRecorder)))),
        ("collect", |des| des.set_recorder(Some(Arc::new(TimelineRecorder::new())))),
        ("store", |des| des.set_recorder(Some(Arc::new(EventStore::new())))),
    ];
    for (name, install) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &install, |b, install| {
            b.iter(|| {
                // 16.9M tweets / 25k chunks = 676 tasks on 64 workers —
                // the same workload as the fig7_speedup bench, so the
                // off-vs-noop delta isolates the hook branch.
                let mut des = DesEngine::new(Cluster::homogeneous(64, 1.0), fig7::model(), 64);
                install(&mut des);
                std::hint::black_box(fig7::makespan(&mut des, 16_900_000))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = obs_overhead;
    config = Criterion::default().sample_size(20);
    targets = bench_recorder_overhead
);
criterion_main!(obs_overhead);
