//! Criterion benchmark crate for SSTD: one bench per paper table/figure plus micro and ablation suites. See `benches/`.
#![forbid(unsafe_code)]
