//! Plain-`std::time` kernel timings for the zero-allocation HMM core.
//!
//! Criterion gives detailed statistics locally (`benches/micro.rs`), but
//! it is too heavy for a CI smoke check and unavailable in minimal
//! environments. This bin times the same kernel shapes with
//! `Instant`, best-of-3, and emits an [`sstd_obs::BenchReport`] JSON
//! object — the format committed at the repo root as `BENCH_PR5.json`.
//!
//! Usage: `cargo run --release -p sstd-bench --bin kernels [OUT.json]`
//! (prints to stdout; also writes to `OUT.json` when given).
//!
//! The measurement protocol is frozen so runs stay comparable across
//! commits: xorshift-seeded observations whose sign flips every 25
//! steps (±4.0 ± noise), a 2-state stay-0.9 symmetric-Gaussian model
//! (µ = 4.0, σ = 1.5), and Baum–Welch at 25 iterations with tolerance
//! 0 (no early convergence, so every run does identical work).

use sstd_core::AcsAggregator;
use sstd_hmm::{
    viterbi_into, BaumWelch, DecodeWorkspace, EmWorkspace, Hmm, StreamingViterbi,
    SymmetricGaussianEmission,
};
use sstd_obs::{BenchReport, EventStore, StoreConfig, TimelineRecorder};
use sstd_runtime::prelude::{
    JobId, LossCause, NoopRecorder, Recorder, SharedRecorder, TaskId, TaskPhase, TimelineEvent,
    WorkerId,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic xorshift64* stream, so the bin needs no RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map to [-1, 1).
        (self.0 >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn observation_sequence(len: usize) -> Vec<f64> {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|t| {
            let sign = if (t / 25) % 2 == 0 { 1.0 } else { -1.0 };
            sign * 4.0 + rng.next_f64()
        })
        .collect()
}

fn truth_hmm() -> Hmm<SymmetricGaussianEmission> {
    Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        SymmetricGaussianEmission::new(4.0, 1.5).expect("valid emission"),
    )
    .expect("valid model")
}

/// Number of synthetic timeline events in the obs-ingest workload.
const INGEST_EVENTS: usize = 1_000_000;

/// Segment budget for the eviction variant: far below the workload, so
/// whole-segment eviction fires continuously.
const INGEST_EVICT_BUDGET: usize = 65_536;

/// A synthetic but shape-realistic timeline: every task goes
/// queued → dispatched → (sometimes failed → dispatched) → completed.
fn synthetic_timeline(n: usize) -> Vec<TimelineEvent> {
    let mut out = Vec::with_capacity(n);
    let mut task = 0u32;
    let mut at = 0.0f64;
    while out.len() < n {
        let retry = task.is_multiple_of(5);
        let worker = Some(WorkerId::new(task % 16));
        let mut phases: Vec<(u32, Option<WorkerId>, TaskPhase)> =
            vec![(0, None, TaskPhase::Queued), (0, worker, TaskPhase::Dispatched)];
        if retry {
            phases.push((0, worker, TaskPhase::Failed(LossCause::Transient)));
            phases.push((1, worker, TaskPhase::Dispatched));
            phases.push((1, worker, TaskPhase::Completed));
        } else {
            phases.push((0, worker, TaskPhase::Completed));
        }
        for (attempt, worker, phase) in phases {
            at += 1.0e-3;
            out.push(TimelineEvent {
                task: TaskId::new(task),
                job: JobId::new(task % 3),
                attempt,
                worker,
                at,
                phase,
            });
        }
        task += 1;
    }
    out.truncate(n);
    out
}

/// Millions of events per second pushed through the backends' per-event
/// recorder branch (`if let Some(r) = recorder { r.record(e) }`).
fn ingest_mevps(events: &[TimelineEvent], recorder: &Option<SharedRecorder>) -> f64 {
    let us = time_us(|| {
        for e in events {
            if let Some(r) = std::hint::black_box(recorder) {
                r.record(e);
            }
        }
        std::hint::black_box(());
    });
    events.len() as f64 / us
}

/// Best-of-3 wall time of `f`, in microseconds.
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let trainer = BaumWelch::default().max_iterations(25).tolerance(0.0);
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();

    let mut fields: Vec<(&str, f64)> = Vec::new();
    for (label, t_len) in [("em_t100_us", 100usize), ("em_t1k_us", 1_000), ("em_t10k_us", 10_000)] {
        let obs = observation_sequence(t_len);
        let us = time_us(|| {
            let mut model = truth_hmm();
            std::hint::black_box(trainer.train_into(&mut model, &obs, &mut em));
        });
        fields.push((label, us));
    }

    let obs10k = observation_sequence(10_000);
    let hmm = truth_hmm();
    fields.push((
        "viterbi_t10k_us",
        time_us(|| {
            std::hint::black_box(viterbi_into(&hmm, &obs10k, &mut decode).len());
        }),
    ));

    let mut streaming = StreamingViterbi::new(truth_hmm()).with_max_pending(64);
    fields.push((
        "streaming_push_t10k_us",
        time_us(|| {
            streaming.reset(truth_hmm());
            for &o in &obs10k {
                std::hint::black_box(streaming.push(o));
            }
        }),
    ));

    let sums: Vec<f64> = observation_sequence(10_000);
    let mut acs_out = Vec::new();
    fields.push((
        "acs_rolling_10k_us",
        time_us(|| {
            AcsAggregator::windowed_into(&sums, 6, &mut acs_out);
            std::hint::black_box(acs_out.last().copied());
        }),
    ));

    // Trace-store ingest: the same event stream through the four
    // recorder configurations a backend can run with. `off` is the
    // disabled path (no recorder installed), `noop` the trait-dispatch
    // floor, `store` the unbounded EventStore, `evict` a store bounded
    // well below the workload so segment eviction fires continuously.
    let timeline = synthetic_timeline(INGEST_EVENTS);
    fields.push(("obs_ingest_off_mevps", ingest_mevps(&timeline, &None)));
    fields.push((
        "obs_ingest_noop_mevps",
        ingest_mevps(&timeline, &Some(Arc::new(NoopRecorder) as SharedRecorder)),
    ));
    fields.push((
        "obs_ingest_store_mevps",
        ingest_mevps(&timeline, &Some(Arc::new(EventStore::new()) as SharedRecorder)),
    ));
    let evict_store = Arc::new(
        EventStore::with_config(StoreConfig::bounded(INGEST_EVICT_BUDGET))
            .expect("valid bounded config"),
    );
    fields.push((
        "obs_ingest_evict_mevps",
        ingest_mevps(&timeline, &Some(evict_store.clone() as SharedRecorder)),
    ));
    fields.push(("obs_ingest_evict_dropped", evict_store.dropped_events() as f64));

    // `Timeline::per_task_sequences`: the former per-event
    // `BTreeMap::entry` walk (reimplemented here as the baseline)
    // against the shipped linear dense-bucket pass.
    fields.push((
        "timeline_seqs_btree_us",
        time_us(|| {
            let mut m: BTreeMap<TaskId, Vec<(u32, &'static str)>> = BTreeMap::new();
            for e in &timeline {
                m.entry(e.task).or_default().push((e.attempt, e.phase.label()));
            }
            std::hint::black_box(m.len());
        }),
    ));
    let rec = TimelineRecorder::new();
    for e in &timeline {
        rec.record(e);
    }
    let snapshot = rec.snapshot();
    fields.push((
        "timeline_seqs_linear_us",
        time_us(|| {
            std::hint::black_box(snapshot.per_task_sequences().len());
        }),
    ));

    let mut report = BenchReport::new("pr5_kernels");
    report.push_point(&fields);
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, format!("{json}\n")).expect("write bench report");
        eprintln!("wrote {path}");
    }
}
