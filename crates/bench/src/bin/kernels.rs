//! Plain-`std::time` kernel timings for the zero-allocation HMM core.
//!
//! Criterion gives detailed statistics locally (`benches/micro.rs`), but
//! it is too heavy for a CI smoke check and unavailable in minimal
//! environments. This bin times the same kernel shapes with
//! `Instant`, best-of-3, and emits an [`sstd_obs::BenchReport`] JSON
//! object — the format committed at the repo root as `BENCH_PR5.json`.
//!
//! Usage: `cargo run --release -p sstd-bench --bin kernels [OUT.json]`
//! (prints to stdout; also writes to `OUT.json` when given).
//!
//! The measurement protocol is frozen so runs stay comparable across
//! commits: xorshift-seeded observations whose sign flips every 25
//! steps (±4.0 ± noise), a 2-state stay-0.9 symmetric-Gaussian model
//! (µ = 4.0, σ = 1.5), and Baum–Welch at 25 iterations with tolerance
//! 0 (no early convergence, so every run does identical work).

use sstd_core::AcsAggregator;
use sstd_hmm::{
    viterbi_into, BaumWelch, DecodeWorkspace, EmWorkspace, Hmm, StreamingViterbi,
    SymmetricGaussianEmission,
};
use sstd_obs::BenchReport;
use std::time::Instant;

/// Deterministic xorshift64* stream, so the bin needs no RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map to [-1, 1).
        (self.0 >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn observation_sequence(len: usize) -> Vec<f64> {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|t| {
            let sign = if (t / 25) % 2 == 0 { 1.0 } else { -1.0 };
            sign * 4.0 + rng.next_f64()
        })
        .collect()
}

fn truth_hmm() -> Hmm<SymmetricGaussianEmission> {
    Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        SymmetricGaussianEmission::new(4.0, 1.5).expect("valid emission"),
    )
    .expect("valid model")
}

/// Best-of-3 wall time of `f`, in microseconds.
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let trainer = BaumWelch::default().max_iterations(25).tolerance(0.0);
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();

    let mut fields: Vec<(&str, f64)> = Vec::new();
    for (label, t_len) in [("em_t100_us", 100usize), ("em_t1k_us", 1_000), ("em_t10k_us", 10_000)] {
        let obs = observation_sequence(t_len);
        let us = time_us(|| {
            let mut model = truth_hmm();
            std::hint::black_box(trainer.train_into(&mut model, &obs, &mut em));
        });
        fields.push((label, us));
    }

    let obs10k = observation_sequence(10_000);
    let hmm = truth_hmm();
    fields.push((
        "viterbi_t10k_us",
        time_us(|| {
            std::hint::black_box(viterbi_into(&hmm, &obs10k, &mut decode).len());
        }),
    ));

    let mut streaming = StreamingViterbi::new(truth_hmm()).with_max_pending(64);
    fields.push((
        "streaming_push_t10k_us",
        time_us(|| {
            streaming.reset(truth_hmm());
            for &o in &obs10k {
                std::hint::black_box(streaming.push(o));
            }
        }),
    ));

    let sums: Vec<f64> = observation_sequence(10_000);
    let mut acs_out = Vec::new();
    fields.push((
        "acs_rolling_10k_us",
        time_us(|| {
            AcsAggregator::windowed_into(&sums, 6, &mut acs_out);
            std::hint::black_box(acs_out.last().copied());
        }),
    ));

    let mut report = BenchReport::new("pr5_kernels");
    report.push_point(&fields);
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, format!("{json}\n")).expect("write bench report");
        eprintln!("wrote {path}");
    }
}
