//! Identifier newtypes for jobs, tasks and workers.

use std::fmt;

macro_rules! runtime_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates the id from its dense index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The dense index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

runtime_id!(
    /// Identifier of a truth-discovery job (one per claim in SSTD).
    JobId,
    "TD"
);
runtime_id!(
    /// Identifier of one task within the task pool.
    TaskId,
    "task"
);
runtime_id!(
    /// Identifier of a worker process in the worker pool.
    WorkerId,
    "wk"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        assert_eq!(JobId::new(3).index(), 3);
        assert_eq!(JobId::new(3).to_string(), "TD3");
        assert_eq!(TaskId::new(0).to_string(), "task0");
        assert_eq!(WorkerId::from(7u32).to_string(), "wk7");
    }

    #[test]
    fn ordering() {
        assert!(TaskId::new(1) < TaskId::new(2));
    }
}
