//! The unified fault model shared by both execution backends.
//!
//! The paper's substrate is opportunistic HTCondor desktops ("typically
//! idle 90% of the day", §IV-A1): preemption, stragglers and flaky
//! workers are the *normal* operating regime, not an edge case. This
//! module centralizes how those failure modes are described, injected and
//! survived:
//!
//! - [`FaultKind`] — the three fault classes: transient task failure,
//!   worker crash/eviction, and straggler slowdown;
//! - [`FaultPlan`] — a seeded, deterministic fault schedule: every
//!   `(task, attempt)` pair hashes to the same injection decision on
//!   every run, so experiments with faults stay byte-for-byte
//!   reproducible;
//! - [`IngestFault`] — the *data-path* fault classes (dropped, duplicated,
//!   reordered, corrupted reports, plus a scheduled ingest crash), decided
//!   per report sequence number by the same plan so chaos schedules are
//!   equally reproducible;
//! - [`RetryPolicy`] — per-task attempt caps with exponential backoff and
//!   deterministic jitter, plus worker quarantine thresholds;
//! - [`FastAbort`] — Work Queue–style straggler mitigation: re-queue
//!   attempts running beyond `k×` the running mean task time;
//! - [`FaultStats`] — failed-attempt accounting that reconciles exactly:
//!   `attempts = successes + failures + aborts`.
//!
//! Both the discrete-event backend ([`crate::DesEngine`]) and the
//! OS-thread backend ([`crate::ThreadedEngine`]) consume these types, so
//! a fault schedule exercised in simulation describes the same workload
//! on real threads.

use crate::{JobId, TaskId};
use sstd_types::error::ConfigError;

/// SplitMix64: a tiny, high-quality mixing function. Used to derive every
/// fault decision and jitter value from `(seed, task, attempt)` so the
/// schedule is a pure function of its inputs — independent of thread
/// interleaving or event order.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a unit-interval float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The failure modes a task attempt can suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The attempt fails partway through (bad input shard, OOM kill,
    /// flaky filesystem): the task survives and is retried.
    Transient,
    /// The executing worker dies mid-attempt (HTCondor preemption, node
    /// crash): the task is re-queued and the worker is lost (and, in the
    /// DES, respawns after a restart delay).
    WorkerCrash,
    /// The attempt runs far slower than nominal (overloaded desktop,
    /// thermal throttling): the attempt eventually finishes unless
    /// fast-abort kills it first.
    Straggler,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transient => write!(f, "transient"),
            Self::WorkerCrash => write!(f, "worker-crash"),
            Self::Straggler => write!(f, "straggler"),
        }
    }
}

/// The faults a streamed report can suffer on the ingest data path.
///
/// Truth-discovery outcomes are sensitive to input perturbations, so
/// dropped/duplicated/reordered reports are an explicitly tested fault
/// class rather than an accident of transport. Decisions are made per
/// report *sequence number* by [`FaultPlan::decide_ingest`], so a chaos
/// schedule is a pure function of the plan — the recovery differential
/// suite relies on that to replay the same perturbed stream twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestFault {
    /// The report is silently lost in transit.
    Drop,
    /// The report is delivered twice (at-least-once transport).
    Duplicate,
    /// The report is delayed past up to `depth` later reports — bounded
    /// out-of-order delivery.
    Reorder {
        /// How many later reports overtake this one (at least 1).
        depth: u32,
    },
    /// The report's payload is damaged in transit (its stance flips or
    /// its scores are zeroed, at the injector's discretion); consumers
    /// detect this via an integrity check and must reject the record.
    Corrupt,
}

impl std::fmt::Display for IngestFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Drop => write!(f, "drop"),
            Self::Duplicate => write!(f, "duplicate"),
            Self::Reorder { depth } => write!(f, "reorder(depth={depth})"),
            Self::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// A deterministic, seeded fault schedule.
///
/// Every `(task, attempt)` pair is hashed against the seed to decide
/// whether — and how — that attempt faults. Two runs with the same plan
/// and workload make identical decisions, regardless of worker count or
/// scheduling order, which keeps fault experiments reproducible.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{FaultPlan, TaskId};
///
/// let plan = FaultPlan::new(42).with_transient_rate(0.2);
/// // The decision for a given attempt never changes between calls.
/// assert_eq!(plan.decide(TaskId::new(3), 0), plan.decide(TaskId::new(3), 0));
/// // About 20% of attempts fault.
/// let faults = (0..1000u32)
///     .filter(|&i| plan.decide(TaskId::new(i), 0).is_some())
///     .count();
/// assert!((150..=250).contains(&faults), "got {faults}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    crash_rate: f64,
    straggler_rate: f64,
    straggler_slowdown: f64,
    fail_point: f64,
    worker_restart_delay: f64,
    ingest_drop_rate: f64,
    ingest_duplicate_rate: f64,
    ingest_reorder_rate: f64,
    ingest_reorder_depth: u32,
    ingest_corrupt_rate: f64,
    ingest_crash_at: Option<u64>,
}

impl FaultPlan {
    /// Creates a plan with the given seed and all fault rates at zero.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 8.0,
            fail_point: 0.5,
            worker_restart_delay: 1.0,
            ingest_drop_rate: 0.0,
            ingest_duplicate_rate: 0.0,
            ingest_reorder_rate: 0.0,
            ingest_reorder_depth: 4,
            ingest_corrupt_rate: 0.0,
            ingest_crash_at: None,
        }
    }

    /// Sets the per-attempt transient failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless the combined fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self.validate();
        self
    }

    /// Sets the per-attempt worker crash probability.
    ///
    /// # Panics
    ///
    /// Panics unless the combined fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.crash_rate = rate;
        self.validate();
        self
    }

    /// Sets the per-attempt straggler probability and the slowdown factor
    /// applied to afflicted attempts.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown >= 1` and the combined rates stay within
    /// `[0, 1]`.
    #[must_use]
    pub fn with_stragglers(mut self, rate: f64, slowdown: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(slowdown.is_finite() && slowdown >= 1.0, "slowdown must be at least 1");
        self.straggler_rate = rate;
        self.straggler_slowdown = slowdown;
        self.validate();
        self
    }

    /// Sets the fraction of an attempt's nominal duration at which a
    /// transient fault manifests (DES; default `0.5`).
    ///
    /// # Panics
    ///
    /// Panics unless `point` is in `(0, 1)`.
    #[must_use]
    pub fn with_fail_point(mut self, point: f64) -> Self {
        assert!(point > 0.0 && point < 1.0, "fail point must be in (0, 1)");
        self.fail_point = point;
        self
    }

    /// Sets the virtual delay before a crashed worker rejoins the pool
    /// (DES; default `1.0`). The HTCondor analogue: an evicted slot comes
    /// back once its owner goes idle again.
    ///
    /// # Panics
    ///
    /// Panics unless `delay` is finite and non-negative.
    #[must_use]
    pub fn with_restart_delay(mut self, delay: f64) -> Self {
        assert!(delay.is_finite() && delay >= 0.0, "restart delay must be non-negative");
        self.worker_restart_delay = delay;
        self
    }

    /// Sets the per-report probability that an ingested report is dropped.
    ///
    /// # Panics
    ///
    /// Panics unless the combined ingest fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_ingest_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.ingest_drop_rate = rate;
        self.validate_ingest();
        self
    }

    /// Sets the per-report probability that an ingested report is
    /// delivered twice.
    ///
    /// # Panics
    ///
    /// Panics unless the combined ingest fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_ingest_duplicate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.ingest_duplicate_rate = rate;
        self.validate_ingest();
        self
    }

    /// Sets the per-report reorder probability and the maximum number of
    /// later reports that may overtake a delayed one.
    ///
    /// # Panics
    ///
    /// Panics unless `max_depth >= 1` and the combined ingest fault rates
    /// stay within `[0, 1]`.
    #[must_use]
    pub fn with_ingest_reorder(mut self, rate: f64, max_depth: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(max_depth >= 1, "reorder depth must be at least 1");
        self.ingest_reorder_rate = rate;
        self.ingest_reorder_depth = max_depth;
        self.validate_ingest();
        self
    }

    /// Sets the per-report probability that an ingested report arrives
    /// with a damaged payload.
    ///
    /// # Panics
    ///
    /// Panics unless the combined ingest fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_ingest_corrupt_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.ingest_corrupt_rate = rate;
        self.validate_ingest();
        self
    }

    /// Schedules an ingest crash: the consumer dies immediately after
    /// taking the report with sequence number `k` off the wire.
    #[must_use]
    pub const fn with_ingest_crash_at(mut self, k: u64) -> Self {
        self.ingest_crash_at = Some(k);
        self
    }

    fn validate(&self) {
        let total = self.transient_rate + self.crash_rate + self.straggler_rate;
        assert!(total <= 1.0 + 1e-12, "combined fault rates must not exceed 1");
    }

    fn validate_ingest(&self) {
        let total = self.ingest_drop_rate
            + self.ingest_duplicate_rate
            + self.ingest_reorder_rate
            + self.ingest_corrupt_rate;
        assert!(total <= 1.0 + 1e-12, "combined ingest fault rates must not exceed 1");
    }

    /// The plan's seed.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Slowdown factor applied to straggler attempts.
    #[must_use]
    pub const fn straggler_slowdown(&self) -> f64 {
        self.straggler_slowdown
    }

    /// Fraction of the nominal duration at which transient faults fire.
    #[must_use]
    pub const fn fail_point(&self) -> f64 {
        self.fail_point
    }

    /// Virtual delay before a crashed worker respawns.
    #[must_use]
    pub const fn worker_restart_delay(&self) -> f64 {
        self.worker_restart_delay
    }

    /// The injection decision for one attempt of one task — a pure
    /// function of `(seed, task, attempt)`.
    #[must_use]
    pub fn decide(&self, task: TaskId, attempt: u32) -> Option<FaultKind> {
        let total = self.transient_rate + self.crash_rate + self.straggler_rate;
        if total <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ (task.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        let u = unit(h);
        if u < self.transient_rate {
            Some(FaultKind::Transient)
        } else if u < self.transient_rate + self.crash_rate {
            Some(FaultKind::WorkerCrash)
        } else if u < total {
            Some(FaultKind::Straggler)
        } else {
            None
        }
    }

    /// The data-path injection decision for the report with sequence
    /// number `seq` — a pure function of `(seed, seq)`, hashed in a
    /// domain separate from [`decide`](Self::decide) so task faults and
    /// ingest faults draw independently.
    #[must_use]
    pub fn decide_ingest(&self, seq: u64) -> Option<IngestFault> {
        let total = self.ingest_drop_rate
            + self.ingest_duplicate_rate
            + self.ingest_reorder_rate
            + self.ingest_corrupt_rate;
        if total <= 0.0 {
            return None;
        }
        let h =
            splitmix64(self.seed ^ 0x16E5_7DA7_A9A7_0D1E ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let u = unit(h);
        let mut edge = self.ingest_drop_rate;
        if u < edge {
            return Some(IngestFault::Drop);
        }
        edge += self.ingest_duplicate_rate;
        if u < edge {
            return Some(IngestFault::Duplicate);
        }
        edge += self.ingest_reorder_rate;
        if u < edge {
            // Depth drawn from a second mix of the same hash so it stays a
            // pure function of (seed, seq).
            let depth = 1 + (splitmix64(h) % u64::from(self.ingest_reorder_depth)) as u32;
            return Some(IngestFault::Reorder { depth });
        }
        edge += self.ingest_corrupt_rate;
        if u < edge {
            return Some(IngestFault::Corrupt);
        }
        None
    }

    /// The scheduled ingest-crash point, if any: the consumer dies right
    /// after taking this sequence number off the wire.
    #[must_use]
    pub const fn ingest_crash_at(&self) -> Option<u64> {
        self.ingest_crash_at
    }
}

/// Retry semantics for faulted task attempts.
///
/// Transient failures are retried with exponential backoff (plus a
/// deterministic jitter so synchronized failures do not re-collide) up to
/// `max_attempts` total attempts; a task that exhausts its attempts is
/// recorded as failed rather than retried forever. Worker-crash re-queues
/// do not count against the cap — losing a machine is not the task's
/// fault — but are still bounded (at `50 × max_attempts`) so a
/// pathological schedule cannot loop unboundedly.
///
/// # Examples
///
/// ```
/// use sstd_runtime::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// // Backoff grows geometrically with the attempt number.
/// assert!(p.backoff(2, 7) > p.backoff(1, 7));
/// // Jitter is deterministic: same inputs, same delay.
/// assert_eq!(p.backoff(1, 7), p.backoff(1, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total attempts per task (first run included).
    pub max_attempts: u32,
    /// Base backoff delay before the first retry (virtual seconds in the
    /// DES; real seconds in the threaded backend).
    pub backoff_base: f64,
    /// Multiplier applied per additional attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Faults tolerated on one worker before it is quarantined
    /// (blacklisted); `0` disables quarantine.
    pub quarantine_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            backoff_base: 0.05,
            backoff_multiplier: 2.0,
            backoff_cap: 2.0,
            jitter: 0.2,
            quarantine_threshold: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every fault is terminal.
    #[must_use]
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Validates the policy's invariants: `max_attempts >= 1`, delays
    /// finite and non-negative, `backoff_multiplier >= 1` and
    /// `jitter ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts < 1 {
            return Err(ConfigError::new("max_attempts", "need at least one attempt"));
        }
        if !(self.backoff_base.is_finite() && self.backoff_base >= 0.0) {
            return Err(ConfigError::new("backoff_base", "backoff base must be non-negative"));
        }
        if !(self.backoff_multiplier.is_finite() && self.backoff_multiplier >= 1.0) {
            return Err(ConfigError::new(
                "backoff_multiplier",
                "backoff multiplier must be at least 1",
            ));
        }
        if !(self.backoff_cap.is_finite() && self.backoff_cap >= 0.0) {
            return Err(ConfigError::new("backoff_cap", "backoff cap must be non-negative"));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(ConfigError::new("jitter", "jitter must be in [0, 1]"));
        }
        Ok(())
    }

    /// Panicking form of [`validate`](Self::validate), for call sites that
    /// cannot propagate (engine setters on already-running backends).
    ///
    /// # Panics
    ///
    /// Panics with the validation error's message if the policy is
    /// invalid.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }

    /// The backoff delay before retry number `attempt` (1-based: the
    /// first retry passes `1`), jittered deterministically by `salt`.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> f64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.backoff_base * self.backoff_multiplier.powi(exp as i32);
        let capped = raw.min(self.backoff_cap);
        let h = splitmix64(salt ^ u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D));
        capped * (1.0 + self.jitter * unit(h))
    }

    /// The hard ceiling on total attempts including crash re-queues —
    /// generous enough never to matter in practice, but it guarantees
    /// termination under adversarial fault schedules.
    #[must_use]
    pub fn hard_attempt_cap(&self) -> u32 {
        self.max_attempts.saturating_mul(50).max(50)
    }
}

/// Straggler mitigation in the Work Queue fast-abort style: attempts
/// running beyond `multiplier ×` the running mean task time are aborted
/// and re-queued (DES) or speculatively duplicated (threaded backend).
///
/// Mitigation only engages once `min_samples` completions have warmed the
/// running mean, and at most `max_speculations` times per task — after
/// that the attempt runs to completion, so a genuinely long task can
/// never be aborted forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastAbort {
    /// Abort attempts running beyond this multiple of the mean task time.
    pub multiplier: f64,
    /// Completions required before the mean is trusted.
    pub min_samples: u64,
    /// Fast-aborts allowed per task before it is left to run.
    pub max_speculations: u32,
}

impl Default for FastAbort {
    fn default() -> Self {
        Self { multiplier: 3.0, min_samples: 8, max_speculations: 2 }
    }
}

impl FastAbort {
    /// Validates the configuration: `multiplier > 1` and
    /// `min_samples >= 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.multiplier.is_finite() && self.multiplier > 1.0) {
            return Err(ConfigError::new("multiplier", "fast-abort multiplier must exceed 1"));
        }
        if self.min_samples < 1 {
            return Err(ConfigError::new("min_samples", "need at least one warm-up sample"));
        }
        Ok(())
    }

    /// Panicking form of [`validate`](Self::validate), for call sites that
    /// cannot propagate.
    ///
    /// # Panics
    ///
    /// Panics with the validation error's message if the configuration is
    /// invalid.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Failed-attempt accounting. Every *started* attempt terminates exactly
/// one way — success, failure (transient fault or worker loss) or abort
/// (fast-abort / timeout / discarded speculative duplicate) — so the books
/// always reconcile: `attempts = successes + failures() + aborts()`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Task attempts started.
    pub attempts: u64,
    /// Attempts that completed and were recorded.
    pub successes: u64,
    /// Attempts that suffered a transient failure (injected or a caught
    /// panic in the threaded backend).
    pub transient_failures: u64,
    /// Attempts lost to a worker crash or eviction.
    pub crash_failures: u64,
    /// Attempts killed by straggler fast-abort (or completed after their
    /// task was already done — wasted speculative work).
    pub straggler_aborts: u64,
    /// Attempts abandoned after exceeding the wall-clock timeout
    /// (threaded backend).
    pub timeout_aborts: u64,
    /// Panics caught in the threaded backend (a subset of
    /// `transient_failures`).
    pub panics: u64,
    /// Tasks dropped after exhausting their retry budget.
    pub exhausted_tasks: u64,
    /// Workers quarantined after repeated faults.
    pub quarantined_workers: u64,
    /// Total time burned in failed or aborted attempts (virtual seconds
    /// in the DES; real seconds in the threaded backend).
    pub wasted_time: f64,
}

impl FaultStats {
    /// Attempts that ended in a failure (transient or worker loss).
    #[must_use]
    pub const fn failures(&self) -> u64 {
        self.transient_failures + self.crash_failures
    }

    /// Attempts that ended in an abort (straggler kill, timeout, or a
    /// discarded speculative duplicate).
    #[must_use]
    pub const fn aborts(&self) -> u64 {
        self.straggler_aborts + self.timeout_aborts
    }

    /// Whether the books balance: every started attempt is accounted for
    /// as exactly one of success, failure or abort.
    #[must_use]
    pub const fn reconciles(&self) -> bool {
        self.attempts == self.successes + self.failures() + self.aborts()
    }

    /// Fraction of attempts lost to faults (`0` with no attempts) — the
    /// lost-capacity signal the DTM feeds into its WCET predictions.
    #[must_use]
    pub fn fault_ratio(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.failures() + self.aborts()) as f64 / self.attempts as f64
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attempts={} ok={} fail={} abort={} exhausted={} quarantined={} wasted={:.3}",
            self.attempts,
            self.successes,
            self.failures(),
            self.aborts(),
            self.exhausted_tasks,
            self.quarantined_workers,
            self.wasted_time
        )
    }
}

/// A task that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTask {
    /// The task's identity.
    pub task: TaskId,
    /// Its owning job.
    pub job: JobId,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Human-readable cause of the final failure.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(7)
            .with_transient_rate(0.1)
            .with_crash_rate(0.05)
            .with_stragglers(0.05, 10.0);
        let mut counts = [0usize; 4];
        for i in 0..10_000u32 {
            let d = plan.decide(TaskId::new(i), 0);
            assert_eq!(d, plan.decide(TaskId::new(i), 0), "decision must be stable");
            match d {
                Some(FaultKind::Transient) => counts[0] += 1,
                Some(FaultKind::WorkerCrash) => counts[1] += 1,
                Some(FaultKind::Straggler) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        assert!((800..=1200).contains(&counts[0]), "transient ~10%: {counts:?}");
        assert!((350..=650).contains(&counts[1]), "crash ~5%: {counts:?}");
        assert!((350..=650).contains(&counts[2]), "straggler ~5%: {counts:?}");
    }

    #[test]
    fn attempts_decide_independently() {
        let plan = FaultPlan::new(3).with_transient_rate(0.5);
        // Across many tasks, attempt 0 and attempt 1 decisions differ
        // somewhere (independent hashes).
        let differs =
            (0..100u32).any(|i| plan.decide(TaskId::new(i), 0) != plan.decide(TaskId::new(i), 1));
        assert!(differs);
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::new(1);
        assert!((0..1000u32).all(|i| plan.decide(TaskId::new(i), 0).is_none()));
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan::new(1).with_transient_rate(0.3);
        let b = FaultPlan::new(2).with_transient_rate(0.3);
        let differs =
            (0..100u32).any(|i| a.decide(TaskId::new(i), 0) != b.decide(TaskId::new(i), 0));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "combined fault rates")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(0).with_transient_rate(0.7).with_crash_rate(0.5);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            backoff_base: 1.0,
            backoff_multiplier: 2.0,
            backoff_cap: 5.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert!((p.backoff(1, 0) - 1.0).abs() < 1e-12);
        assert!((p.backoff(2, 0) - 2.0).abs() < 1e-12);
        assert!((p.backoff(3, 0) - 4.0).abs() < 1e-12);
        assert!((p.backoff(4, 0) - 5.0).abs() < 1e-12, "capped");
        assert!((p.backoff(30, 0) - 5.0).abs() < 1e-12, "still capped");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy { backoff_base: 1.0, jitter: 0.5, ..RetryPolicy::default() };
        for salt in 0..50u64 {
            let d = p.backoff(1, salt);
            assert!((1.0..1.5 + 1e-12).contains(&d), "delay {d}");
            assert_eq!(d, p.backoff(1, salt));
        }
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        let p = RetryPolicy::no_retries();
        p.validate().expect("no_retries is a valid policy");
        assert_eq!(p.max_attempts, 1);
        assert!(p.hard_attempt_cap() >= 50);
    }

    #[test]
    fn zero_attempts_rejected() {
        let err = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() }
            .validate()
            .expect_err("zero attempts must be rejected");
        assert_eq!(err.field(), "max_attempts");
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn assert_valid_panics_on_invalid_policy() {
        RetryPolicy { max_attempts: 0, ..RetryPolicy::default() }.assert_valid();
    }

    #[test]
    fn retry_policy_names_each_offending_field() {
        let base = RetryPolicy::default();
        let cases = [
            (RetryPolicy { backoff_base: -1.0, ..base }, "backoff_base"),
            (RetryPolicy { backoff_base: f64::NAN, ..base }, "backoff_base"),
            (RetryPolicy { backoff_multiplier: 0.5, ..base }, "backoff_multiplier"),
            (RetryPolicy { backoff_cap: f64::INFINITY, ..base }, "backoff_cap"),
            (RetryPolicy { jitter: 1.5, ..base }, "jitter"),
        ];
        for (policy, field) in cases {
            let err = policy.validate().expect_err("invalid policy");
            assert_eq!(err.field(), field);
        }
    }

    #[test]
    fn fast_abort_validates_multiplier() {
        let err = FastAbort { multiplier: 1.0, ..FastAbort::default() }
            .validate()
            .expect_err("multiplier 1.0 must be rejected");
        assert_eq!(err.field(), "multiplier");
        let err = FastAbort { min_samples: 0, ..FastAbort::default() }
            .validate()
            .expect_err("zero warm-up samples must be rejected");
        assert_eq!(err.field(), "min_samples");
        FastAbort::default().validate().expect("default is valid");
    }

    #[test]
    #[should_panic(expected = "multiplier must exceed 1")]
    fn fast_abort_assert_valid_panics() {
        FastAbort { multiplier: 0.0, ..FastAbort::default() }.assert_valid();
    }

    #[test]
    fn zero_backoff_cap_yields_zero_delays() {
        // backoff_cap = 0.0 is valid (retry immediately) and must clamp
        // every delay to exactly zero, jitter included.
        let p = RetryPolicy { backoff_cap: 0.0, jitter: 0.5, ..RetryPolicy::default() };
        p.validate().expect("zero cap is a valid policy");
        for attempt in 1..20u32 {
            assert_eq!(p.backoff(attempt, 99), 0.0, "attempt {attempt}");
        }
    }

    #[test]
    fn zero_restart_delay_is_accepted() {
        let plan = FaultPlan::new(5).with_restart_delay(0.0);
        assert_eq!(plan.worker_restart_delay(), 0.0);
    }

    #[test]
    fn fault_ratio_is_zero_under_zero_attempts() {
        let s = FaultStats::default();
        assert_eq!(s.attempts, 0);
        assert_eq!(s.fault_ratio(), 0.0, "no attempts must not divide by zero");
        assert!(s.fault_ratio().is_finite());
    }

    #[test]
    fn ingest_decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(11)
            .with_ingest_drop_rate(0.1)
            .with_ingest_duplicate_rate(0.1)
            .with_ingest_reorder(0.1, 4)
            .with_ingest_corrupt_rate(0.05);
        let mut counts = [0usize; 5];
        for seq in 0..10_000u64 {
            let d = plan.decide_ingest(seq);
            assert_eq!(d, plan.decide_ingest(seq), "decision must be stable");
            match d {
                Some(IngestFault::Drop) => counts[0] += 1,
                Some(IngestFault::Duplicate) => counts[1] += 1,
                Some(IngestFault::Reorder { depth }) => {
                    assert!((1..=4).contains(&depth), "depth {depth}");
                    counts[2] += 1;
                }
                Some(IngestFault::Corrupt) => counts[3] += 1,
                None => counts[4] += 1,
            }
        }
        assert!((800..=1200).contains(&counts[0]), "drop ~10%: {counts:?}");
        assert!((800..=1200).contains(&counts[1]), "duplicate ~10%: {counts:?}");
        assert!((800..=1200).contains(&counts[2]), "reorder ~10%: {counts:?}");
        assert!((350..=650).contains(&counts[3]), "corrupt ~5%: {counts:?}");
    }

    #[test]
    fn ingest_faults_are_independent_of_task_faults() {
        // Same seed, but task decisions and ingest decisions hash in
        // separate domains: enabling one leaves the other untouched.
        let tasks_only = FaultPlan::new(21).with_transient_rate(0.3);
        let both = tasks_only.with_ingest_drop_rate(0.3);
        for i in 0..500u32 {
            assert_eq!(tasks_only.decide(TaskId::new(i), 0), both.decide(TaskId::new(i), 0));
        }
        assert!((0..500u64).all(|s| tasks_only.decide_ingest(s).is_none()));
    }

    #[test]
    fn zero_ingest_rates_never_fault() {
        let plan = FaultPlan::new(1).with_ingest_crash_at(7);
        assert!((0..1000u64).all(|s| plan.decide_ingest(s).is_none()));
        assert_eq!(plan.ingest_crash_at(), Some(7));
        assert_eq!(FaultPlan::new(1).ingest_crash_at(), None);
    }

    #[test]
    #[should_panic(expected = "combined ingest fault rates")]
    fn overfull_ingest_rates_rejected() {
        let _ = FaultPlan::new(0).with_ingest_drop_rate(0.7).with_ingest_duplicate_rate(0.5);
    }

    #[test]
    fn ingest_fault_display_formats() {
        assert_eq!(IngestFault::Drop.to_string(), "drop");
        assert_eq!(IngestFault::Duplicate.to_string(), "duplicate");
        assert_eq!(IngestFault::Reorder { depth: 3 }.to_string(), "reorder(depth=3)");
        assert_eq!(IngestFault::Corrupt.to_string(), "corrupt");
    }

    #[test]
    fn stats_reconcile() {
        let mut s = FaultStats::default();
        assert!(s.reconciles());
        s.attempts = 10;
        s.successes = 6;
        s.transient_failures = 2;
        s.crash_failures = 1;
        s.straggler_aborts = 1;
        assert!(s.reconciles());
        assert_eq!(s.failures(), 3);
        assert_eq!(s.aborts(), 1);
        assert!((s.fault_ratio() - 0.4).abs() < 1e-12);
        s.attempts = 11;
        assert!(!s.reconciles());
    }

    #[test]
    fn display_formats() {
        assert!(FaultStats::default().to_string().contains("attempts=0"));
        assert_eq!(FaultKind::Transient.to_string(), "transient");
        assert_eq!(FaultKind::WorkerCrash.to_string(), "worker-crash");
        assert_eq!(FaultKind::Straggler.to_string(), "straggler");
    }
}
