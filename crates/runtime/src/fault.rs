//! The unified fault model shared by both execution backends.
//!
//! The paper's substrate is opportunistic HTCondor desktops ("typically
//! idle 90% of the day", §IV-A1): preemption, stragglers and flaky
//! workers are the *normal* operating regime, not an edge case. This
//! module centralizes how those failure modes are described, injected and
//! survived:
//!
//! - [`FaultKind`] — the three fault classes: transient task failure,
//!   worker crash/eviction, and straggler slowdown;
//! - [`FaultPlan`] — a seeded, deterministic fault schedule: every
//!   `(task, attempt)` pair hashes to the same injection decision on
//!   every run, so experiments with faults stay byte-for-byte
//!   reproducible;
//! - [`RetryPolicy`] — per-task attempt caps with exponential backoff and
//!   deterministic jitter, plus worker quarantine thresholds;
//! - [`FastAbort`] — Work Queue–style straggler mitigation: re-queue
//!   attempts running beyond `k×` the running mean task time;
//! - [`FaultStats`] — failed-attempt accounting that reconciles exactly:
//!   `attempts = successes + failures + aborts`.
//!
//! Both the discrete-event backend ([`crate::DesEngine`]) and the
//! OS-thread backend ([`crate::ThreadedEngine`]) consume these types, so
//! a fault schedule exercised in simulation describes the same workload
//! on real threads.

use crate::{JobId, TaskId};

/// SplitMix64: a tiny, high-quality mixing function. Used to derive every
/// fault decision and jitter value from `(seed, task, attempt)` so the
/// schedule is a pure function of its inputs — independent of thread
/// interleaving or event order.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a unit-interval float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The failure modes a task attempt can suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The attempt fails partway through (bad input shard, OOM kill,
    /// flaky filesystem): the task survives and is retried.
    Transient,
    /// The executing worker dies mid-attempt (HTCondor preemption, node
    /// crash): the task is re-queued and the worker is lost (and, in the
    /// DES, respawns after a restart delay).
    WorkerCrash,
    /// The attempt runs far slower than nominal (overloaded desktop,
    /// thermal throttling): the attempt eventually finishes unless
    /// fast-abort kills it first.
    Straggler,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transient => write!(f, "transient"),
            Self::WorkerCrash => write!(f, "worker-crash"),
            Self::Straggler => write!(f, "straggler"),
        }
    }
}

/// A deterministic, seeded fault schedule.
///
/// Every `(task, attempt)` pair is hashed against the seed to decide
/// whether — and how — that attempt faults. Two runs with the same plan
/// and workload make identical decisions, regardless of worker count or
/// scheduling order, which keeps fault experiments reproducible.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{FaultPlan, TaskId};
///
/// let plan = FaultPlan::new(42).with_transient_rate(0.2);
/// // The decision for a given attempt never changes between calls.
/// assert_eq!(plan.decide(TaskId::new(3), 0), plan.decide(TaskId::new(3), 0));
/// // About 20% of attempts fault.
/// let faults = (0..1000u32)
///     .filter(|&i| plan.decide(TaskId::new(i), 0).is_some())
///     .count();
/// assert!((150..=250).contains(&faults), "got {faults}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    crash_rate: f64,
    straggler_rate: f64,
    straggler_slowdown: f64,
    fail_point: f64,
    worker_restart_delay: f64,
}

impl FaultPlan {
    /// Creates a plan with the given seed and all fault rates at zero.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            crash_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 8.0,
            fail_point: 0.5,
            worker_restart_delay: 1.0,
        }
    }

    /// Sets the per-attempt transient failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless the combined fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self.validate();
        self
    }

    /// Sets the per-attempt worker crash probability.
    ///
    /// # Panics
    ///
    /// Panics unless the combined fault rates stay within `[0, 1]`.
    #[must_use]
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.crash_rate = rate;
        self.validate();
        self
    }

    /// Sets the per-attempt straggler probability and the slowdown factor
    /// applied to afflicted attempts.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown >= 1` and the combined rates stay within
    /// `[0, 1]`.
    #[must_use]
    pub fn with_stragglers(mut self, rate: f64, slowdown: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(slowdown.is_finite() && slowdown >= 1.0, "slowdown must be at least 1");
        self.straggler_rate = rate;
        self.straggler_slowdown = slowdown;
        self.validate();
        self
    }

    /// Sets the fraction of an attempt's nominal duration at which a
    /// transient fault manifests (DES; default `0.5`).
    ///
    /// # Panics
    ///
    /// Panics unless `point` is in `(0, 1)`.
    #[must_use]
    pub fn with_fail_point(mut self, point: f64) -> Self {
        assert!(point > 0.0 && point < 1.0, "fail point must be in (0, 1)");
        self.fail_point = point;
        self
    }

    /// Sets the virtual delay before a crashed worker rejoins the pool
    /// (DES; default `1.0`). The HTCondor analogue: an evicted slot comes
    /// back once its owner goes idle again.
    ///
    /// # Panics
    ///
    /// Panics unless `delay` is finite and non-negative.
    #[must_use]
    pub fn with_restart_delay(mut self, delay: f64) -> Self {
        assert!(delay.is_finite() && delay >= 0.0, "restart delay must be non-negative");
        self.worker_restart_delay = delay;
        self
    }

    fn validate(&self) {
        let total = self.transient_rate + self.crash_rate + self.straggler_rate;
        assert!(total <= 1.0 + 1e-12, "combined fault rates must not exceed 1");
    }

    /// The plan's seed.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Slowdown factor applied to straggler attempts.
    #[must_use]
    pub const fn straggler_slowdown(&self) -> f64 {
        self.straggler_slowdown
    }

    /// Fraction of the nominal duration at which transient faults fire.
    #[must_use]
    pub const fn fail_point(&self) -> f64 {
        self.fail_point
    }

    /// Virtual delay before a crashed worker respawns.
    #[must_use]
    pub const fn worker_restart_delay(&self) -> f64 {
        self.worker_restart_delay
    }

    /// The injection decision for one attempt of one task — a pure
    /// function of `(seed, task, attempt)`.
    #[must_use]
    pub fn decide(&self, task: TaskId, attempt: u32) -> Option<FaultKind> {
        let total = self.transient_rate + self.crash_rate + self.straggler_rate;
        if total <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ (task.index() as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        let u = unit(h);
        if u < self.transient_rate {
            Some(FaultKind::Transient)
        } else if u < self.transient_rate + self.crash_rate {
            Some(FaultKind::WorkerCrash)
        } else if u < total {
            Some(FaultKind::Straggler)
        } else {
            None
        }
    }
}

/// Retry semantics for faulted task attempts.
///
/// Transient failures are retried with exponential backoff (plus a
/// deterministic jitter so synchronized failures do not re-collide) up to
/// `max_attempts` total attempts; a task that exhausts its attempts is
/// recorded as failed rather than retried forever. Worker-crash re-queues
/// do not count against the cap — losing a machine is not the task's
/// fault — but are still bounded (at `50 × max_attempts`) so a
/// pathological schedule cannot loop unboundedly.
///
/// # Examples
///
/// ```
/// use sstd_runtime::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// // Backoff grows geometrically with the attempt number.
/// assert!(p.backoff(2, 7) > p.backoff(1, 7));
/// // Jitter is deterministic: same inputs, same delay.
/// assert_eq!(p.backoff(1, 7), p.backoff(1, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total attempts per task (first run included).
    pub max_attempts: u32,
    /// Base backoff delay before the first retry (virtual seconds in the
    /// DES; real seconds in the threaded backend).
    pub backoff_base: f64,
    /// Multiplier applied per additional attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Faults tolerated on one worker before it is quarantined
    /// (blacklisted); `0` disables quarantine.
    pub quarantine_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            backoff_base: 0.05,
            backoff_multiplier: 2.0,
            backoff_cap: 2.0,
            jitter: 0.2,
            quarantine_threshold: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every fault is terminal.
    #[must_use]
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Validates the policy's invariants.
    ///
    /// # Panics
    ///
    /// Panics unless `max_attempts >= 1`, delays are finite and
    /// non-negative, `backoff_multiplier >= 1` and `jitter ∈ [0, 1]`.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        assert!(
            self.backoff_base.is_finite() && self.backoff_base >= 0.0,
            "backoff base must be non-negative"
        );
        assert!(
            self.backoff_multiplier.is_finite() && self.backoff_multiplier >= 1.0,
            "backoff multiplier must be at least 1"
        );
        assert!(
            self.backoff_cap.is_finite() && self.backoff_cap >= 0.0,
            "backoff cap must be non-negative"
        );
        assert!((0.0..=1.0).contains(&self.jitter), "jitter must be in [0, 1]");
    }

    /// The backoff delay before retry number `attempt` (1-based: the
    /// first retry passes `1`), jittered deterministically by `salt`.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> f64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.backoff_base * self.backoff_multiplier.powi(exp as i32);
        let capped = raw.min(self.backoff_cap);
        let h = splitmix64(salt ^ u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D));
        capped * (1.0 + self.jitter * unit(h))
    }

    /// The hard ceiling on total attempts including crash re-queues —
    /// generous enough never to matter in practice, but it guarantees
    /// termination under adversarial fault schedules.
    #[must_use]
    pub fn hard_attempt_cap(&self) -> u32 {
        self.max_attempts.saturating_mul(50).max(50)
    }
}

/// Straggler mitigation in the Work Queue fast-abort style: attempts
/// running beyond `multiplier ×` the running mean task time are aborted
/// and re-queued (DES) or speculatively duplicated (threaded backend).
///
/// Mitigation only engages once `min_samples` completions have warmed the
/// running mean, and at most `max_speculations` times per task — after
/// that the attempt runs to completion, so a genuinely long task can
/// never be aborted forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastAbort {
    /// Abort attempts running beyond this multiple of the mean task time.
    pub multiplier: f64,
    /// Completions required before the mean is trusted.
    pub min_samples: u64,
    /// Fast-aborts allowed per task before it is left to run.
    pub max_speculations: u32,
}

impl Default for FastAbort {
    fn default() -> Self {
        Self { multiplier: 3.0, min_samples: 8, max_speculations: 2 }
    }
}

impl FastAbort {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `multiplier > 1` and `min_samples >= 1`.
    pub fn validate(&self) {
        assert!(
            self.multiplier.is_finite() && self.multiplier > 1.0,
            "fast-abort multiplier must exceed 1"
        );
        assert!(self.min_samples >= 1, "need at least one warm-up sample");
    }
}

/// Failed-attempt accounting. Every *started* attempt terminates exactly
/// one way — success, failure (transient fault or worker loss) or abort
/// (fast-abort / timeout / discarded speculative duplicate) — so the books
/// always reconcile: `attempts = successes + failures() + aborts()`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Task attempts started.
    pub attempts: u64,
    /// Attempts that completed and were recorded.
    pub successes: u64,
    /// Attempts that suffered a transient failure (injected or a caught
    /// panic in the threaded backend).
    pub transient_failures: u64,
    /// Attempts lost to a worker crash or eviction.
    pub crash_failures: u64,
    /// Attempts killed by straggler fast-abort (or completed after their
    /// task was already done — wasted speculative work).
    pub straggler_aborts: u64,
    /// Attempts abandoned after exceeding the wall-clock timeout
    /// (threaded backend).
    pub timeout_aborts: u64,
    /// Panics caught in the threaded backend (a subset of
    /// `transient_failures`).
    pub panics: u64,
    /// Tasks dropped after exhausting their retry budget.
    pub exhausted_tasks: u64,
    /// Workers quarantined after repeated faults.
    pub quarantined_workers: u64,
    /// Total time burned in failed or aborted attempts (virtual seconds
    /// in the DES; real seconds in the threaded backend).
    pub wasted_time: f64,
}

impl FaultStats {
    /// Attempts that ended in a failure (transient or worker loss).
    #[must_use]
    pub const fn failures(&self) -> u64 {
        self.transient_failures + self.crash_failures
    }

    /// Attempts that ended in an abort (straggler kill, timeout, or a
    /// discarded speculative duplicate).
    #[must_use]
    pub const fn aborts(&self) -> u64 {
        self.straggler_aborts + self.timeout_aborts
    }

    /// Whether the books balance: every started attempt is accounted for
    /// as exactly one of success, failure or abort.
    #[must_use]
    pub const fn reconciles(&self) -> bool {
        self.attempts == self.successes + self.failures() + self.aborts()
    }

    /// Fraction of attempts lost to faults (`0` with no attempts) — the
    /// lost-capacity signal the DTM feeds into its WCET predictions.
    #[must_use]
    pub fn fault_ratio(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.failures() + self.aborts()) as f64 / self.attempts as f64
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attempts={} ok={} fail={} abort={} exhausted={} quarantined={} wasted={:.3}",
            self.attempts,
            self.successes,
            self.failures(),
            self.aborts(),
            self.exhausted_tasks,
            self.quarantined_workers,
            self.wasted_time
        )
    }
}

/// A task that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTask {
    /// The task's identity.
    pub task: TaskId,
    /// Its owning job.
    pub job: JobId,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Human-readable cause of the final failure.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::new(7)
            .with_transient_rate(0.1)
            .with_crash_rate(0.05)
            .with_stragglers(0.05, 10.0);
        let mut counts = [0usize; 4];
        for i in 0..10_000u32 {
            let d = plan.decide(TaskId::new(i), 0);
            assert_eq!(d, plan.decide(TaskId::new(i), 0), "decision must be stable");
            match d {
                Some(FaultKind::Transient) => counts[0] += 1,
                Some(FaultKind::WorkerCrash) => counts[1] += 1,
                Some(FaultKind::Straggler) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        assert!((800..=1200).contains(&counts[0]), "transient ~10%: {counts:?}");
        assert!((350..=650).contains(&counts[1]), "crash ~5%: {counts:?}");
        assert!((350..=650).contains(&counts[2]), "straggler ~5%: {counts:?}");
    }

    #[test]
    fn attempts_decide_independently() {
        let plan = FaultPlan::new(3).with_transient_rate(0.5);
        // Across many tasks, attempt 0 and attempt 1 decisions differ
        // somewhere (independent hashes).
        let differs =
            (0..100u32).any(|i| plan.decide(TaskId::new(i), 0) != plan.decide(TaskId::new(i), 1));
        assert!(differs);
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::new(1);
        assert!((0..1000u32).all(|i| plan.decide(TaskId::new(i), 0).is_none()));
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan::new(1).with_transient_rate(0.3);
        let b = FaultPlan::new(2).with_transient_rate(0.3);
        let differs =
            (0..100u32).any(|i| a.decide(TaskId::new(i), 0) != b.decide(TaskId::new(i), 0));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "combined fault rates")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(0).with_transient_rate(0.7).with_crash_rate(0.5);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            backoff_base: 1.0,
            backoff_multiplier: 2.0,
            backoff_cap: 5.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert!((p.backoff(1, 0) - 1.0).abs() < 1e-12);
        assert!((p.backoff(2, 0) - 2.0).abs() < 1e-12);
        assert!((p.backoff(3, 0) - 4.0).abs() < 1e-12);
        assert!((p.backoff(4, 0) - 5.0).abs() < 1e-12, "capped");
        assert!((p.backoff(30, 0) - 5.0).abs() < 1e-12, "still capped");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy { backoff_base: 1.0, jitter: 0.5, ..RetryPolicy::default() };
        for salt in 0..50u64 {
            let d = p.backoff(1, salt);
            assert!((1.0..1.5 + 1e-12).contains(&d), "delay {d}");
            assert_eq!(d, p.backoff(1, salt));
        }
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        let p = RetryPolicy::no_retries();
        p.validate();
        assert_eq!(p.max_attempts, 1);
        assert!(p.hard_attempt_cap() >= 50);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        RetryPolicy { max_attempts: 0, ..RetryPolicy::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "multiplier must exceed 1")]
    fn fast_abort_validates_multiplier() {
        FastAbort { multiplier: 1.0, ..FastAbort::default() }.validate();
    }

    #[test]
    fn stats_reconcile() {
        let mut s = FaultStats::default();
        assert!(s.reconciles());
        s.attempts = 10;
        s.successes = 6;
        s.transient_failures = 2;
        s.crash_failures = 1;
        s.straggler_aborts = 1;
        assert!(s.reconciles());
        assert_eq!(s.failures(), 3);
        assert_eq!(s.aborts(), 1);
        assert!((s.fault_ratio() - 0.4).abs() < 1e-12);
        s.attempts = 11;
        assert!(!s.reconciles());
    }

    #[test]
    fn display_formats() {
        assert!(FaultStats::default().to_string().contains("attempts=0"));
        assert_eq!(FaultKind::Transient.to_string(), "transient");
        assert_eq!(FaultKind::WorkerCrash.to_string(), "worker-crash");
        assert_eq!(FaultKind::Straggler.to_string(), "straggler");
    }
}
