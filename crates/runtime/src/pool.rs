//! The task pool: deterministic priority-proportional scheduling.
//!
//! The paper defines job priority as `P_u = T_u / Σ T` and states that "a
//! higher priority job is more likely to be processed earlier than a low
//! priority job" (§IV-C4). We implement that share semantics with *stride
//! scheduling*: each job advances a pass value by `1/priority` per popped
//! task, and the pool always pops from the job with the smallest pass —
//! which serves jobs in exact proportion to their priorities without any
//! randomness (reproducible experiments).

use crate::{JobId, TaskId, TaskSpec};
use std::collections::{BTreeMap, VecDeque};

/// A priority-scheduled pool of pending tasks.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, TaskPool, TaskSpec};
///
/// let mut pool = TaskPool::new();
/// for _ in 0..4 {
///     pool.submit(TaskSpec::new(JobId::new(0), 1.0));
///     pool.submit(TaskSpec::new(JobId::new(1), 1.0));
/// }
/// pool.set_priority(JobId::new(0), 3.0);
/// // Job 0 is served three times as often as job 1.
/// let (_, first) = pool.pop().unwrap();
/// assert_eq!(first.job(), JobId::new(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskPool {
    queues: BTreeMap<JobId, VecDeque<(TaskId, TaskSpec)>>,
    priorities: BTreeMap<JobId, f64>,
    passes: BTreeMap<JobId, f64>,
    next_task: u32,
    len: usize,
}

impl TaskPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending tasks.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool has no pending tasks.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending task count of one job.
    #[must_use]
    pub fn pending_of(&self, job: JobId) -> usize {
        self.queues.get(&job).map_or(0, VecDeque::len)
    }

    /// Jobs with at least one pending task.
    pub fn active_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(&j, _)| j)
    }

    /// Submits a task, returning its id. Tasks of the same job are served
    /// FIFO relative to each other.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId::new(self.next_task);
        self.next_task += 1;
        let was_idle = self.pending_of(spec.job()) == 0;
        self.queues.entry(spec.job()).or_default().push_back((id, spec));
        self.priorities.entry(spec.job()).or_insert(1.0);
        if was_idle {
            self.reactivate(spec.job());
        }
        self.len += 1;
        id
    }

    /// Re-queues an interrupted task under its *original* id, at the
    /// front of its job's queue (it is the oldest work of that job).
    ///
    /// Unlike [`submit`](Self::submit), re-queuing never resets or
    /// re-clamps the job's stride pass downward: the job already consumed
    /// a scheduling turn for this task when it was first popped, so
    /// restoring it must not hand the job extra turns that would starve
    /// other jobs — nor charge it twice.
    pub fn requeue(&mut self, id: TaskId, spec: TaskSpec) {
        let was_idle = self.pending_of(spec.job()) == 0;
        self.queues.entry(spec.job()).or_default().push_front((id, spec));
        self.priorities.entry(spec.job()).or_insert(1.0);
        if was_idle {
            self.reactivate(spec.job());
        }
        self.len += 1;
    }

    /// Stride-scheduling fix-up when a job goes idle → active: clamp its
    /// pass *up* to the smallest pass among the other active jobs. A job
    /// returning from idleness (or arriving late) would otherwise carry a
    /// stale low pass and monopolize the pool until it "caught up",
    /// starving every incumbent. Passes are never lowered, so a job can
    /// never gain turns from cycling idle.
    fn reactivate(&mut self, job: JobId) {
        let min_active = self
            .queues
            .iter()
            .filter(|(j, q)| **j != job && !q.is_empty())
            .map(|(j, _)| self.passes.get(j).copied().unwrap_or(0.0))
            .fold(f64::INFINITY, f64::min);
        if min_active.is_finite() {
            let pass = self.passes.entry(job).or_insert(0.0);
            if *pass < min_active {
                *pass = min_active;
            }
        }
    }

    /// Sets a job's scheduling priority (the Local Control Knob).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite and positive.
    pub fn set_priority(&mut self, job: JobId, priority: f64) {
        assert!(priority.is_finite() && priority > 0.0, "priority must be positive");
        self.priorities.insert(job, priority);
    }

    /// A job's current priority (1.0 if never set).
    #[must_use]
    pub fn priority(&self, job: JobId) -> f64 {
        self.priorities.get(&job).copied().unwrap_or(1.0)
    }

    /// Priority *share* `P_u = prio_u / Σ prio` over jobs with pending
    /// tasks (the quantity in the paper's WCET formula).
    #[must_use]
    pub fn priority_share(&self, job: JobId) -> f64 {
        let total: f64 =
            self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(j, _)| self.priority(*j)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        if self.pending_of(job) == 0 {
            0.0
        } else {
            self.priority(job) / total
        }
    }

    /// Pops the next task by stride scheduling.
    pub fn pop(&mut self) -> Option<(TaskId, TaskSpec)> {
        // Pick the non-empty job with the smallest pass value;
        // ties break toward the smaller job id (BTreeMap order).
        let job = self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(&j, _)| j).min_by(
            |&a, &b| {
                let pa = self.passes.get(&a).copied().unwrap_or(0.0);
                let pb = self.passes.get(&b).copied().unwrap_or(0.0);
                pa.partial_cmp(&pb).unwrap().then(a.cmp(&b))
            },
        )?;
        let entry = self.queues.get_mut(&job)?.pop_front()?;
        *self.passes.entry(job).or_insert(0.0) += 1.0 / self.priority(job);
        self.len -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fill(pool: &mut TaskPool, job: u32, n: usize) {
        for _ in 0..n {
            pool.submit(TaskSpec::new(JobId::new(job), 1.0));
        }
    }

    #[test]
    fn fifo_within_a_job() {
        let mut pool = TaskPool::new();
        let a = pool.submit(TaskSpec::new(JobId::new(0), 1.0));
        let b = pool.submit(TaskSpec::new(JobId::new(0), 2.0));
        assert_eq!(pool.pop().unwrap().0, a);
        assert_eq!(pool.pop().unwrap().0, b);
        assert!(pool.pop().is_none());
    }

    #[test]
    fn equal_priorities_interleave() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 2);
        fill(&mut pool, 1, 2);
        let order: Vec<usize> =
            std::iter::from_fn(|| pool.pop()).map(|(_, t)| t.job().index()).collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn priority_three_to_one_share() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 30);
        fill(&mut pool, 1, 30);
        pool.set_priority(JobId::new(0), 3.0);
        let first_20: Vec<usize> = (0..20).map(|_| pool.pop().unwrap().1.job().index()).collect();
        let job0_count = first_20.iter().filter(|&&j| j == 0).count();
        assert!(
            (14..=16).contains(&job0_count),
            "expected ~15 of 20 pops for the 3x job, got {job0_count}"
        );
    }

    #[test]
    fn priority_share_sums_to_one() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 1);
        fill(&mut pool, 1, 1);
        fill(&mut pool, 2, 1);
        pool.set_priority(JobId::new(1), 2.0);
        let total: f64 = (0..3).map(|j| pool.priority_share(JobId::new(j))).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pool.priority_share(JobId::new(9)), 0.0);
    }

    #[test]
    fn exhausted_jobs_release_their_share() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 1);
        fill(&mut pool, 1, 1);
        let _ = pool.pop();
        let _ = pool.pop();
        assert!(pool.is_empty());
        assert_eq!(pool.priority_share(JobId::new(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "priority must be positive")]
    fn zero_priority_rejected() {
        let mut pool = TaskPool::new();
        pool.set_priority(JobId::new(0), 0.0);
    }

    #[test]
    fn requeue_restores_task_under_original_id() {
        let mut pool = TaskPool::new();
        let a = pool.submit(TaskSpec::new(JobId::new(0), 1.0));
        let b = pool.submit(TaskSpec::new(JobId::new(0), 2.0));
        let (id, spec) = pool.pop().unwrap();
        assert_eq!(id, a);
        pool.requeue(id, spec);
        // The re-queued task comes back first (it is the oldest), with
        // the same id.
        assert_eq!(pool.pop().unwrap().0, a);
        assert_eq!(pool.pop().unwrap().0, b);
    }

    #[test]
    fn requeue_does_not_reset_stride_pass() {
        // Job 0 and job 1 interleave; an evict-requeue of job 0's task
        // must not grant job 0 extra turns (pass is retained, the requeue
        // costs a fresh pop like any task).
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 4);
        fill(&mut pool, 1, 4);
        let (id, spec) = pool.pop().unwrap(); // job 0, pass -> 1.0
        assert_eq!(spec.job(), JobId::new(0));
        pool.requeue(id, spec);
        // Next pop is job 1 (pass 0.0 < job 0's 1.0): the requeue did not
        // reset job 0's pass and let it starve job 1.
        assert_eq!(pool.pop().unwrap().1.job(), JobId::new(1));
        // ...and then job 0's re-queued task (original id) resumes.
        assert_eq!(pool.pop().unwrap().0, id);
    }

    #[test]
    fn late_job_cannot_monopolize_after_incumbents_advance() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 10);
        for _ in 0..8 {
            let _ = pool.pop(); // job 0's pass advances to 8.0
        }
        fill(&mut pool, 1, 4); // late arrival: clamped to job 0's pass
        let next4: Vec<usize> = (0..4).map(|_| pool.pop().unwrap().1.job().index()).collect();
        // Without the clamp job 1 would win all four pops (pass 0 vs 8);
        // with it, the jobs interleave fairly from here on.
        assert_eq!(next4.iter().filter(|&&j| j == 1).count(), 2, "order: {next4:?}");
    }

    #[test]
    fn reactivated_job_resumes_fairly() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 1);
        fill(&mut pool, 1, 6);
        let _ = pool.pop(); // job 0 (tie toward lower id), pass -> 1
        let _ = pool.pop(); // job 1, pass -> 1
        let _ = pool.pop(); // job 1 (only active), pass -> 2
                            // Job 0 returns after idling; its pass (1) is clamped up to job
                            // 1's (2), so it does not owe-collect the turns it sat out.
        fill(&mut pool, 0, 4);
        let next2: Vec<usize> = (0..2).map(|_| pool.pop().unwrap().1.job().index()).collect();
        assert!(next2.contains(&0) && next2.contains(&1), "interleave: {next2:?}");
    }

    proptest! {
        #[test]
        fn pops_exactly_what_was_submitted(
            counts in prop::collection::vec(0usize..10, 1..6),
        ) {
            let mut pool = TaskPool::new();
            for (j, &n) in counts.iter().enumerate() {
                fill(&mut pool, j as u32, n);
            }
            let total: usize = counts.iter().sum();
            prop_assert_eq!(pool.len(), total);
            let mut popped = 0;
            while pool.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, total);
        }

        /// Stride scheduling stays priority-proportional under arbitrary
        /// interleavings of pops and evict-requeues: requeues restore
        /// work without granting or charging extra scheduling turns, so
        /// pop counts track shares with the classic ±1-per-job stride
        /// error bound.
        #[test]
        fn stride_stays_proportional_under_requeue_interleavings(
            prio in 1.0f64..8.0,
            ops in prop::collection::vec(any::<bool>(), 20..150),
        ) {
            let mut pool = TaskPool::new();
            fill(&mut pool, 0, 400);
            fill(&mut pool, 1, 400);
            pool.set_priority(JobId::new(0), prio);
            let mut last_popped: Option<(TaskId, TaskSpec)> = None;
            let mut pops = [0usize; 2];
            for &do_pop in &ops {
                if do_pop || last_popped.is_none() {
                    let entry = pool.pop().unwrap();
                    pops[entry.1.job().index()] += 1;
                    last_popped = Some(entry);
                } else if let Some((id, spec)) = last_popped.take() {
                    pool.requeue(id, spec); // evict: the attempt was lost
                }
            }
            let total = (pops[0] + pops[1]) as f64;
            let expected0 = total * prio / (prio + 1.0);
            prop_assert!(
                (pops[0] as f64 - expected0).abs() <= 2.0,
                "prio {prio}: job0 popped {} of {}, expected ~{expected0}",
                pops[0], total
            );
        }

        /// The same operation sequence always yields the same pop order —
        /// the scheduler is deterministic (no randomness, stable ties).
        #[test]
        fn pop_order_is_deterministic(
            counts in prop::collection::vec(1usize..8, 2..5),
            requeue_mask in prop::collection::vec(any::<bool>(), 0..20),
        ) {
            let run = || {
                let mut pool = TaskPool::new();
                for (j, &n) in counts.iter().enumerate() {
                    fill(&mut pool, j as u32, n);
                }
                let mut order = Vec::new();
                let mut mask = requeue_mask.iter();
                while let Some((id, spec)) = pool.pop() {
                    order.push(id);
                    if mask.next() == Some(&true) {
                        pool.requeue(id, spec);
                        // Pop it right back out so the loop terminates.
                        let (id2, _) = pool.pop().unwrap();
                        order.push(id2);
                    }
                }
                order
            };
            prop_assert_eq!(run(), run());
        }

        #[test]
        fn stride_respects_ratios(prio in 1.0f64..8.0) {
            let mut pool = TaskPool::new();
            fill(&mut pool, 0, 200);
            fill(&mut pool, 1, 200);
            pool.set_priority(JobId::new(0), prio);
            let n = 100;
            let job0 = (0..n)
                .filter(|_| pool.pop().unwrap().1.job().index() == 0)
                .count();
            let expected = n as f64 * prio / (prio + 1.0);
            prop_assert!((job0 as f64 - expected).abs() <= 2.0,
                "prio {prio}: got {job0}, expected ~{expected}");
        }
    }
}
