//! The task pool: deterministic priority-proportional scheduling.
//!
//! The paper defines job priority as `P_u = T_u / Σ T` and states that "a
//! higher priority job is more likely to be processed earlier than a low
//! priority job" (§IV-C4). We implement that share semantics with *stride
//! scheduling*: each job advances a pass value by `1/priority` per popped
//! task, and the pool always pops from the job with the smallest pass —
//! which serves jobs in exact proportion to their priorities without any
//! randomness (reproducible experiments).

use crate::{JobId, TaskId, TaskSpec};
use std::collections::{BTreeMap, VecDeque};

/// A priority-scheduled pool of pending tasks.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, TaskPool, TaskSpec};
///
/// let mut pool = TaskPool::new();
/// for _ in 0..4 {
///     pool.submit(TaskSpec::new(JobId::new(0), 1.0));
///     pool.submit(TaskSpec::new(JobId::new(1), 1.0));
/// }
/// pool.set_priority(JobId::new(0), 3.0);
/// // Job 0 is served three times as often as job 1.
/// let (_, first) = pool.pop().unwrap();
/// assert_eq!(first.job(), JobId::new(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskPool {
    queues: BTreeMap<JobId, VecDeque<(TaskId, TaskSpec)>>,
    priorities: BTreeMap<JobId, f64>,
    passes: BTreeMap<JobId, f64>,
    next_task: u32,
    len: usize,
}

impl TaskPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending tasks.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool has no pending tasks.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending task count of one job.
    #[must_use]
    pub fn pending_of(&self, job: JobId) -> usize {
        self.queues.get(&job).map_or(0, VecDeque::len)
    }

    /// Jobs with at least one pending task.
    pub fn active_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(&j, _)| j)
    }

    /// Submits a task, returning its id. Tasks of the same job are served
    /// FIFO relative to each other.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId::new(self.next_task);
        self.next_task += 1;
        self.queues.entry(spec.job()).or_default().push_back((id, spec));
        self.priorities.entry(spec.job()).or_insert(1.0);
        self.len += 1;
        id
    }

    /// Sets a job's scheduling priority (the Local Control Knob).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite and positive.
    pub fn set_priority(&mut self, job: JobId, priority: f64) {
        assert!(priority.is_finite() && priority > 0.0, "priority must be positive");
        self.priorities.insert(job, priority);
    }

    /// A job's current priority (1.0 if never set).
    #[must_use]
    pub fn priority(&self, job: JobId) -> f64 {
        self.priorities.get(&job).copied().unwrap_or(1.0)
    }

    /// Priority *share* `P_u = prio_u / Σ prio` over jobs with pending
    /// tasks (the quantity in the paper's WCET formula).
    #[must_use]
    pub fn priority_share(&self, job: JobId) -> f64 {
        let total: f64 = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(j, _)| self.priority(*j))
            .sum();
        if total <= 0.0 {
            return 0.0;
        }
        if self.pending_of(job) == 0 {
            0.0
        } else {
            self.priority(job) / total
        }
    }

    /// Pops the next task by stride scheduling.
    pub fn pop(&mut self) -> Option<(TaskId, TaskSpec)> {
        // Pick the non-empty job with the smallest pass value;
        // ties break toward the smaller job id (BTreeMap order).
        let job = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&j, _)| j)
            .min_by(|&a, &b| {
                let pa = self.passes.get(&a).copied().unwrap_or(0.0);
                let pb = self.passes.get(&b).copied().unwrap_or(0.0);
                pa.partial_cmp(&pb).unwrap().then(a.cmp(&b))
            })?;
        let entry = self.queues.get_mut(&job)?.pop_front()?;
        *self.passes.entry(job).or_insert(0.0) += 1.0 / self.priority(job);
        self.len -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fill(pool: &mut TaskPool, job: u32, n: usize) {
        for _ in 0..n {
            pool.submit(TaskSpec::new(JobId::new(job), 1.0));
        }
    }

    #[test]
    fn fifo_within_a_job() {
        let mut pool = TaskPool::new();
        let a = pool.submit(TaskSpec::new(JobId::new(0), 1.0));
        let b = pool.submit(TaskSpec::new(JobId::new(0), 2.0));
        assert_eq!(pool.pop().unwrap().0, a);
        assert_eq!(pool.pop().unwrap().0, b);
        assert!(pool.pop().is_none());
    }

    #[test]
    fn equal_priorities_interleave() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 2);
        fill(&mut pool, 1, 2);
        let order: Vec<usize> = std::iter::from_fn(|| pool.pop())
            .map(|(_, t)| t.job().index())
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn priority_three_to_one_share() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 30);
        fill(&mut pool, 1, 30);
        pool.set_priority(JobId::new(0), 3.0);
        let first_20: Vec<usize> = (0..20)
            .map(|_| pool.pop().unwrap().1.job().index())
            .collect();
        let job0_count = first_20.iter().filter(|&&j| j == 0).count();
        assert!(
            (14..=16).contains(&job0_count),
            "expected ~15 of 20 pops for the 3x job, got {job0_count}"
        );
    }

    #[test]
    fn priority_share_sums_to_one() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 1);
        fill(&mut pool, 1, 1);
        fill(&mut pool, 2, 1);
        pool.set_priority(JobId::new(1), 2.0);
        let total: f64 = (0..3).map(|j| pool.priority_share(JobId::new(j))).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(pool.priority_share(JobId::new(9)), 0.0);
    }

    #[test]
    fn exhausted_jobs_release_their_share() {
        let mut pool = TaskPool::new();
        fill(&mut pool, 0, 1);
        fill(&mut pool, 1, 1);
        let _ = pool.pop();
        let _ = pool.pop();
        assert!(pool.is_empty());
        assert_eq!(pool.priority_share(JobId::new(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "priority must be positive")]
    fn zero_priority_rejected() {
        let mut pool = TaskPool::new();
        pool.set_priority(JobId::new(0), 0.0);
    }

    proptest! {
        #[test]
        fn pops_exactly_what_was_submitted(
            counts in prop::collection::vec(0usize..10, 1..6),
        ) {
            let mut pool = TaskPool::new();
            for (j, &n) in counts.iter().enumerate() {
                fill(&mut pool, j as u32, n);
            }
            let total: usize = counts.iter().sum();
            prop_assert_eq!(pool.len(), total);
            let mut popped = 0;
            while pool.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, total);
        }

        #[test]
        fn stride_respects_ratios(prio in 1.0f64..8.0) {
            let mut pool = TaskPool::new();
            fill(&mut pool, 0, 200);
            fill(&mut pool, 1, 200);
            pool.set_priority(JobId::new(0), prio);
            let n = 100;
            let job0 = (0..n)
                .filter(|_| pool.pop().unwrap().1.job().index() == 0)
                .count();
            let expected = n as f64 * prio / (prio + 1.0);
            prop_assert!((job0 as f64 - expected).abs() <= 2.0,
                "prio {prio}: got {job0}, expected ~{expected}");
        }
    }
}
