//! The execution-time and WCET model of paper Eq. 10–12.

use crate::TaskSpec;

/// Cost model mapping data sizes to execution times.
///
/// - Task execution time (Eq. 10): `ET = TI + D·θ₁`, where `TI` is the
///   per-task initialization time;
/// - Job worst-case execution time (Eq. 12, after the small-task-count
///   simplification): `WCET ≈ D·θ₂ / (WK · P_u)` for a job with data `D`,
///   `WK` workers and priority share `P_u`.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{ExecutionModel, JobId, TaskSpec};
///
/// let m = ExecutionModel::new(0.5, 0.01, 0.012);
/// let t = TaskSpec::new(JobId::new(0), 100.0);
/// assert!((m.task_time(&t) - 1.5).abs() < 1e-12);
/// assert!(m.job_wcet(1000.0, 4, 0.5) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionModel {
    /// Per-task initialization time `TI` (seconds).
    init_time: f64,
    /// Per-data-unit processing cost `θ₁` (seconds/unit).
    theta1: f64,
    /// Per-data-unit cost in the WCET bound `θ₂` (seconds/unit); `θ₂ ≥ θ₁`
    /// because the bound absorbs scheduling and transfer slack.
    theta2: f64,
    /// Network staging time per task (seconds): Work Queue ships each
    /// task's input to its worker before execution. Network-bound, so it
    /// does *not* scale with worker speed.
    transfer_time: f64,
}

impl Default for ExecutionModel {
    fn default() -> Self {
        Self { init_time: 0.2, theta1: 0.001, theta2: 0.0015, transfer_time: 0.0 }
    }
}

impl ExecutionModel {
    /// Creates a model from `TI`, `θ₁` and `θ₂`.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are finite and non-negative and
    /// `theta2 >= theta1`.
    #[must_use]
    pub fn new(init_time: f64, theta1: f64, theta2: f64) -> Self {
        assert!(init_time.is_finite() && init_time >= 0.0, "TI must be non-negative");
        assert!(theta1.is_finite() && theta1 >= 0.0, "theta1 must be non-negative");
        assert!(theta2.is_finite() && theta2 >= theta1, "theta2 must be at least theta1");
        Self { init_time, theta1, theta2, transfer_time: 0.0 }
    }

    /// Adds a per-task network staging cost (input transfer to the
    /// worker).
    ///
    /// # Panics
    ///
    /// Panics unless `transfer_time` is finite and non-negative.
    #[must_use]
    pub fn with_transfer_time(mut self, transfer_time: f64) -> Self {
        assert!(
            transfer_time.is_finite() && transfer_time >= 0.0,
            "transfer time must be non-negative"
        );
        self.transfer_time = transfer_time;
        self
    }

    /// The per-task network staging time.
    #[must_use]
    pub const fn transfer_time(&self) -> f64 {
        self.transfer_time
    }

    /// Per-task initialization time `TI`.
    #[must_use]
    pub const fn init_time(&self) -> f64 {
        self.init_time
    }

    /// Reference execution time of a task (Eq. 10) on a speed-1 worker.
    #[must_use]
    pub fn task_time(&self, task: &TaskSpec) -> f64 {
        self.init_time + task.data_size() * self.theta1
    }

    /// Execution time on a worker with the given speed factor: the
    /// (speed-independent) network transfer plus the compute time scaled
    /// by the worker's speed.
    ///
    /// # Panics
    ///
    /// Panics unless `speed` is positive.
    #[must_use]
    pub fn task_time_on(&self, task: &TaskSpec, speed: f64) -> f64 {
        assert!(speed > 0.0, "worker speed must be positive");
        self.transfer_time + self.task_time(task) / speed
    }

    /// Worst-case execution time of a whole job (Eq. 12): data volume
    /// `data`, `workers` in the pool, and priority share `priority`
    /// (`P_u ∈ (0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics unless `workers > 0` and `priority ∈ (0, 1]`.
    #[must_use]
    pub fn job_wcet(&self, data: f64, workers: usize, priority: f64) -> f64 {
        assert!(workers > 0, "need at least one worker");
        assert!(priority > 0.0 && priority <= 1.0, "priority share must be in (0, 1]");
        data * self.theta2 / (workers as f64 * priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobId;

    #[test]
    fn eq10_linear_in_data() {
        let m = ExecutionModel::new(1.0, 0.1, 0.1);
        let small = TaskSpec::new(JobId::new(0), 10.0);
        let large = TaskSpec::new(JobId::new(0), 100.0);
        assert!((m.task_time(&small) - 2.0).abs() < 1e-12);
        assert!((m.task_time(&large) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn faster_workers_finish_sooner() {
        let m = ExecutionModel::default();
        let t = TaskSpec::new(JobId::new(0), 1000.0);
        assert!(m.task_time_on(&t, 2.0) < m.task_time_on(&t, 1.0));
        assert!((m.task_time_on(&t, 2.0) * 2.0 - m.task_time(&t)).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_does_not_scale_with_speed() {
        let m = ExecutionModel::new(0.0, 0.01, 0.01).with_transfer_time(2.0);
        let t = TaskSpec::new(JobId::new(0), 100.0); // 1s of compute
        assert!((m.task_time_on(&t, 1.0) - 3.0).abs() < 1e-12);
        // A 2x worker halves compute but not the network staging.
        assert!((m.task_time_on(&t, 2.0) - 2.5).abs() < 1e-12);
        assert_eq!(m.transfer_time(), 2.0);
    }

    #[test]
    #[should_panic(expected = "transfer time")]
    fn negative_transfer_rejected() {
        let _ = ExecutionModel::default().with_transfer_time(-1.0);
    }

    #[test]
    fn wcet_inverse_in_workers_and_priority() {
        let m = ExecutionModel::default();
        let base = m.job_wcet(10_000.0, 1, 0.5);
        assert!((m.job_wcet(10_000.0, 2, 0.5) - base / 2.0).abs() < 1e-9);
        assert!((m.job_wcet(10_000.0, 1, 1.0) - base / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "theta2")]
    fn theta2_below_theta1_rejected() {
        let _ = ExecutionModel::new(0.0, 0.2, 0.1);
    }

    #[test]
    #[should_panic(expected = "priority share")]
    fn bad_priority_rejected() {
        let _ = ExecutionModel::default().job_wcet(1.0, 1, 0.0);
    }
}
