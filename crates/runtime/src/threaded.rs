//! Real master/worker execution backends on OS threads.
//!
//! This is the Work Queue programming model in miniature: a master submits
//! prioritized tasks (closures), an elastic pool of workers pulls and
//! executes them, and the master collects results. The DES backend shares
//! the same scheduling semantics for simulation; these backends prove the
//! design runs real computations (the streaming benchmarks use them to
//! execute actual truth-discovery jobs).
//!
//! Two layers live here:
//!
//! - [`ThreadedWorkQueue`] — the minimal prioritized queue. Hardened so a
//!   panicking task closure is caught ([`std::panic::catch_unwind`]),
//!   surfaced as a task failure, and never wedges `wait()` or `Drop`
//!   (the `parking_lot` mutexes do not poison, and the worker thread
//!   survives to keep draining).
//! - [`ThreadedEngine`] — the fault-tolerant engine. Its retry, backoff,
//!   quarantine, fast-abort and fault-accounting decisions are delegated
//!   to the shared [`AttemptLedger`] (the same state machine the DES
//!   uses), so this module only supplies the execution mechanism: threads,
//!   condvars and the wall clock. The engine implements
//!   [`ExecutionBackend`] and [`JobBackend`], making it a drop-in for the
//!   DES in the control loop and the evaluation experiments. Tasks
//!   submitted through the trait as bare [`TaskSpec`]s run *simulated*
//!   (a sleep shaped by the engine's [`ExecutionModel`], scaled by
//!   [`set_simulation`](ThreadedEngine::set_simulation)); tasks submitted
//!   with a payload execute the real closure.

use crate::telemetry::{LossCause, SharedRecorder, TaskPhase, TimelineEvent};
use crate::{
    AttemptLedger, AttemptLoss, CompletedTask, ExecutionBackend, ExecutionModel, ExecutionReport,
    FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, JobBackend, JobId, LossVerdict,
    RetryPolicy, TaskId, TaskPayload, TaskSpec, WorkerId,
};
use parking_lot::{Condvar, Mutex};
use sstd_types::error::SstdError;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type TaskFn<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// Renders a caught panic payload as a human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "task panicked".to_string())
}

struct QueuedTask<R> {
    job: JobId,
    priority: f64,
    seq: u64,
    run: TaskFn<R>,
}

impl<R> PartialEq for QueuedTask<R> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<R> Eq for QueuedTask<R> {}
impl<R> PartialOrd for QueuedTask<R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for QueuedTask<R> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first; FIFO (lower seq) within a tier.
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Shared<R> {
    queue: Mutex<BinaryHeap<QueuedTask<R>>>,
    results: Mutex<Vec<(JobId, R)>>,
    /// Tasks whose closure panicked: `(job, panic message)`.
    failures: Mutex<Vec<(JobId, String)>>,
    work_available: Condvar,
    all_done: Condvar,
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

impl<R> std::fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("pending", &self.pending.load(AtomicOrdering::Relaxed))
            .field("shutdown", &self.shutdown.load(AtomicOrdering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A threaded master/worker queue executing prioritized closures.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, ThreadedWorkQueue};
///
/// let queue = ThreadedWorkQueue::new(2);
/// for i in 0..4u32 {
///     let id = queue.submit(JobId::new(i % 2), 1.0, move || i * 10);
///     assert_eq!(id.index(), i as usize);
/// }
/// let mut results = queue.wait();
/// results.sort_by_key(|&(_, v)| v);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[3].1, 30);
/// ```
#[derive(Debug)]
pub struct ThreadedWorkQueue<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicUsize,
}

impl<R: Send + 'static> ThreadedWorkQueue<R> {
    /// Spawns `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(BinaryHeap::new()),
            results: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
            all_done: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers, next_seq: AtomicUsize::new(0) }
    }

    fn worker_loop(shared: &Shared<R>) {
        loop {
            let task = {
                let mut queue = shared.queue.lock();
                loop {
                    if let Some(t) = queue.pop() {
                        break t;
                    }
                    if shared.shutdown.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    shared.work_available.wait(&mut queue);
                }
            };
            // A panicking closure must not kill the worker (which would
            // strand queued tasks and hang `wait`): catch it, record the
            // failure, and keep draining. `parking_lot` mutexes do not
            // poison, so the shared state stays usable.
            match catch_unwind(AssertUnwindSafe(task.run)) {
                Ok(result) => shared.results.lock().push((task.job, result)),
                Err(payload) => {
                    shared.failures.lock().push((task.job, panic_message(payload.as_ref())));
                }
            }
            if shared.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                shared.all_done.notify_all();
            }
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a closure as a task of `job` with the given priority
    /// (higher runs earlier), returning the task's identity — the same
    /// accessor shape as every other submit in this crate.
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite.
    pub fn submit<F>(&self, job: JobId, priority: f64, f: F) -> TaskId
    where
        F: FnOnce() -> R + Send + 'static,
    {
        assert!(priority.is_finite(), "priority must be finite");
        let seq = self.next_seq.fetch_add(1, AtomicOrdering::Relaxed) as u64;
        self.shared.pending.fetch_add(1, AtomicOrdering::AcqRel);
        self.shared.queue.lock().push(QueuedTask { job, priority, seq, run: Box::new(f) });
        self.shared.work_available.notify_one();
        TaskId::new(u32::try_from(seq).expect("task ids fit in u32"))
    }

    /// Number of submitted-but-unfinished tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.pending.load(AtomicOrdering::Acquire)
    }

    /// Blocks until every submitted task finished (successfully or by
    /// panicking), draining the collected `(job, result)` pairs
    /// (completion order). Panicked tasks produce no result; inspect
    /// [`take_failures`](Self::take_failures).
    #[must_use]
    pub fn wait(&self) -> Vec<(JobId, R)> {
        let mut results = self.shared.results.lock();
        while self.shared.pending.load(AtomicOrdering::Acquire) > 0 {
            self.shared.all_done.wait(&mut results);
        }
        std::mem::take(&mut *results)
    }

    /// Drains the recorded task failures: `(job, panic message)` for each
    /// closure that panicked.
    #[must_use]
    pub fn take_failures(&self) -> Vec<(JobId, String)> {
        std::mem::take(&mut *self.shared.failures.lock())
    }
}

impl<R: Send + 'static> Drop for ThreadedWorkQueue<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, AtomicOrdering::Release);
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant engine
// ---------------------------------------------------------------------------

/// An attempt waiting in the ready heap.
struct ReadyAttempt {
    priority: f64,
    seq: u64,
    task: TaskId,
}

impl PartialEq for ReadyAttempt {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for ReadyAttempt {}
impl PartialOrd for ReadyAttempt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyAttempt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// An attempt currently executing on a worker.
struct RunningAttempt {
    worker: u32,
    /// Attempt ordinal from the ledger (1-based).
    attempt: u32,
    started: Instant,
    /// Start time in engine (virtual) seconds.
    started_s: f64,
}

/// Where, when and which attempt a loss happened — carried into
/// [`EngineState::settle_loss`] so the timeline records it.
struct LossContext {
    cause: LossCause,
    attempt: u32,
    worker: Option<WorkerId>,
    /// Engine time of the loss.
    at: f64,
}

/// What executing a task means: run a real closure, or model the task's
/// cost with a sleep (trait-submitted `TaskSpec`s without a payload).
enum TaskWork<R> {
    Payload(TaskPayload<R>),
    /// Nominal duration in engine (virtual) seconds.
    Simulated(f64),
}

impl<R> Clone for TaskWork<R> {
    fn clone(&self) -> Self {
        match self {
            Self::Payload(f) => Self::Payload(Arc::clone(f)),
            Self::Simulated(d) => Self::Simulated(*d),
        }
    }
}

struct TaskEntry<R> {
    job: JobId,
    priority: f64,
    work: TaskWork<R>,
    /// Submission time in engine (virtual) seconds.
    submitted_at: f64,
    deadline: Option<f64>,
    /// Attempts queued (ready or backing off) but not yet started.
    queued: u32,
    running: Vec<RunningAttempt>,
    done: bool,
    failed: bool,
}

struct EngineState<R> {
    tasks: BTreeMap<TaskId, TaskEntry<R>>,
    ready: BinaryHeap<ReadyAttempt>,
    /// Attempts waiting out a retry backoff, sorted by release instant.
    delayed: Vec<(Instant, TaskId)>,
    next_task: u32,
    next_seq: u64,
    next_worker: u32,
    alive_workers: usize,
    /// Workers the next acquire passes should retire (elastic shrink).
    retiring: usize,
    /// Tasks neither completed nor terminally failed.
    outstanding: usize,
    /// Attempts currently executing (across all tasks).
    running_attempts: usize,
    /// Workers told to exit after repeated faults.
    quarantined: BTreeSet<u32>,
    /// Workers removed by a scheduled eviction.
    evicted: BTreeSet<u32>,
    /// The shared attempt state machine: retries, backoff, quarantine
    /// decisions, fast-abort budget and all `FaultStats` accounting.
    ledger: AttemptLedger,
    results: Vec<(JobId, R)>,
    completed: Vec<CompletedTask>,
    timeout: Option<Duration>,
    /// Real seconds per engine second (default 1.0). Simulated durations,
    /// backoffs and restart delays are multiplied by this before
    /// sleeping; recorded times are divided by it.
    time_scale: f64,
    /// Cost model for simulated (payload-less) tasks.
    sim_model: ExecutionModel,
    /// Priorities installed via `set_job_priority` (default 1.0).
    job_priorities: BTreeMap<JobId, f64>,
    /// Pending eviction times in engine seconds, sorted ascending.
    evictions: Vec<f64>,
    /// Optional timeline sink; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
}

impl<R> EngineState<R> {
    /// Enqueues one runnable attempt for `task`.
    fn enqueue_ready(&mut self, task: TaskId) {
        let Some(entry) = self.tasks.get_mut(&task) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.queued += 1;
        self.ready.push(ReadyAttempt { priority: entry.priority, seq, task });
    }

    /// Schedules a retry after `delay` engine seconds of backoff.
    fn enqueue_delayed(&mut self, task: TaskId, delay: f64) {
        let Some(entry) = self.tasks.get_mut(&task) else { return };
        entry.queued += 1;
        let release = Instant::now() + Duration::from_secs_f64((delay * self.time_scale).max(0.0));
        self.delayed.push((release, task));
        self.delayed.sort_by_key(|&(at, id)| (at, id));
    }

    /// Moves attempts whose backoff expired into the ready heap.
    fn promote_due(&mut self, now: Instant) {
        while self.delayed.first().is_some_and(|&(at, _)| at <= now) {
            let (_, task) = self.delayed.remove(0);
            // `queued` stays: the attempt moves between queues.
            let Some(entry) = self.tasks.get_mut(&task) else { continue };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.ready.push(ReadyAttempt { priority: entry.priority, seq, task });
        }
    }

    /// Settles a lost attempt: account it in the ledger, then retry, give
    /// up, or defer to a still-running sibling attempt. `elapsed` is in
    /// engine seconds.
    fn settle_loss(
        &mut self,
        task: TaskId,
        loss: AttemptLoss,
        elapsed: f64,
        error: &str,
        ctx: &LossContext,
    ) {
        self.ledger.account_loss(loss, elapsed);
        let Some((job, settled, busy)) = self
            .tasks
            .get(&task)
            .map(|e| (e.job, e.done || e.failed, !e.running.is_empty() || e.queued > 0))
        else {
            return;
        };
        self.record(task, job, ctx.attempt, ctx.worker, ctx.at, TaskPhase::Failed(ctx.cause));
        if settled || busy {
            // Done/failed already, or a sibling attempt (speculative
            // duplicate or queued retry) will decide this task's fate.
            return;
        }
        match self.ledger.settle_loss(task, job, loss, error) {
            LossVerdict::Exhausted => {
                if let Some(e) = self.tasks.get_mut(&task) {
                    e.failed = true;
                }
                self.outstanding -= 1;
                let attempts = self.ledger.attempts_started(task);
                self.record(task, job, attempts, None, ctx.at, TaskPhase::Exhausted);
            }
            LossVerdict::Retry { delay } => {
                if delay <= 0.0 {
                    self.enqueue_ready(task);
                } else {
                    self.enqueue_delayed(task, delay);
                }
            }
        }
    }

    /// Forwards a timeline event to the installed recorder, if any.
    fn record(
        &self,
        task: TaskId,
        job: JobId,
        attempt: u32,
        worker: Option<WorkerId>,
        at: f64,
        phase: TaskPhase,
    ) {
        if let Some(rec) = &self.recorder {
            rec.record(&TimelineEvent { task, job, attempt, worker, at, phase });
        }
    }

    /// Attributes a fault to `worker` and quarantines it past the policy
    /// threshold (never the last worker standing). Returns whether the
    /// worker is now quarantined.
    fn note_worker_fault(&mut self, worker: u32) -> bool {
        if self.quarantined.contains(&worker) {
            return true;
        }
        if self.ledger.note_worker_fault(WorkerId::new(worker), self.alive_workers) {
            self.quarantined.insert(worker);
            self.alive_workers -= 1;
            return true;
        }
        false
    }

    /// The engine clock: real seconds since `epoch`, divided by the time
    /// scale.
    fn now_s(&self, epoch: Instant) -> f64 {
        epoch.elapsed().as_secs_f64() / self.time_scale
    }
}

struct EngineShared<R> {
    state: Mutex<EngineState<R>>,
    work_available: Condvar,
    /// Signaled on completions, failures and respawns; `wait` polls on it.
    progress: Condvar,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The fault-tolerant threaded Work Queue engine.
///
/// Closures are `Fn` (not `FnOnce`) so failed attempts can be re-executed.
/// Fault decisions come from a seeded [`FaultPlan`] — a pure function of
/// `(seed, task, attempt)` — so the *set* of injected faults is identical
/// across runs regardless of thread interleaving; real panics are caught
/// and treated as transient failures. All retry/quarantine/fast-abort
/// policy lives in the shared [`AttemptLedger`], identical to the DES.
///
/// Straggler mitigation is speculative: OS threads cannot be killed, so an
/// attempt running beyond the fast-abort threshold gets a duplicate
/// enqueued; the first completion wins and the loser is discarded and
/// accounted as an abort. Per-task wall-clock timeouts abandon an attempt
/// cooperatively — the result is discarded when the thread eventually
/// returns.
///
/// The engine implements [`ExecutionBackend`] and [`JobBackend`]: bare
/// [`TaskSpec`]s run simulated (a sleep shaped by the configured
/// [`ExecutionModel`], compressed by
/// [`set_simulation`](Self::set_simulation)), payload submissions run real
/// closures. All reported times are engine seconds (wall seconds divided
/// by the time scale), so reports are comparable with the DES.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{FaultPlan, JobId, RetryPolicy, ThreadedEngine};
///
/// let engine = ThreadedEngine::new(2);
/// engine.set_fault_plan(FaultPlan::new(7).with_transient_rate(0.2));
/// engine.set_retry_policy(RetryPolicy { backoff_base: 0.001, ..RetryPolicy::default() });
/// for i in 0..10u32 {
///     engine.submit(JobId::new(i % 2), 1.0, move || i * 2);
/// }
/// let results = engine.wait();
/// assert_eq!(results.len(), 10, "every task completes despite faults");
/// assert!(engine.fault_stats().reconciles());
/// ```
pub struct ThreadedEngine<R: Send + 'static> {
    shared: Arc<EngineShared<R>>,
    epoch: Instant,
}

impl<R: Send + 'static> std::fmt::Debug for ThreadedEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("ThreadedEngine")
            .field("outstanding", &st.outstanding)
            .field("alive_workers", &st.alive_workers)
            .field("stats", &st.ledger.stats())
            .finish_non_exhaustive()
    }
}

impl<R: Send + 'static> ThreadedEngine<R> {
    /// Spawns `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState {
                tasks: BTreeMap::new(),
                ready: BinaryHeap::new(),
                delayed: Vec::new(),
                next_task: 0,
                next_seq: 0,
                next_worker: num_workers as u32,
                alive_workers: num_workers,
                retiring: 0,
                outstanding: 0,
                running_attempts: 0,
                quarantined: BTreeSet::new(),
                evicted: BTreeSet::new(),
                ledger: AttemptLedger::new(),
                results: Vec::new(),
                completed: Vec::new(),
                timeout: None,
                time_scale: 1.0,
                sim_model: ExecutionModel::default(),
                job_priorities: BTreeMap::new(),
                evictions: Vec::new(),
                recorder: None,
            }),
            work_available: Condvar::new(),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        let epoch = Instant::now();
        {
            let mut handles = shared.handles.lock();
            for me in 0..num_workers as u32 {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || Self::worker_loop(&shared, me, epoch)));
            }
        }
        Self { shared, epoch }
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.shared.state.lock().ledger.set_plan(plan);
    }

    /// Sets the retry/backoff/quarantine policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`RetryPolicy::validate`]).
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        self.shared.state.lock().ledger.set_retry(retry);
    }

    /// Enables speculative straggler mitigation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FastAbort::validate`]).
    pub fn set_fast_abort(&self, fast_abort: FastAbort) {
        self.shared.state.lock().ledger.set_fast_abort(fast_abort);
    }

    /// Sets a per-attempt wall-clock timeout (real seconds, not scaled).
    /// An attempt exceeding it is abandoned (its eventual result is
    /// discarded) and retried under the normal policy.
    pub fn set_task_timeout(&self, timeout: Duration) {
        self.shared.state.lock().timeout = Some(timeout);
    }

    /// Installs (or clears) a timeline recorder. Every subsequent attempt
    /// transition is reported to it; `None` (the default) records nothing.
    pub fn set_recorder(&self, recorder: Option<SharedRecorder>) {
        self.shared.state.lock().recorder = recorder;
    }

    /// Configures how simulated (payload-less) tasks run: their nominal
    /// duration comes from `model` (Eq. 10 on a speed-1 worker) and every
    /// engine-second of simulated work, backoff or restart delay costs
    /// `time_scale` real seconds. `time_scale < 1` compresses a DES-scale
    /// workload into test-friendly wall time.
    ///
    /// # Panics
    ///
    /// Panics unless `time_scale` is finite and positive.
    pub fn set_simulation(&self, model: ExecutionModel, time_scale: f64) {
        assert!(time_scale.is_finite() && time_scale > 0.0, "time scale must be positive");
        let mut st = self.shared.state.lock();
        st.sim_model = model;
        st.time_scale = time_scale;
    }

    /// Submits a re-executable closure as a task of `job`. Returns the
    /// task's identity.
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite.
    pub fn submit<F>(&self, job: JobId, priority: f64, f: F) -> TaskId
    where
        F: Fn() -> R + Send + Sync + 'static,
    {
        assert!(priority.is_finite(), "priority must be finite");
        self.insert_task(job, Some(priority), TaskWork::Payload(Arc::new(f)), None)
    }

    /// Submits a bare [`TaskSpec`] as a *simulated* task: its attempts
    /// sleep for the model time of the spec's data size (scaled), produce
    /// no result, and flow through the identical scheduling/fault path as
    /// payload tasks. This is what makes the engine a drop-in
    /// [`ExecutionBackend`] for the DES.
    pub fn submit_spec(&self, spec: TaskSpec) -> TaskId {
        let duration = {
            let st = self.shared.state.lock();
            st.sim_model.task_time(&spec)
        };
        self.insert_task(spec.job(), None, TaskWork::Simulated(duration), spec.deadline())
    }

    /// Inserts a task entry; `priority` falls back to the job's installed
    /// priority (default 1.0).
    fn insert_task(
        &self,
        job: JobId,
        priority: Option<f64>,
        work: TaskWork<R>,
        deadline: Option<f64>,
    ) -> TaskId {
        let id = {
            let mut st = self.shared.state.lock();
            let id = TaskId::new(st.next_task);
            st.next_task += 1;
            let priority =
                priority.unwrap_or_else(|| st.job_priorities.get(&job).copied().unwrap_or(1.0));
            let submitted_at = st.now_s(self.epoch);
            st.tasks.insert(
                id,
                TaskEntry {
                    job,
                    priority,
                    work,
                    submitted_at,
                    deadline,
                    queued: 0,
                    running: Vec::new(),
                    done: false,
                    failed: false,
                },
            );
            st.outstanding += 1;
            st.enqueue_ready(id);
            st.record(id, job, 0, None, submitted_at, TaskPhase::Queued);
            id
        };
        self.shared.work_available.notify_one();
        id
    }

    /// Sets a job's priority (Local Control Knob): applies to the job's
    /// live tasks (the ready heap is re-keyed) and to its future
    /// trait-submitted tasks.
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite and positive.
    pub fn set_job_priority(&self, job: JobId, priority: f64) {
        assert!(priority.is_finite() && priority > 0.0, "priority must be positive");
        let mut st = self.shared.state.lock();
        st.job_priorities.insert(job, priority);
        let members: Vec<TaskId> =
            st.tasks.iter().filter(|(_, e)| e.job == job).map(|(&id, _)| id).collect();
        for id in &members {
            if let Some(e) = st.tasks.get_mut(id) {
                e.priority = priority;
            }
        }
        let old = std::mem::take(&mut st.ready);
        for ra in old {
            let priority = st.tasks.get(&ra.task).map_or(ra.priority, |e| e.priority);
            st.ready.push(ReadyAttempt { priority, ..ra });
        }
    }

    /// Elastically resizes the worker pool (Global Control Knob). Growing
    /// spawns new workers (cancelling pending retirements first);
    /// shrinking retires workers as they next look for work.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_num_workers(&self, n: usize) {
        assert!(n > 0, "need at least one worker");
        let to_spawn: Vec<u32> = {
            let mut st = self.shared.state.lock();
            let active = st.alive_workers;
            if n > active {
                let mut needed = n - active;
                let cancelled = st.retiring.min(needed);
                st.retiring -= cancelled;
                needed -= cancelled;
                st.alive_workers = n;
                (0..needed)
                    .map(|_| {
                        let id = st.next_worker;
                        st.next_worker += 1;
                        id
                    })
                    .collect()
            } else {
                if n < active {
                    st.retiring += active - n;
                    st.alive_workers = n;
                }
                Vec::new()
            }
        };
        for me in to_spawn {
            let shared = Arc::clone(&self.shared);
            let epoch = self.epoch;
            let handle = std::thread::spawn(move || Self::worker_loop(&shared, me, epoch));
            self.shared.handles.lock().push(handle);
        }
        // Wake parked workers so pending retirements take effect.
        self.shared.work_available.notify_all();
    }

    /// Schedules a worker eviction at engine time `t` — the HTCondor
    /// failure mode: the pool reclaims a machine, the worker vanishes
    /// (no replacement), and its in-flight attempt is lost and re-queued.
    /// Evictions target the busiest worker (earliest-started attempt);
    /// with all workers idle, an idle worker retires instead.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is finite and non-negative.
    pub fn schedule_eviction(&self, t: f64) {
        assert!(t.is_finite() && t >= 0.0, "eviction time must be non-negative");
        let mut st = self.shared.state.lock();
        st.evictions.push(t);
        st.evictions.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    }

    /// Tasks with a queued (not yet started) attempt, including those
    /// waiting out a retry backoff.
    #[must_use]
    pub fn pending(&self) -> usize {
        let st = self.shared.state.lock();
        st.tasks.values().filter(|e| !e.done && !e.failed && e.queued > 0).count()
    }

    /// Pending tasks of one job — the progress signal the PID controller
    /// samples.
    #[must_use]
    pub fn pending_of(&self, job: JobId) -> usize {
        let st = self.shared.state.lock();
        st.tasks.values().filter(|e| e.job == job && !e.done && !e.failed && e.queued > 0).count()
    }

    /// Tasks neither completed nor terminally failed.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().outstanding
    }

    /// Attempts currently executing.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shared.state.lock().running_attempts
    }

    /// Workers currently alive (not crashed, quarantined or evicted).
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.shared.state.lock().alive_workers
    }

    /// The engine clock in engine seconds (wall seconds since start,
    /// divided by the time scale).
    #[must_use]
    pub fn now(&self) -> f64 {
        let st = self.shared.state.lock();
        st.now_s(self.epoch)
    }

    /// Failed-attempt accounting so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.shared.state.lock().ledger.stats()
    }

    /// Tasks dropped after exhausting their retry budget.
    #[must_use]
    pub fn failed(&self) -> Vec<FailedTask> {
        self.shared.state.lock().ledger.failed().to_vec()
    }

    /// Tasks re-queued after losing an attempt (any cause).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.shared.state.lock().ledger.retries()
    }

    /// Blocks until every task has completed or terminally failed *and*
    /// all in-flight attempts have settled (so the books reconcile), then
    /// drains the collected `(job, result)` pairs. The master performs
    /// straggler, timeout and eviction supervision from inside this loop,
    /// Work Queue style.
    #[must_use]
    pub fn wait(&self) -> Vec<(JobId, R)> {
        self.wait_idle();
        std::mem::take(&mut self.shared.state.lock().results)
    }

    /// Drains the `(job, result)` pairs collected so far without waiting.
    #[must_use]
    pub fn drain_results(&self) -> Vec<(JobId, R)> {
        std::mem::take(&mut self.shared.state.lock().results)
    }

    /// Blocks until the engine is idle (supervising from the master loop),
    /// leaving results in place.
    fn wait_idle(&self) {
        let mut st = self.shared.state.lock();
        loop {
            if st.outstanding == 0 && st.running_attempts == 0 {
                return;
            }
            self.supervise(&mut st);
            // Workers parked without a deadline cannot see retries the
            // supervision pass just queued — poke them.
            self.shared.work_available.notify_all();
            // Re-check frequently: supervision deadlines (timeouts,
            // fast-abort thresholds, evictions) are not condvar-signaled.
            let _ = self.shared.progress.wait_for(&mut st, Duration::from_millis(2));
        }
    }

    /// Drives the engine until its clock reaches `t` engine seconds,
    /// supervising along the way.
    pub fn run_until(&self, t: f64) {
        let mut st = self.shared.state.lock();
        loop {
            let now_s = st.now_s(self.epoch);
            if now_s >= t {
                return;
            }
            self.supervise(&mut st);
            self.shared.work_available.notify_all();
            let remaining = Duration::from_secs_f64(((t - now_s) * st.time_scale).max(0.0));
            let nap = remaining.min(Duration::from_millis(2));
            let _ = self.shared.progress.wait_for(&mut st, nap);
        }
    }

    /// Runs until every submitted task has completed or terminally
    /// failed, returning the execution report (results stay available via
    /// [`drain_results`](Self::drain_results) / [`wait`](Self::wait)).
    #[must_use]
    pub fn run_to_completion(&self) -> ExecutionReport {
        self.wait_idle();
        self.report()
    }

    /// Builds an execution report from everything finished so far. Times
    /// are engine seconds since the engine started.
    #[must_use]
    pub fn report(&self) -> ExecutionReport {
        let st = self.shared.state.lock();
        let makespan = st.completed.iter().map(|c| c.finished_at).fold(0.0_f64, f64::max);
        ExecutionReport { completed: st.completed.clone(), makespan, faults: st.ledger.stats() }
    }

    /// One supervision pass: fire due evictions, abandon timed-out
    /// attempts, enqueue speculative duplicates for stragglers.
    fn supervise(&self, st: &mut EngineState<R>) {
        let now = Instant::now();
        // Evictions: kill the busiest worker at the scheduled instant.
        let now_s = st.now_s(self.epoch);
        while st.evictions.first().is_some_and(|&at| at <= now_s) {
            st.evictions.remove(0);
            self.fire_eviction(st, now_s);
        }
        // Timeouts: abandon attempts cooperatively. The worker keeps
        // running the closure (threads cannot be killed); its result is
        // discarded because the attempt is no longer in `running`.
        if let Some(timeout) = st.timeout {
            let mut lost: Vec<(TaskId, f64, u32, u32)> = Vec::new();
            for (&id, entry) in &mut st.tasks {
                if entry.done || entry.failed {
                    continue;
                }
                let mut i = 0;
                while i < entry.running.len() {
                    if now.duration_since(entry.running[i].started) > timeout {
                        let attempt = entry.running.remove(i);
                        lost.push((
                            id,
                            now.duration_since(attempt.started).as_secs_f64(),
                            attempt.worker,
                            attempt.attempt,
                        ));
                    } else {
                        i += 1;
                    }
                }
            }
            let scale = st.time_scale;
            for (id, elapsed, worker, attempt) in lost {
                st.running_attempts -= 1;
                let ctx = LossContext {
                    cause: LossCause::Timeout,
                    attempt,
                    worker: Some(WorkerId::new(worker)),
                    at: now_s,
                };
                st.settle_loss(
                    id,
                    AttemptLoss::Timeout,
                    elapsed / scale,
                    "wall-clock timeout",
                    &ctx,
                );
            }
        }
        // Stragglers: speculate once the running mean is warm.
        if let Some(threshold) = st.ledger.fast_abort_threshold() {
            let scale = st.time_scale;
            let mut speculate: Vec<TaskId> = Vec::new();
            for (&id, entry) in &st.tasks {
                if entry.done || entry.failed || entry.queued > 0 {
                    continue;
                }
                if !st.ledger.speculation_allowed(id) {
                    continue;
                }
                let lagging = entry
                    .running
                    .iter()
                    .any(|r| now.duration_since(r.started).as_secs_f64() / scale > threshold);
                if lagging {
                    speculate.push(id);
                }
            }
            for id in speculate {
                st.ledger.note_speculation(id);
                st.enqueue_ready(id);
                self.shared.work_available.notify_one();
            }
        }
    }

    /// Fires one eviction at engine time `now_s`: strip the
    /// earliest-started running attempt (most sunk work lost), settle it
    /// as a crash loss, and remove that worker from the pool — or retire
    /// an idle worker when nothing is running.
    fn fire_eviction(&self, st: &mut EngineState<R>, now_s: f64) {
        let victim: Option<(TaskId, u32, f64, u32)> = st
            .tasks
            .iter()
            .filter(|(_, e)| !e.done && !e.failed)
            .flat_map(|(&id, e)| {
                e.running.iter().map(move |r| (id, r.worker, r.started_s, r.attempt))
            })
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(Ordering::Equal));
        if let Some((task, worker, started_s, attempt)) = victim {
            if let Some(entry) = st.tasks.get_mut(&task) {
                if let Some(pos) = entry.running.iter().position(|r| r.worker == worker) {
                    entry.running.remove(pos);
                    st.running_attempts -= 1;
                }
            }
            st.evicted.insert(worker);
            st.alive_workers = st.alive_workers.saturating_sub(1);
            let ctx = LossContext {
                cause: LossCause::Evicted,
                attempt,
                worker: Some(WorkerId::new(worker)),
                at: now_s,
            };
            st.settle_loss(task, AttemptLoss::Crash, (now_s - started_s).max(0.0), "evicted", &ctx);
        } else if st.alive_workers > 0 {
            st.retiring += 1;
            st.alive_workers -= 1;
        }
    }

    #[allow(clippy::too_many_lines)]
    fn worker_loop(shared: &Arc<EngineShared<R>>, me: u32, epoch: Instant) {
        loop {
            // Acquire an attempt.
            let (task_id, work, fault, straggler_extra, scale) = {
                let mut st = shared.state.lock();
                let acquired = loop {
                    if shared.shutdown.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    if st.quarantined.contains(&me) || st.evicted.contains(&me) {
                        return;
                    }
                    if st.retiring > 0 {
                        st.retiring -= 1;
                        return;
                    }
                    let now = Instant::now();
                    st.promote_due(now);
                    // Pop the highest-priority runnable attempt, skipping
                    // entries for tasks that finished meanwhile.
                    let mut popped = None;
                    while let Some(ra) = st.ready.pop() {
                        let Some(entry) = st.tasks.get_mut(&ra.task) else { continue };
                        entry.queued = entry.queued.saturating_sub(1);
                        if entry.done || entry.failed {
                            continue;
                        }
                        popped = Some(ra.task);
                        break;
                    }
                    if let Some(id) = popped {
                        break id;
                    }
                    match st.delayed.first().map(|&(at, _)| at) {
                        Some(release) => {
                            let dur = release
                                .saturating_duration_since(Instant::now())
                                .max(Duration::from_millis(1));
                            let _ = shared.work_available.wait_for(&mut st, dur);
                        }
                        None => shared.work_available.wait(&mut st),
                    }
                };
                let scale = st.time_scale;
                let mean =
                    (st.ledger.durations().count() > 0).then(|| st.ledger.durations().mean());
                let (attempt, fault) = st.ledger.begin_attempt(acquired);
                let started_s = st.now_s(epoch);
                let slowdown = st.ledger.plan().map(|p| p.straggler_slowdown());
                let entry = st.tasks.get_mut(&acquired).expect("popped task exists");
                entry.running.push(RunningAttempt {
                    worker: me,
                    attempt,
                    started: Instant::now(),
                    started_s,
                });
                let job = entry.job;
                let work = entry.work.clone();
                st.running_attempts += 1;
                st.record(
                    acquired,
                    job,
                    attempt,
                    Some(WorkerId::new(me)),
                    started_s,
                    TaskPhase::Dispatched,
                );
                // An injected straggler runs the real work, padded to
                // `slowdown ×` the mean task time (bounded so tests stay
                // fast even before the mean warms up).
                let straggler_extra = match (fault, slowdown) {
                    (Some(FaultKind::Straggler), Some(sd)) => {
                        let base = mean.unwrap_or(0.005);
                        (base * (sd - 1.0) * scale).clamp(0.002, 1.0)
                    }
                    _ => 0.0,
                };
                (acquired, work, fault, straggler_extra, scale)
            };

            // Execute outside the lock.
            enum Outcome<R> {
                Success(Option<R>),
                Panicked(String),
                Injected(FaultKind),
            }
            let started = Instant::now();
            let outcome = match fault {
                Some(kind @ (FaultKind::Transient | FaultKind::WorkerCrash)) => {
                    Outcome::Injected(kind)
                }
                Some(FaultKind::Straggler) | None => {
                    if straggler_extra > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(straggler_extra));
                    }
                    match &work {
                        TaskWork::Payload(f) => {
                            let f = Arc::clone(f);
                            match catch_unwind(AssertUnwindSafe(move || f())) {
                                Ok(r) => Outcome::Success(Some(r)),
                                Err(payload) => Outcome::Panicked(panic_message(payload.as_ref())),
                            }
                        }
                        TaskWork::Simulated(d) => {
                            std::thread::sleep(Duration::from_secs_f64((d * scale).max(0.0)));
                            Outcome::Success(None)
                        }
                    }
                }
            };
            let elapsed = started.elapsed().as_secs_f64() / scale;

            // Settle under the lock.
            let mut crashed = false;
            {
                let mut st = shared.state.lock();
                let run = {
                    let Some(entry) = st.tasks.get_mut(&task_id) else { continue };
                    // If the master abandoned this attempt (timeout or
                    // eviction), it is gone from `running` and already
                    // accounted: discard the stale outcome.
                    let Some(pos) = entry.running.iter().position(|r| r.worker == me) else {
                        continue;
                    };
                    entry.running.remove(pos)
                };
                st.running_attempts -= 1;
                match outcome {
                    Outcome::Success(value) => {
                        let finished_s = st.now_s(epoch);
                        let entry = st.tasks.get_mut(&task_id).expect("entry exists");
                        let job = entry.job;
                        if entry.done {
                            // Lost a speculation race: wasted duplicate.
                            st.ledger.record_lost_duplicate(elapsed);
                            st.record(
                                task_id,
                                job,
                                run.attempt,
                                Some(WorkerId::new(me)),
                                finished_s,
                                TaskPhase::Failed(LossCause::Straggler),
                            );
                        } else {
                            entry.done = true;
                            let submitted_at = entry.submitted_at;
                            let deadline = entry.deadline;
                            st.ledger.record_success(task_id, elapsed);
                            if let Some(v) = value {
                                st.results.push((job, v));
                            }
                            st.completed.push(CompletedTask {
                                task: task_id,
                                job,
                                submitted_at,
                                started_at: run.started_s,
                                finished_at: finished_s,
                                worker: WorkerId::new(me),
                                deadline,
                            });
                            st.outstanding -= 1;
                            st.record(
                                task_id,
                                job,
                                run.attempt,
                                Some(WorkerId::new(me)),
                                finished_s,
                                TaskPhase::Completed,
                            );
                        }
                    }
                    Outcome::Panicked(msg) => {
                        let ctx = LossContext {
                            cause: LossCause::Transient,
                            attempt: run.attempt,
                            worker: Some(WorkerId::new(me)),
                            at: st.now_s(epoch),
                        };
                        st.settle_loss(
                            task_id,
                            AttemptLoss::Transient { panicked: true },
                            elapsed,
                            &msg,
                            &ctx,
                        );
                        let _ = st.note_worker_fault(me);
                    }
                    Outcome::Injected(FaultKind::Transient) => {
                        let ctx = LossContext {
                            cause: LossCause::Transient,
                            attempt: run.attempt,
                            worker: Some(WorkerId::new(me)),
                            at: st.now_s(epoch),
                        };
                        st.settle_loss(
                            task_id,
                            AttemptLoss::Transient { panicked: false },
                            elapsed,
                            "injected transient fault",
                            &ctx,
                        );
                        let _ = st.note_worker_fault(me);
                    }
                    Outcome::Injected(FaultKind::WorkerCrash) => {
                        let ctx = LossContext {
                            cause: LossCause::Crash,
                            attempt: run.attempt,
                            worker: Some(WorkerId::new(me)),
                            at: st.now_s(epoch),
                        };
                        st.settle_loss(task_id, AttemptLoss::Crash, elapsed, "worker crash", &ctx);
                        st.alive_workers -= 1;
                        crashed = true;
                    }
                    Outcome::Injected(FaultKind::Straggler) => {
                        unreachable!("stragglers execute; handled as Success")
                    }
                }
            }
            shared.work_available.notify_all();
            shared.progress.notify_all();
            if crashed {
                Self::respawn_after_crash(shared, epoch);
                return;
            }
        }
    }

    /// A crashed worker's parting act: spawn its replacement, which joins
    /// the pool after the plan's restart delay (engine seconds, scaled).
    fn respawn_after_crash(shared: &Arc<EngineShared<R>>, epoch: Instant) {
        let (new_id, delay) = {
            let mut st = shared.state.lock();
            let id = st.next_worker;
            st.next_worker += 1;
            let delay = st.ledger.plan().map_or(0.05, |p| p.worker_restart_delay()) * st.time_scale;
            (id, delay)
        };
        let spawned = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs_f64(delay);
            while Instant::now() < deadline {
                if spawned.shutdown.load(AtomicOrdering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                spawned.state.lock().alive_workers += 1;
            }
            spawned.progress.notify_all();
            Self::worker_loop(&spawned, new_id, epoch);
        });
        shared.handles.lock().push(handle);
    }
}

impl<R: Send + 'static> ExecutionBackend for ThreadedEngine<R> {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        self.submit_spec(spec)
    }
    fn set_job_priority(&mut self, job: JobId, priority: f64) {
        ThreadedEngine::set_job_priority(self, job, priority);
    }
    fn set_num_workers(&mut self, n: usize) {
        ThreadedEngine::set_num_workers(self, n);
    }
    fn num_workers(&self) -> usize {
        ThreadedEngine::num_workers(self)
    }
    fn pending(&self) -> usize {
        ThreadedEngine::pending(self)
    }
    fn pending_of(&self, job: JobId) -> usize {
        ThreadedEngine::pending_of(self, job)
    }
    fn running(&self) -> usize {
        ThreadedEngine::running(self)
    }
    fn now(&self) -> f64 {
        ThreadedEngine::now(self)
    }
    fn run_until(&mut self, t: f64) {
        ThreadedEngine::run_until(self, t);
    }
    fn run_to_completion(&mut self) -> ExecutionReport {
        ThreadedEngine::run_to_completion(self)
    }
    fn schedule_eviction(&mut self, t: f64) {
        ThreadedEngine::schedule_eviction(self, t);
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        ThreadedEngine::set_fault_plan(self, plan);
    }
    fn set_retry_policy(&mut self, retry: RetryPolicy) {
        ThreadedEngine::set_retry_policy(self, retry);
    }
    fn set_fast_abort(&mut self, fast_abort: FastAbort) {
        ThreadedEngine::set_fast_abort(self, fast_abort);
    }
    fn retries(&self) -> u64 {
        ThreadedEngine::retries(self)
    }
    fn fault_stats(&self) -> FaultStats {
        ThreadedEngine::fault_stats(self)
    }
    fn failed(&self) -> Vec<FailedTask> {
        ThreadedEngine::failed(self)
    }
    fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        ThreadedEngine::set_recorder(self, recorder);
    }
    fn backend_name(&self) -> &'static str {
        "threaded"
    }
}

impl<R: Send + 'static> JobBackend<R> for ThreadedEngine<R> {
    fn submit_job(&mut self, spec: TaskSpec, work: TaskPayload<R>) -> Result<TaskId, SstdError> {
        Ok(self.insert_task(spec.job(), None, TaskWork::Payload(work), spec.deadline()))
    }

    fn drain_results(&mut self) -> Vec<(JobId, R)> {
        ThreadedEngine::drain_results(self)
    }
}

impl<R: Send + 'static> Drop for ThreadedEngine<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, AtomicOrdering::Release);
        self.shared.work_available.notify_all();
        // Respawn threads may still push handles while we join; drain
        // until the list stays empty.
        loop {
            let handles = std::mem::take(&mut *self.shared.handles.lock());
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_all_tasks() {
        let q = ThreadedWorkQueue::new(3);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            let _ = q.submit(JobId::new(0), 1.0, move || c.fetch_add(1, AtomicOrdering::Relaxed));
        }
        let results = q.wait();
        assert_eq!(results.len(), 50);
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 50);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn results_carry_job_ids() {
        let q = ThreadedWorkQueue::new(2);
        let first = q.submit(JobId::new(7), 1.0, || "seven");
        let second = q.submit(JobId::new(8), 1.0, || "eight");
        assert_ne!(first, second, "submissions get distinct task ids");
        let mut results = q.wait();
        results.sort_by_key(|&(j, _)| j);
        assert_eq!(results, vec![(JobId::new(7), "seven"), (JobId::new(8), "eight")]);
    }

    #[test]
    fn priority_orders_queued_work() {
        // Single worker; first task blocks briefly so the rest queue up.
        let q = ThreadedWorkQueue::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let o = Arc::clone(&order);
            let _ = q.submit(JobId::new(0), 1.0, move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                o.lock().push(0u32);
            });
        }
        // Give the worker a moment to take the blocking task.
        std::thread::sleep(std::time::Duration::from_millis(10));
        for (i, prio) in [(1u32, 1.0), (2, 5.0), (3, 3.0)] {
            let o = Arc::clone(&order);
            let _ = q.submit(JobId::new(i), prio, move || o.lock().push(i));
        }
        let _ = q.wait();
        let seen = order.lock().clone();
        assert_eq!(seen, vec![0, 2, 3, 1], "high priority first after the head task");
    }

    #[test]
    fn wait_on_empty_queue_returns_immediately() {
        let q: ThreadedWorkQueue<u32> = ThreadedWorkQueue::new(2);
        assert!(q.wait().is_empty());
    }

    #[test]
    fn reusable_after_wait() {
        let q = ThreadedWorkQueue::new(2);
        let _ = q.submit(JobId::new(0), 1.0, || 1);
        assert_eq!(q.wait().len(), 1);
        let _ = q.submit(JobId::new(0), 1.0, || 2);
        assert_eq!(q.wait().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: ThreadedWorkQueue<()> = ThreadedWorkQueue::new(0);
    }

    #[test]
    fn panicking_task_does_not_hang_wait() {
        let q = ThreadedWorkQueue::new(2);
        let _ = q.submit(JobId::new(0), 1.0, || 1u32);
        let _ = q.submit(JobId::new(1), 2.0, || panic!("task exploded"));
        let _ = q.submit(JobId::new(0), 1.0, || 2u32);
        let results = q.wait(); // must return despite the panic
        assert_eq!(results.len(), 2, "surviving tasks still deliver results");
        let failures = q.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, JobId::new(1));
        assert!(failures[0].1.contains("task exploded"), "{}", failures[0].1);
        // The worker survived the panic and keeps draining.
        let _ = q.submit(JobId::new(2), 1.0, || 3u32);
        assert_eq!(q.wait().len(), 1);
    }

    #[test]
    fn single_worker_survives_repeated_panics() {
        let q = ThreadedWorkQueue::new(1);
        for i in 0..10u32 {
            let _ = q.submit(JobId::new(i), 1.0, move || {
                assert!(i % 2 == 0, "odd tasks fail");
                i
            });
        }
        let results = q.wait();
        assert_eq!(results.len(), 5);
        assert_eq!(q.take_failures().len(), 5);
        assert_eq!(q.pending(), 0);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A retry policy with sub-millisecond backoffs so tests run fast.
    fn fast_retry() -> RetryPolicy {
        RetryPolicy { backoff_base: 0.0005, backoff_cap: 0.005, ..RetryPolicy::default() }
    }

    #[test]
    fn executes_all_tasks_without_faults() {
        let engine = ThreadedEngine::new(3);
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 4), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40);
        let stats = engine.fault_stats();
        assert_eq!(stats.attempts, 40);
        assert_eq!(stats.successes, 40);
        assert!(stats.reconciles(), "{stats}");
        let report = engine.report();
        assert_eq!(report.completed.len(), 40);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(11).with_transient_rate(0.25));
        engine.set_retry_policy(fast_retry());
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 2), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40, "no task lost to transient faults");
        let stats = engine.fault_stats();
        assert!(stats.transient_failures > 0, "rate 0.25 must fault: {stats}");
        assert!(stats.reconciles(), "{stats}");
        assert!(engine.failed().is_empty());
        assert!(engine.retries() > 0, "every transient loss re-queues");
    }

    #[test]
    fn panics_count_as_transient_failures_and_retry() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        let flaky_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&flaky_calls);
        engine.submit(JobId::new(0), 1.0, move || {
            // First attempt panics; the retry succeeds.
            assert!(calls.fetch_add(1, AtomicOrdering::SeqCst) > 0, "first attempt dies");
            99u32
        });
        engine.submit(JobId::new(1), 1.0, || 1u32);
        let results = engine.wait();
        assert_eq!(results.len(), 2);
        let stats = engine.fault_stats();
        assert!(stats.panics >= 1, "{stats}");
        assert!(stats.transient_failures >= 1);
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn hopeless_tasks_exhaust_and_are_reported() {
        let engine: ThreadedEngine<u32> = ThreadedEngine::new(2);
        engine.set_retry_policy(RetryPolicy { max_attempts: 2, ..fast_retry() });
        engine.submit(JobId::new(3), 1.0, || panic!("always broken"));
        engine.submit(JobId::new(4), 1.0, || 7u32);
        let results = engine.wait();
        assert_eq!(results.len(), 1, "healthy task still completes");
        let failed = engine.failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].job, JobId::new(3));
        assert_eq!(failed[0].attempts, 2, "retries stay within the cap");
        assert!(failed[0].error.contains("always broken"));
        let stats = engine.fault_stats();
        assert_eq!(stats.exhausted_tasks, 1);
        assert_eq!(stats.panics, 2);
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn worker_crashes_respawn_and_work_survives() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(9).with_crash_rate(0.15).with_restart_delay(0.01));
        engine.set_retry_policy(fast_retry());
        for i in 0..30u32 {
            engine.submit(JobId::new(i % 3), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 30, "crashes never lose tasks");
        let stats = engine.fault_stats();
        assert!(stats.crash_failures > 0, "rate 0.15 must crash: {stats}");
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn timeout_abandons_a_hung_attempt() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        engine.set_task_timeout(Duration::from_millis(40));
        let slow_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&slow_calls);
        engine.submit(JobId::new(0), 1.0, move || {
            if calls.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                // First attempt hangs well past the timeout.
                std::thread::sleep(Duration::from_millis(250));
            }
            5u32
        });
        let results = engine.wait();
        assert_eq!(results.len(), 1, "the retry rescued the task");
        let stats = engine.fault_stats();
        assert!(stats.timeout_aborts >= 1, "{stats}");
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn fast_abort_speculates_past_stragglers() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        engine.set_fast_abort(FastAbort { multiplier: 4.0, min_samples: 4, max_speculations: 2 });
        // Warm the running mean with quick tasks.
        for i in 0..8u32 {
            engine.submit(JobId::new(0), 2.0, move || {
                std::thread::sleep(Duration::from_millis(3));
                i
            });
        }
        let _ = engine.wait();
        // One task straggles on its first attempt only; the speculative
        // duplicate finishes fast and wins.
        let straggler_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&straggler_calls);
        engine.submit(JobId::new(1), 1.0, move || {
            if calls.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(400));
            } else {
                std::thread::sleep(Duration::from_millis(3));
            }
            42u32
        });
        let results = engine.wait();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, 42);
        let stats = engine.fault_stats();
        assert!(
            stats.straggler_aborts >= 1,
            "the losing attempt is discarded and accounted: {stats}"
        );
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn quarantine_retires_flaky_workers() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(21).with_transient_rate(0.5));
        engine.set_retry_policy(RetryPolicy {
            quarantine_threshold: 3,
            max_attempts: 50,
            ..fast_retry()
        });
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 2), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40);
        let stats = engine.fault_stats();
        assert!(stats.reconciles(), "{stats}");
        assert!(engine.num_workers() >= 1, "never quarantines the last worker");
        if stats.quarantined_workers > 0 {
            assert!(engine.num_workers() < 3);
        }
    }

    #[test]
    fn fault_decisions_are_deterministic_across_runs() {
        // Without speculation/timeouts, the per-task attempt sequence is
        // a pure function of the plan, so injected-fault counts match
        // exactly across runs despite real thread scheduling.
        let run = || {
            let engine = ThreadedEngine::new(4);
            engine.set_fault_plan(
                FaultPlan::new(33)
                    .with_transient_rate(0.2)
                    .with_crash_rate(0.05)
                    .with_restart_delay(0.005),
            );
            engine.set_retry_policy(fast_retry());
            for i in 0..30u32 {
                engine.submit(JobId::new(i % 3), 1.0, move || i);
            }
            let n = engine.wait().len();
            let s = engine.fault_stats();
            (n, s.attempts, s.transient_failures, s.crash_failures)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault schedule must not depend on thread timing");
        assert_eq!(a.0, 30);
    }

    #[test]
    fn report_reconciles_under_mixed_fault_load() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(
            FaultPlan::new(55)
                .with_transient_rate(0.15)
                .with_crash_rate(0.05)
                .with_stragglers(0.1, 4.0)
                .with_restart_delay(0.01),
        );
        engine.set_retry_policy(fast_retry());
        engine.set_fast_abort(FastAbort { min_samples: 4, ..FastAbort::default() });
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 4), 1.0, move || {
                std::thread::sleep(Duration::from_millis(2));
                i
            });
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40, "all jobs complete under a mixed fault load");
        let report = engine.report();
        assert_eq!(report.completed.len(), 40);
        assert!(report.faults.reconciles(), "{}", report.faults);
        assert!(report.faults.fault_ratio() > 0.0);
    }

    #[test]
    fn simulated_specs_run_through_the_trait() {
        let mut engine: ThreadedEngine<()> = ThreadedEngine::new(2);
        engine.set_simulation(ExecutionModel::new(0.0, 0.01, 0.01), 0.01);
        let backend: &mut dyn ExecutionBackend = &mut engine;
        for i in 0..6u32 {
            // 1 engine-second each => 10ms real at scale 0.01.
            let _ = backend.submit(TaskSpec::new(JobId::new(i % 2), 100.0));
        }
        backend.set_job_priority(JobId::new(0), 2.0);
        let report = backend.run_to_completion();
        assert_eq!(report.completed.len(), 6);
        assert!(report.makespan >= 1.0, "three rounds of 1s tasks on two workers");
        assert_eq!(backend.backend_name(), "threaded");
        assert!(backend.fault_stats().reconciles());
    }

    #[test]
    fn elastic_resize_grows_and_shrinks_the_pool() {
        let engine: ThreadedEngine<u32> = ThreadedEngine::new(2);
        engine.set_num_workers(4);
        assert_eq!(engine.num_workers(), 4);
        engine.set_num_workers(1);
        assert_eq!(engine.num_workers(), 1);
        // The shrunken pool still drains work.
        for i in 0..8u32 {
            engine.submit(JobId::new(0), 1.0, move || i);
        }
        assert_eq!(engine.wait().len(), 8);
        // And can grow back afterwards.
        engine.set_num_workers(3);
        assert_eq!(engine.num_workers(), 3);
        for i in 0..6u32 {
            engine.submit(JobId::new(0), 1.0, move || i);
        }
        assert_eq!(engine.wait().len(), 6);
    }

    #[test]
    fn eviction_kills_a_worker_and_requeues_its_task() {
        let engine: ThreadedEngine<()> = ThreadedEngine::new(2);
        engine.set_simulation(ExecutionModel::new(0.0, 0.01, 0.01), 0.01);
        engine.set_retry_policy(fast_retry());
        for _ in 0..4 {
            let _ = engine.submit_spec(TaskSpec::new(JobId::new(0), 100.0));
        }
        // Tasks take 1 engine-second (10ms real): at t = 0.5 both workers
        // are mid-attempt, so the eviction strips a running attempt.
        engine.schedule_eviction(0.5);
        let report = engine.run_to_completion();
        assert_eq!(report.completed.len(), 4, "the interrupted task is re-queued");
        assert_eq!(engine.num_workers(), 1, "the pool shrinks for good");
        let stats = engine.fault_stats();
        assert_eq!(stats.crash_failures, 1, "{stats}");
        assert!(stats.reconciles(), "{stats}");
    }
}
