//! Real master/worker execution backends on OS threads.
//!
//! This is the Work Queue programming model in miniature: a master submits
//! prioritized tasks (closures), an elastic pool of workers pulls and
//! executes them, and the master collects results. The DES backend shares
//! the same scheduling semantics for simulation; these backends prove the
//! design runs real computations (the streaming benchmarks use them to
//! execute actual truth-discovery jobs).
//!
//! Two layers live here:
//!
//! - [`ThreadedWorkQueue`] — the minimal prioritized queue. Hardened so a
//!   panicking task closure is caught ([`std::panic::catch_unwind`]),
//!   surfaced as a task failure, and never wedges `wait()` or `Drop`
//!   (the `parking_lot` mutexes do not poison, and the worker thread
//!   survives to keep draining).
//! - [`ThreadedEngine`] — the fault-tolerant engine sharing the unified
//!   fault model of [`crate::fault`] with the DES: seeded deterministic
//!   injection ([`FaultPlan`]), retry with exponential backoff and caps
//!   ([`RetryPolicy`]), worker quarantine, per-task wall-clock timeouts,
//!   and Work-Queue-style straggler mitigation ([`FastAbort`]) via
//!   speculative re-execution — first completion wins, stale results are
//!   discarded and accounted as aborts.

use crate::fault::splitmix64;
use crate::{
    CompletedTask, ExecutionReport, FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, JobId,
    RetryPolicy, TaskId, WorkerId,
};
use parking_lot::{Condvar, Mutex};
use sstd_stats::OnlineStats;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type TaskFn<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// Renders a caught panic payload as a human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "task panicked".to_string())
}

struct QueuedTask<R> {
    job: JobId,
    priority: f64,
    seq: u64,
    run: TaskFn<R>,
}

impl<R> PartialEq for QueuedTask<R> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<R> Eq for QueuedTask<R> {}
impl<R> PartialOrd for QueuedTask<R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for QueuedTask<R> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first; FIFO (lower seq) within a tier.
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Shared<R> {
    queue: Mutex<BinaryHeap<QueuedTask<R>>>,
    results: Mutex<Vec<(JobId, R)>>,
    /// Tasks whose closure panicked: `(job, panic message)`.
    failures: Mutex<Vec<(JobId, String)>>,
    work_available: Condvar,
    all_done: Condvar,
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

impl<R> std::fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("pending", &self.pending.load(AtomicOrdering::Relaxed))
            .field("shutdown", &self.shutdown.load(AtomicOrdering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A threaded master/worker queue executing prioritized closures.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, ThreadedWorkQueue};
///
/// let queue = ThreadedWorkQueue::new(2);
/// for i in 0..4u32 {
///     queue.submit(JobId::new(i % 2), 1.0, move || i * 10);
/// }
/// let mut results = queue.wait();
/// results.sort_by_key(|&(_, v)| v);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[3].1, 30);
/// ```
#[derive(Debug)]
pub struct ThreadedWorkQueue<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicUsize,
}

impl<R: Send + 'static> ThreadedWorkQueue<R> {
    /// Spawns `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(BinaryHeap::new()),
            results: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
            all_done: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers, next_seq: AtomicUsize::new(0) }
    }

    fn worker_loop(shared: &Shared<R>) {
        loop {
            let task = {
                let mut queue = shared.queue.lock();
                loop {
                    if let Some(t) = queue.pop() {
                        break t;
                    }
                    if shared.shutdown.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    shared.work_available.wait(&mut queue);
                }
            };
            // A panicking closure must not kill the worker (which would
            // strand queued tasks and hang `wait`): catch it, record the
            // failure, and keep draining. `parking_lot` mutexes do not
            // poison, so the shared state stays usable.
            match catch_unwind(AssertUnwindSafe(task.run)) {
                Ok(result) => shared.results.lock().push((task.job, result)),
                Err(payload) => {
                    shared.failures.lock().push((task.job, panic_message(payload.as_ref())));
                }
            }
            if shared.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                shared.all_done.notify_all();
            }
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a closure as a task of `job` with the given priority
    /// (higher runs earlier).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite.
    pub fn submit<F>(&self, job: JobId, priority: f64, f: F)
    where
        F: FnOnce() -> R + Send + 'static,
    {
        assert!(priority.is_finite(), "priority must be finite");
        let seq = self.next_seq.fetch_add(1, AtomicOrdering::Relaxed) as u64;
        self.shared.pending.fetch_add(1, AtomicOrdering::AcqRel);
        self.shared.queue.lock().push(QueuedTask { job, priority, seq, run: Box::new(f) });
        self.shared.work_available.notify_one();
    }

    /// Number of submitted-but-unfinished tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.pending.load(AtomicOrdering::Acquire)
    }

    /// Blocks until every submitted task finished (successfully or by
    /// panicking), draining the collected `(job, result)` pairs
    /// (completion order). Panicked tasks produce no result; inspect
    /// [`take_failures`](Self::take_failures).
    #[must_use]
    pub fn wait(&self) -> Vec<(JobId, R)> {
        let mut results = self.shared.results.lock();
        while self.shared.pending.load(AtomicOrdering::Acquire) > 0 {
            self.shared.all_done.wait(&mut results);
        }
        std::mem::take(&mut *results)
    }

    /// Drains the recorded task failures: `(job, panic message)` for each
    /// closure that panicked.
    #[must_use]
    pub fn take_failures(&self) -> Vec<(JobId, String)> {
        std::mem::take(&mut *self.shared.failures.lock())
    }
}

impl<R: Send + 'static> Drop for ThreadedWorkQueue<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, AtomicOrdering::Release);
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant engine
// ---------------------------------------------------------------------------

type WorkFn<R> = Arc<dyn Fn() -> R + Send + Sync + 'static>;

/// An attempt waiting in the ready heap.
struct ReadyAttempt {
    priority: f64,
    seq: u64,
    task: TaskId,
}

impl PartialEq for ReadyAttempt {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for ReadyAttempt {}
impl PartialOrd for ReadyAttempt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyAttempt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// An attempt currently executing on a worker.
struct RunningAttempt {
    worker: u32,
    started: Instant,
    started_s: f64,
}

struct TaskEntry<R> {
    job: JobId,
    priority: f64,
    work: WorkFn<R>,
    submitted_at: f64,
    /// Attempts started so far (also the next attempt's zero-based index).
    attempts_started: u32,
    /// Speculative duplicates enqueued for this task.
    speculations: u32,
    /// Attempts queued (ready or backing off) but not yet started.
    queued: u32,
    running: Vec<RunningAttempt>,
    done: bool,
    failed: bool,
}

/// Why an attempt did not succeed — maps onto [`FaultStats`] counters.
enum AttemptLoss {
    Transient { panicked: bool },
    Crash,
    Timeout,
}

struct EngineState<R> {
    tasks: BTreeMap<TaskId, TaskEntry<R>>,
    ready: BinaryHeap<ReadyAttempt>,
    /// Attempts waiting out a retry backoff, sorted by release instant.
    delayed: Vec<(Instant, TaskId)>,
    next_task: u32,
    next_seq: u64,
    next_worker: u32,
    alive_workers: usize,
    /// Tasks neither completed nor terminally failed.
    outstanding: usize,
    /// Attempts currently executing (across all tasks).
    running_attempts: usize,
    /// Workers told to exit after repeated faults.
    quarantined: BTreeSet<u32>,
    worker_faults: BTreeMap<u32, u32>,
    stats: FaultStats,
    durations: OnlineStats,
    results: Vec<(JobId, R)>,
    completed: Vec<CompletedTask>,
    failed: Vec<FailedTask>,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    fast_abort: Option<FastAbort>,
    timeout: Option<Duration>,
}

impl<R> EngineState<R> {
    /// Enqueues one runnable attempt for `task`.
    fn enqueue_ready(&mut self, task: TaskId) {
        let Some(entry) = self.tasks.get_mut(&task) else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.queued += 1;
        self.ready.push(ReadyAttempt { priority: entry.priority, seq, task });
    }

    /// Schedules a retry after the policy's backoff.
    fn enqueue_delayed(&mut self, task: TaskId, delay: f64) {
        let Some(entry) = self.tasks.get_mut(&task) else { return };
        entry.queued += 1;
        let release = Instant::now() + Duration::from_secs_f64(delay.max(0.0));
        self.delayed.push((release, task));
        self.delayed.sort_by_key(|&(at, id)| (at, id));
    }

    /// Moves attempts whose backoff expired into the ready heap.
    fn promote_due(&mut self, now: Instant) {
        while self.delayed.first().is_some_and(|&(at, _)| at <= now) {
            let (_, task) = self.delayed.remove(0);
            // `queued` stays: the attempt moves between queues.
            let Some(entry) = self.tasks.get_mut(&task) else { continue };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.ready.push(ReadyAttempt { priority: entry.priority, seq, task });
        }
    }

    /// Settles a lost attempt: account it, then retry, give up, or defer
    /// to a still-running sibling attempt.
    fn settle_loss(&mut self, task: TaskId, loss: &AttemptLoss, elapsed: f64, error: &str) {
        self.stats.wasted_time += elapsed;
        match loss {
            AttemptLoss::Transient { panicked } => {
                self.stats.transient_failures += 1;
                if *panicked {
                    self.stats.panics += 1;
                }
            }
            AttemptLoss::Crash => self.stats.crash_failures += 1,
            AttemptLoss::Timeout => self.stats.timeout_aborts += 1,
        }
        let (attempts_started, job) = match self.tasks.get(&task) {
            None => return,
            Some(e) if e.done || e.failed => return,
            // A sibling attempt (speculative duplicate or queued retry)
            // will decide this task's fate.
            Some(e) if !e.running.is_empty() || e.queued > 0 => return,
            Some(e) => (e.attempts_started, e.job),
        };
        // Crash re-queues are not the task's fault: only the generous
        // hard cap bounds them. Everything else burns the retry budget.
        let cap = match loss {
            AttemptLoss::Crash => self.retry.hard_attempt_cap(),
            _ => self.retry.max_attempts,
        };
        if attempts_started >= cap {
            if let Some(e) = self.tasks.get_mut(&task) {
                e.failed = true;
            }
            self.stats.exhausted_tasks += 1;
            self.failed.push(FailedTask {
                task,
                job,
                attempts: attempts_started,
                error: error.to_string(),
            });
            self.outstanding -= 1;
        } else {
            let salt = splitmix64(self.plan.map_or(0, |p| p.seed()) ^ task.index() as u64);
            let delay = match loss {
                // The machine died, not the task: retry immediately.
                AttemptLoss::Crash => 0.0,
                _ => self.retry.backoff(attempts_started, salt),
            };
            if delay <= 0.0 {
                self.enqueue_ready(task);
            } else {
                self.enqueue_delayed(task, delay);
            }
        }
    }

    /// Attributes a fault to `worker` and quarantines it past the policy
    /// threshold (never the last worker standing). Returns whether the
    /// worker is now quarantined.
    fn note_worker_fault(&mut self, worker: u32) -> bool {
        if self.retry.quarantine_threshold == 0 {
            return false;
        }
        if self.quarantined.contains(&worker) {
            return true;
        }
        let count = {
            let c = self.worker_faults.entry(worker).or_insert(0);
            *c += 1;
            *c
        };
        if count >= self.retry.quarantine_threshold && self.alive_workers > 1 {
            self.quarantined.insert(worker);
            self.stats.quarantined_workers += 1;
            self.alive_workers -= 1;
            return true;
        }
        false
    }
}

struct EngineShared<R> {
    state: Mutex<EngineState<R>>,
    work_available: Condvar,
    /// Signaled on completions, failures and respawns; `wait` polls on it.
    progress: Condvar,
    shutdown: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// The fault-tolerant threaded Work Queue engine.
///
/// Closures are `Fn` (not `FnOnce`) so failed attempts can be re-executed.
/// Fault decisions come from a seeded [`FaultPlan`] — a pure function of
/// `(seed, task, attempt)` — so the *set* of injected faults is identical
/// across runs regardless of thread interleaving; real panics are caught
/// and treated as transient failures.
///
/// Straggler mitigation is speculative: OS threads cannot be killed, so an
/// attempt running beyond the fast-abort threshold gets a duplicate
/// enqueued; the first completion wins and the loser is discarded and
/// accounted as a straggler abort. Per-task wall-clock timeouts abandon an
/// attempt cooperatively — the result is discarded when the thread
/// eventually returns.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{FaultPlan, JobId, RetryPolicy, ThreadedEngine};
///
/// let engine = ThreadedEngine::new(2);
/// engine.set_fault_plan(FaultPlan::new(7).with_transient_rate(0.2));
/// engine.set_retry_policy(RetryPolicy { backoff_base: 0.001, ..RetryPolicy::default() });
/// for i in 0..10u32 {
///     engine.submit(JobId::new(i % 2), 1.0, move || i * 2);
/// }
/// let results = engine.wait();
/// assert_eq!(results.len(), 10, "every task completes despite faults");
/// assert!(engine.fault_stats().reconciles());
/// ```
pub struct ThreadedEngine<R: Send + 'static> {
    shared: Arc<EngineShared<R>>,
    epoch: Instant,
}

impl<R: Send + 'static> std::fmt::Debug for ThreadedEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("ThreadedEngine")
            .field("outstanding", &st.outstanding)
            .field("alive_workers", &st.alive_workers)
            .field("stats", &st.stats)
            .finish_non_exhaustive()
    }
}

impl<R: Send + 'static> ThreadedEngine<R> {
    /// Spawns `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState {
                tasks: BTreeMap::new(),
                ready: BinaryHeap::new(),
                delayed: Vec::new(),
                next_task: 0,
                next_seq: 0,
                next_worker: num_workers as u32,
                alive_workers: num_workers,
                outstanding: 0,
                running_attempts: 0,
                quarantined: BTreeSet::new(),
                worker_faults: BTreeMap::new(),
                stats: FaultStats::default(),
                durations: OnlineStats::new(),
                results: Vec::new(),
                completed: Vec::new(),
                failed: Vec::new(),
                plan: None,
                retry: RetryPolicy::default(),
                fast_abort: None,
                timeout: None,
            }),
            work_available: Condvar::new(),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        let epoch = Instant::now();
        {
            let mut handles = shared.handles.lock();
            for me in 0..num_workers as u32 {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || Self::worker_loop(&shared, me, epoch)));
            }
        }
        Self { shared, epoch }
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.shared.state.lock().plan = Some(plan);
    }

    /// Sets the retry/backoff/quarantine policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`RetryPolicy::validate`]).
    pub fn set_retry_policy(&self, retry: RetryPolicy) {
        retry.validate();
        self.shared.state.lock().retry = retry;
    }

    /// Enables speculative straggler mitigation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FastAbort::validate`]).
    pub fn set_fast_abort(&self, fast_abort: FastAbort) {
        fast_abort.validate();
        self.shared.state.lock().fast_abort = Some(fast_abort);
    }

    /// Sets a per-attempt wall-clock timeout. An attempt exceeding it is
    /// abandoned (its eventual result is discarded) and retried under the
    /// normal policy.
    pub fn set_task_timeout(&self, timeout: Duration) {
        self.shared.state.lock().timeout = Some(timeout);
    }

    /// Submits a re-executable closure as a task of `job`. Returns the
    /// task's identity.
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite.
    pub fn submit<F>(&self, job: JobId, priority: f64, f: F) -> TaskId
    where
        F: Fn() -> R + Send + Sync + 'static,
    {
        assert!(priority.is_finite(), "priority must be finite");
        let id = {
            let mut st = self.shared.state.lock();
            let id = TaskId::new(st.next_task);
            st.next_task += 1;
            st.tasks.insert(
                id,
                TaskEntry {
                    job,
                    priority,
                    work: Arc::new(f),
                    submitted_at: self.epoch.elapsed().as_secs_f64(),
                    attempts_started: 0,
                    speculations: 0,
                    queued: 0,
                    running: Vec::new(),
                    done: false,
                    failed: false,
                },
            );
            st.outstanding += 1;
            st.enqueue_ready(id);
            id
        };
        self.shared.work_available.notify_one();
        id
    }

    /// Tasks neither completed nor terminally failed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.state.lock().outstanding
    }

    /// Workers currently alive (not crashed or quarantined).
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.shared.state.lock().alive_workers
    }

    /// Failed-attempt accounting so far.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.shared.state.lock().stats
    }

    /// Tasks dropped after exhausting their retry budget.
    #[must_use]
    pub fn failed(&self) -> Vec<FailedTask> {
        self.shared.state.lock().failed.clone()
    }

    /// Blocks until every task has completed or terminally failed *and*
    /// all in-flight attempts have settled (so the books reconcile), then
    /// drains the collected `(job, result)` pairs. The master performs
    /// straggler and timeout supervision from inside this loop, Work
    /// Queue style.
    #[must_use]
    pub fn wait(&self) -> Vec<(JobId, R)> {
        let mut st = self.shared.state.lock();
        loop {
            if st.outstanding == 0 && st.running_attempts == 0 {
                return std::mem::take(&mut st.results);
            }
            self.supervise(&mut st);
            // Workers parked without a deadline cannot see retries the
            // supervision pass just queued — poke them.
            self.shared.work_available.notify_all();
            // Re-check frequently: supervision deadlines (timeouts,
            // fast-abort thresholds) are not condvar-signaled.
            let _ = self.shared.progress.wait_for(&mut st, Duration::from_millis(2));
        }
    }

    /// Builds an execution report from everything finished so far. Times
    /// are real seconds since the engine started.
    #[must_use]
    pub fn report(&self) -> ExecutionReport {
        let st = self.shared.state.lock();
        let makespan = st.completed.iter().map(|c| c.finished_at).fold(0.0_f64, f64::max);
        ExecutionReport { completed: st.completed.clone(), makespan, faults: st.stats }
    }

    /// One supervision pass: abandon timed-out attempts, enqueue
    /// speculative duplicates for stragglers.
    fn supervise(&self, st: &mut EngineState<R>) {
        let now = Instant::now();
        // Timeouts: abandon attempts cooperatively. The worker keeps
        // running the closure (threads cannot be killed); its result is
        // discarded because the attempt is no longer in `running`.
        if let Some(timeout) = st.timeout {
            let mut lost: Vec<(TaskId, f64)> = Vec::new();
            for (&id, entry) in &mut st.tasks {
                if entry.done || entry.failed {
                    continue;
                }
                let mut i = 0;
                while i < entry.running.len() {
                    if now.duration_since(entry.running[i].started) > timeout {
                        let attempt = entry.running.remove(i);
                        lost.push((id, now.duration_since(attempt.started).as_secs_f64()));
                    } else {
                        i += 1;
                    }
                }
            }
            for (id, elapsed) in lost {
                st.running_attempts -= 1;
                st.settle_loss(id, &AttemptLoss::Timeout, elapsed, "wall-clock timeout");
            }
        }
        // Stragglers: speculate once the running mean is warm.
        if let Some(fa) = st.fast_abort {
            if st.durations.count() >= fa.min_samples {
                let threshold = fa.multiplier * st.durations.mean();
                let mut speculate: Vec<TaskId> = Vec::new();
                for (&id, entry) in &st.tasks {
                    if entry.done || entry.failed || entry.queued > 0 {
                        continue;
                    }
                    if entry.speculations >= fa.max_speculations {
                        continue;
                    }
                    let lagging = entry
                        .running
                        .iter()
                        .any(|r| now.duration_since(r.started).as_secs_f64() > threshold);
                    if lagging {
                        speculate.push(id);
                    }
                }
                for id in speculate {
                    if let Some(entry) = st.tasks.get_mut(&id) {
                        entry.speculations += 1;
                    }
                    st.enqueue_ready(id);
                    self.shared.work_available.notify_one();
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn worker_loop(shared: &Arc<EngineShared<R>>, me: u32, epoch: Instant) {
        loop {
            // Acquire an attempt.
            let (task_id, work, fault, straggler_extra) = {
                let mut st = shared.state.lock();
                let acquired = loop {
                    if shared.shutdown.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    if st.quarantined.contains(&me) {
                        return;
                    }
                    let now = Instant::now();
                    st.promote_due(now);
                    // Pop the highest-priority runnable attempt, skipping
                    // entries for tasks that finished meanwhile.
                    let mut popped = None;
                    while let Some(ra) = st.ready.pop() {
                        let Some(entry) = st.tasks.get_mut(&ra.task) else { continue };
                        entry.queued = entry.queued.saturating_sub(1);
                        if entry.done || entry.failed {
                            continue;
                        }
                        popped = Some(ra.task);
                        break;
                    }
                    if let Some(id) = popped {
                        break id;
                    }
                    match st.delayed.first().map(|&(at, _)| at) {
                        Some(release) => {
                            let dur = release
                                .saturating_duration_since(Instant::now())
                                .max(Duration::from_millis(1));
                            let _ = shared.work_available.wait_for(&mut st, dur);
                        }
                        None => shared.work_available.wait(&mut st),
                    }
                };
                let plan = st.plan;
                let mean = (st.durations.count() > 0).then(|| st.durations.mean());
                let entry = st.tasks.get_mut(&acquired).expect("popped task exists");
                let attempt = entry.attempts_started;
                entry.attempts_started += 1;
                entry.running.push(RunningAttempt {
                    worker: me,
                    started: Instant::now(),
                    started_s: epoch.elapsed().as_secs_f64(),
                });
                let work = Arc::clone(&entry.work);
                st.stats.attempts += 1;
                st.running_attempts += 1;
                let fault = plan.and_then(|p| p.decide(acquired, attempt));
                // An injected straggler runs the real closure, padded to
                // `slowdown ×` the mean task time (bounded so tests stay
                // fast even before the mean warms up).
                let straggler_extra = match (fault, plan) {
                    (Some(FaultKind::Straggler), Some(p)) => {
                        let base = mean.unwrap_or(0.005);
                        (base * (p.straggler_slowdown() - 1.0)).clamp(0.002, 1.0)
                    }
                    _ => 0.0,
                };
                (acquired, work, fault, straggler_extra)
            };

            // Execute outside the lock.
            enum Outcome<R> {
                Success(R),
                Panicked(String),
                Injected(FaultKind),
            }
            let started = Instant::now();
            let outcome = match fault {
                Some(kind @ (FaultKind::Transient | FaultKind::WorkerCrash)) => {
                    Outcome::Injected(kind)
                }
                Some(FaultKind::Straggler) | None => {
                    if straggler_extra > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(straggler_extra));
                    }
                    match catch_unwind(AssertUnwindSafe(|| work())) {
                        Ok(r) => Outcome::Success(r),
                        Err(payload) => Outcome::Panicked(panic_message(payload.as_ref())),
                    }
                }
            };
            let elapsed = started.elapsed().as_secs_f64();

            // Settle under the lock.
            let mut crashed = false;
            {
                let mut st = shared.state.lock();
                let Some(entry) = st.tasks.get_mut(&task_id) else { continue };
                // If the master abandoned this attempt (timeout), it is
                // gone from `running` and already accounted: discard.
                let Some(pos) = entry.running.iter().position(|r| r.worker == me) else {
                    // The master abandoned this attempt (timeout) and
                    // already accounted it: discard the stale outcome.
                    continue;
                };
                let run = entry.running.remove(pos);
                st.running_attempts -= 1;
                match outcome {
                    Outcome::Success(value) => {
                        let entry = st.tasks.get_mut(&task_id).expect("entry exists");
                        if entry.done {
                            // Lost a speculation race: wasted duplicate.
                            st.stats.straggler_aborts += 1;
                            st.stats.wasted_time += elapsed;
                        } else {
                            entry.done = true;
                            let job = entry.job;
                            let submitted_at = entry.submitted_at;
                            st.stats.successes += 1;
                            st.durations.push(elapsed);
                            st.results.push((job, value));
                            st.completed.push(CompletedTask {
                                task: task_id,
                                job,
                                submitted_at,
                                started_at: run.started_s,
                                finished_at: epoch.elapsed().as_secs_f64(),
                                worker: WorkerId::new(me),
                                deadline: None,
                            });
                            st.outstanding -= 1;
                        }
                    }
                    Outcome::Panicked(msg) => {
                        st.settle_loss(
                            task_id,
                            &AttemptLoss::Transient { panicked: true },
                            elapsed,
                            &msg,
                        );
                        let _ = st.note_worker_fault(me);
                    }
                    Outcome::Injected(FaultKind::Transient) => {
                        st.settle_loss(
                            task_id,
                            &AttemptLoss::Transient { panicked: false },
                            elapsed,
                            "injected transient fault",
                        );
                        let _ = st.note_worker_fault(me);
                    }
                    Outcome::Injected(FaultKind::WorkerCrash) => {
                        st.settle_loss(task_id, &AttemptLoss::Crash, elapsed, "worker crash");
                        st.alive_workers -= 1;
                        crashed = true;
                    }
                    Outcome::Injected(FaultKind::Straggler) => {
                        unreachable!("stragglers execute; handled as Success")
                    }
                }
            }
            shared.work_available.notify_all();
            shared.progress.notify_all();
            if crashed {
                Self::respawn_after_crash(shared, epoch);
                return;
            }
        }
    }

    /// A crashed worker's parting act: spawn its replacement, which joins
    /// the pool after the plan's restart delay.
    fn respawn_after_crash(shared: &Arc<EngineShared<R>>, epoch: Instant) {
        let (new_id, delay) = {
            let mut st = shared.state.lock();
            let id = st.next_worker;
            st.next_worker += 1;
            (id, st.plan.map_or(0.05, |p| p.worker_restart_delay()))
        };
        let spawned = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs_f64(delay);
            while Instant::now() < deadline {
                if spawned.shutdown.load(AtomicOrdering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                spawned.state.lock().alive_workers += 1;
            }
            spawned.progress.notify_all();
            Self::worker_loop(&spawned, new_id, epoch);
        });
        shared.handles.lock().push(handle);
    }
}

impl<R: Send + 'static> Drop for ThreadedEngine<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, AtomicOrdering::Release);
        self.shared.work_available.notify_all();
        // Respawn threads may still push handles while we join; drain
        // until the list stays empty.
        loop {
            let handles = std::mem::take(&mut *self.shared.handles.lock());
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_all_tasks() {
        let q = ThreadedWorkQueue::new(3);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            q.submit(JobId::new(0), 1.0, move || c.fetch_add(1, AtomicOrdering::Relaxed));
        }
        let results = q.wait();
        assert_eq!(results.len(), 50);
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 50);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn results_carry_job_ids() {
        let q = ThreadedWorkQueue::new(2);
        q.submit(JobId::new(7), 1.0, || "seven");
        q.submit(JobId::new(8), 1.0, || "eight");
        let mut results = q.wait();
        results.sort_by_key(|&(j, _)| j);
        assert_eq!(results, vec![(JobId::new(7), "seven"), (JobId::new(8), "eight")]);
    }

    #[test]
    fn priority_orders_queued_work() {
        // Single worker; first task blocks briefly so the rest queue up.
        let q = ThreadedWorkQueue::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let o = Arc::clone(&order);
            q.submit(JobId::new(0), 1.0, move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                o.lock().push(0u32);
            });
        }
        // Give the worker a moment to take the blocking task.
        std::thread::sleep(std::time::Duration::from_millis(10));
        for (i, prio) in [(1u32, 1.0), (2, 5.0), (3, 3.0)] {
            let o = Arc::clone(&order);
            q.submit(JobId::new(i), prio, move || o.lock().push(i));
        }
        let _ = q.wait();
        let seen = order.lock().clone();
        assert_eq!(seen, vec![0, 2, 3, 1], "high priority first after the head task");
    }

    #[test]
    fn wait_on_empty_queue_returns_immediately() {
        let q: ThreadedWorkQueue<u32> = ThreadedWorkQueue::new(2);
        assert!(q.wait().is_empty());
    }

    #[test]
    fn reusable_after_wait() {
        let q = ThreadedWorkQueue::new(2);
        q.submit(JobId::new(0), 1.0, || 1);
        assert_eq!(q.wait().len(), 1);
        q.submit(JobId::new(0), 1.0, || 2);
        assert_eq!(q.wait().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: ThreadedWorkQueue<()> = ThreadedWorkQueue::new(0);
    }

    #[test]
    fn panicking_task_does_not_hang_wait() {
        let q = ThreadedWorkQueue::new(2);
        q.submit(JobId::new(0), 1.0, || 1u32);
        q.submit(JobId::new(1), 2.0, || panic!("task exploded"));
        q.submit(JobId::new(0), 1.0, || 2u32);
        let results = q.wait(); // must return despite the panic
        assert_eq!(results.len(), 2, "surviving tasks still deliver results");
        let failures = q.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, JobId::new(1));
        assert!(failures[0].1.contains("task exploded"), "{}", failures[0].1);
        // The worker survived the panic and keeps draining.
        q.submit(JobId::new(2), 1.0, || 3u32);
        assert_eq!(q.wait().len(), 1);
    }

    #[test]
    fn single_worker_survives_repeated_panics() {
        let q = ThreadedWorkQueue::new(1);
        for i in 0..10u32 {
            q.submit(JobId::new(i), 1.0, move || {
                assert!(i % 2 == 0, "odd tasks fail");
                i
            });
        }
        let results = q.wait();
        assert_eq!(results.len(), 5);
        assert_eq!(q.take_failures().len(), 5);
        assert_eq!(q.pending(), 0);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A retry policy with sub-millisecond backoffs so tests run fast.
    fn fast_retry() -> RetryPolicy {
        RetryPolicy { backoff_base: 0.0005, backoff_cap: 0.005, ..RetryPolicy::default() }
    }

    #[test]
    fn executes_all_tasks_without_faults() {
        let engine = ThreadedEngine::new(3);
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 4), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40);
        let stats = engine.fault_stats();
        assert_eq!(stats.attempts, 40);
        assert_eq!(stats.successes, 40);
        assert!(stats.reconciles(), "{stats}");
        let report = engine.report();
        assert_eq!(report.completed.len(), 40);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(11).with_transient_rate(0.25));
        engine.set_retry_policy(fast_retry());
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 2), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40, "no task lost to transient faults");
        let stats = engine.fault_stats();
        assert!(stats.transient_failures > 0, "rate 0.25 must fault: {stats}");
        assert!(stats.reconciles(), "{stats}");
        assert!(engine.failed().is_empty());
    }

    #[test]
    fn panics_count_as_transient_failures_and_retry() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        let flaky_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&flaky_calls);
        engine.submit(JobId::new(0), 1.0, move || {
            // First attempt panics; the retry succeeds.
            assert!(calls.fetch_add(1, AtomicOrdering::SeqCst) > 0, "first attempt dies");
            99u32
        });
        engine.submit(JobId::new(1), 1.0, || 1u32);
        let results = engine.wait();
        assert_eq!(results.len(), 2);
        let stats = engine.fault_stats();
        assert!(stats.panics >= 1, "{stats}");
        assert!(stats.transient_failures >= 1);
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn hopeless_tasks_exhaust_and_are_reported() {
        let engine: ThreadedEngine<u32> = ThreadedEngine::new(2);
        engine.set_retry_policy(RetryPolicy { max_attempts: 2, ..fast_retry() });
        engine.submit(JobId::new(3), 1.0, || panic!("always broken"));
        engine.submit(JobId::new(4), 1.0, || 7u32);
        let results = engine.wait();
        assert_eq!(results.len(), 1, "healthy task still completes");
        let failed = engine.failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].job, JobId::new(3));
        assert_eq!(failed[0].attempts, 2, "retries stay within the cap");
        assert!(failed[0].error.contains("always broken"));
        let stats = engine.fault_stats();
        assert_eq!(stats.exhausted_tasks, 1);
        assert_eq!(stats.panics, 2);
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn worker_crashes_respawn_and_work_survives() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(9).with_crash_rate(0.15).with_restart_delay(0.01));
        engine.set_retry_policy(fast_retry());
        for i in 0..30u32 {
            engine.submit(JobId::new(i % 3), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 30, "crashes never lose tasks");
        let stats = engine.fault_stats();
        assert!(stats.crash_failures > 0, "rate 0.15 must crash: {stats}");
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn timeout_abandons_a_hung_attempt() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        engine.set_task_timeout(Duration::from_millis(40));
        let slow_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&slow_calls);
        engine.submit(JobId::new(0), 1.0, move || {
            if calls.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                // First attempt hangs well past the timeout.
                std::thread::sleep(Duration::from_millis(250));
            }
            5u32
        });
        let results = engine.wait();
        assert_eq!(results.len(), 1, "the retry rescued the task");
        let stats = engine.fault_stats();
        assert!(stats.timeout_aborts >= 1, "{stats}");
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn fast_abort_speculates_past_stragglers() {
        let engine = ThreadedEngine::new(2);
        engine.set_retry_policy(fast_retry());
        engine.set_fast_abort(FastAbort { multiplier: 4.0, min_samples: 4, max_speculations: 2 });
        // Warm the running mean with quick tasks.
        for i in 0..8u32 {
            engine.submit(JobId::new(0), 2.0, move || {
                std::thread::sleep(Duration::from_millis(3));
                i
            });
        }
        let _ = engine.wait();
        // One task straggles on its first attempt only; the speculative
        // duplicate finishes fast and wins.
        let straggler_calls = Arc::new(AtomicU32::new(0));
        let calls = Arc::clone(&straggler_calls);
        engine.submit(JobId::new(1), 1.0, move || {
            if calls.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(400));
            } else {
                std::thread::sleep(Duration::from_millis(3));
            }
            42u32
        });
        let results = engine.wait();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1, 42);
        let stats = engine.fault_stats();
        assert!(
            stats.straggler_aborts >= 1,
            "the losing attempt is discarded and accounted: {stats}"
        );
        assert!(stats.reconciles(), "{stats}");
    }

    #[test]
    fn quarantine_retires_flaky_workers() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(FaultPlan::new(21).with_transient_rate(0.5));
        engine.set_retry_policy(RetryPolicy {
            quarantine_threshold: 3,
            max_attempts: 50,
            ..fast_retry()
        });
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 2), 1.0, move || i);
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40);
        let stats = engine.fault_stats();
        assert!(stats.reconciles(), "{stats}");
        assert!(engine.num_workers() >= 1, "never quarantines the last worker");
        if stats.quarantined_workers > 0 {
            assert!(engine.num_workers() < 3);
        }
    }

    #[test]
    fn fault_decisions_are_deterministic_across_runs() {
        // Without speculation/timeouts, the per-task attempt sequence is
        // a pure function of the plan, so injected-fault counts match
        // exactly across runs despite real thread scheduling.
        let run = || {
            let engine = ThreadedEngine::new(4);
            engine.set_fault_plan(
                FaultPlan::new(33)
                    .with_transient_rate(0.2)
                    .with_crash_rate(0.05)
                    .with_restart_delay(0.005),
            );
            engine.set_retry_policy(fast_retry());
            for i in 0..30u32 {
                engine.submit(JobId::new(i % 3), 1.0, move || i);
            }
            let n = engine.wait().len();
            let s = engine.fault_stats();
            (n, s.attempts, s.transient_failures, s.crash_failures)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault schedule must not depend on thread timing");
        assert_eq!(a.0, 30);
    }

    #[test]
    fn report_reconciles_under_mixed_fault_load() {
        let engine = ThreadedEngine::new(3);
        engine.set_fault_plan(
            FaultPlan::new(55)
                .with_transient_rate(0.15)
                .with_crash_rate(0.05)
                .with_stragglers(0.1, 4.0)
                .with_restart_delay(0.01),
        );
        engine.set_retry_policy(fast_retry());
        engine.set_fast_abort(FastAbort { min_samples: 4, ..FastAbort::default() });
        for i in 0..40u32 {
            engine.submit(JobId::new(i % 4), 1.0, move || {
                std::thread::sleep(Duration::from_millis(2));
                i
            });
        }
        let results = engine.wait();
        assert_eq!(results.len(), 40, "all jobs complete under a mixed fault load");
        let report = engine.report();
        assert_eq!(report.completed.len(), 40);
        assert!(report.faults.reconciles(), "{}", report.faults);
        assert!(report.faults.fault_ratio() > 0.0);
    }
}
