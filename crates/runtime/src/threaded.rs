//! A real master/worker execution backend on OS threads.
//!
//! This is the Work Queue programming model in miniature: a master submits
//! prioritized tasks (closures), an elastic pool of workers pulls and
//! executes them, and the master collects results. The DES backend shares
//! the same scheduling semantics for simulation; this backend proves the
//! design runs real computations (the streaming benchmarks use it to
//! execute actual truth-discovery jobs).

use crate::JobId;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;

type TaskFn<R> = Box<dyn FnOnce() -> R + Send + 'static>;

struct QueuedTask<R> {
    job: JobId,
    priority: f64,
    seq: u64,
    run: TaskFn<R>,
}

impl<R> PartialEq for QueuedTask<R> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<R> Eq for QueuedTask<R> {}
impl<R> PartialOrd for QueuedTask<R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for QueuedTask<R> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first; FIFO (lower seq) within a tier.
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Shared<R> {
    queue: Mutex<BinaryHeap<QueuedTask<R>>>,
    results: Mutex<Vec<(JobId, R)>>,
    work_available: Condvar,
    all_done: Condvar,
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

impl<R> std::fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("pending", &self.pending.load(AtomicOrdering::Relaxed))
            .field("shutdown", &self.shutdown.load(AtomicOrdering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A threaded master/worker queue executing prioritized closures.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, ThreadedWorkQueue};
///
/// let queue = ThreadedWorkQueue::new(2);
/// for i in 0..4u32 {
///     queue.submit(JobId::new(i % 2), 1.0, move || i * 10);
/// }
/// let mut results = queue.wait();
/// results.sort_by_key(|&(_, v)| v);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[3].1, 30);
/// ```
#[derive(Debug)]
pub struct ThreadedWorkQueue<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    workers: Vec<JoinHandle<()>>,
    next_seq: AtomicUsize,
}

impl<R: Send + 'static> ThreadedWorkQueue<R> {
    /// Spawns `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(BinaryHeap::new()),
            results: Mutex::new(Vec::new()),
            work_available: Condvar::new(),
            all_done: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers, next_seq: AtomicUsize::new(0) }
    }

    fn worker_loop(shared: &Shared<R>) {
        loop {
            let task = {
                let mut queue = shared.queue.lock();
                loop {
                    if let Some(t) = queue.pop() {
                        break t;
                    }
                    if shared.shutdown.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    shared.work_available.wait(&mut queue);
                }
            };
            let result = (task.run)();
            shared.results.lock().push((task.job, result));
            if shared.pending.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                shared.all_done.notify_all();
            }
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a closure as a task of `job` with the given priority
    /// (higher runs earlier).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite.
    pub fn submit<F>(&self, job: JobId, priority: f64, f: F)
    where
        F: FnOnce() -> R + Send + 'static,
    {
        assert!(priority.is_finite(), "priority must be finite");
        let seq = self.next_seq.fetch_add(1, AtomicOrdering::Relaxed) as u64;
        self.shared.pending.fetch_add(1, AtomicOrdering::AcqRel);
        self.shared
            .queue
            .lock()
            .push(QueuedTask { job, priority, seq, run: Box::new(f) });
        self.shared.work_available.notify_one();
    }

    /// Number of submitted-but-unfinished tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.pending.load(AtomicOrdering::Acquire)
    }

    /// Blocks until every submitted task finished, draining the collected
    /// `(job, result)` pairs (completion order).
    #[must_use]
    pub fn wait(&self) -> Vec<(JobId, R)> {
        let mut results = self.shared.results.lock();
        while self.shared.pending.load(AtomicOrdering::Acquire) > 0 {
            self.shared.all_done.wait(&mut results);
        }
        std::mem::take(&mut *results)
    }
}

impl<R: Send + 'static> Drop for ThreadedWorkQueue<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, AtomicOrdering::Release);
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_all_tasks() {
        let q = ThreadedWorkQueue::new(3);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            q.submit(JobId::new(0), 1.0, move || {
                c.fetch_add(1, AtomicOrdering::Relaxed)
            });
        }
        let results = q.wait();
        assert_eq!(results.len(), 50);
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 50);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn results_carry_job_ids() {
        let q = ThreadedWorkQueue::new(2);
        q.submit(JobId::new(7), 1.0, || "seven");
        q.submit(JobId::new(8), 1.0, || "eight");
        let mut results = q.wait();
        results.sort_by_key(|&(j, _)| j);
        assert_eq!(results, vec![(JobId::new(7), "seven"), (JobId::new(8), "eight")]);
    }

    #[test]
    fn priority_orders_queued_work() {
        // Single worker; first task blocks briefly so the rest queue up.
        let q = ThreadedWorkQueue::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let o = Arc::clone(&order);
            q.submit(JobId::new(0), 1.0, move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                o.lock().push(0u32);
            });
        }
        // Give the worker a moment to take the blocking task.
        std::thread::sleep(std::time::Duration::from_millis(10));
        for (i, prio) in [(1u32, 1.0), (2, 5.0), (3, 3.0)] {
            let o = Arc::clone(&order);
            q.submit(JobId::new(i), prio, move || o.lock().push(i));
        }
        let _ = q.wait();
        let seen = order.lock().clone();
        assert_eq!(seen, vec![0, 2, 3, 1], "high priority first after the head task");
    }

    #[test]
    fn wait_on_empty_queue_returns_immediately() {
        let q: ThreadedWorkQueue<u32> = ThreadedWorkQueue::new(2);
        assert!(q.wait().is_empty());
    }

    #[test]
    fn reusable_after_wait() {
        let q = ThreadedWorkQueue::new(2);
        q.submit(JobId::new(0), 1.0, || 1);
        assert_eq!(q.wait().len(), 1);
        q.submit(JobId::new(0), 1.0, || 2);
        assert_eq!(q.wait().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: ThreadedWorkQueue<()> = ThreadedWorkQueue::new(0);
    }
}
