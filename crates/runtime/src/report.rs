//! Execution reports: what the evaluation harness measures.

use crate::{FaultStats, JobId, TaskId, WorkerId};
use sstd_stats::P2Quantile;
use std::collections::BTreeMap;

/// The record of one finished task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedTask {
    /// Task identity.
    pub task: TaskId,
    /// Owning TD job.
    pub job: JobId,
    /// Virtual time the task entered the pool.
    pub submitted_at: f64,
    /// Virtual time a worker started it.
    pub started_at: f64,
    /// Virtual time it finished.
    pub finished_at: f64,
    /// The worker that ran it.
    pub worker: WorkerId,
    /// Soft deadline carried by the task, if any.
    pub deadline: Option<f64>,
}

impl CompletedTask {
    /// Queueing delay before execution started.
    #[must_use]
    pub fn queue_delay(&self) -> f64 {
        self.started_at - self.submitted_at
    }

    /// End-to-end latency from submission to completion.
    #[must_use]
    pub fn latency(&self) -> f64 {
        self.finished_at - self.submitted_at
    }

    /// Whether the task met its deadline (tasks without a deadline count
    /// as hits).
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.deadline.is_none_or(|d| self.latency() <= d)
    }
}

/// Aggregate result of an execution run.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.submit(TaskSpec::new(JobId::new(0), 100.0).with_deadline(10.0));
/// let report = des.run_to_completion();
/// assert_eq!(report.completed.len(), 1);
/// assert!(report.deadline_hit_rate() > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionReport {
    /// Every finished task.
    pub completed: Vec<CompletedTask>,
    /// Virtual time at which the last task finished.
    pub makespan: f64,
    /// Failed-attempt accounting for the run; all-zero when no faults
    /// were injected or observed. Always satisfies
    /// [`FaultStats::reconciles`].
    pub faults: FaultStats,
}

impl ExecutionReport {
    /// Per-job completion time: when each job's last task finished.
    #[must_use]
    pub fn job_completion_times(&self) -> BTreeMap<JobId, f64> {
        let mut out = BTreeMap::new();
        for c in &self.completed {
            let e = out.entry(c.job).or_insert(0.0f64);
            *e = e.max(c.finished_at);
        }
        out
    }

    /// Fraction of deadline-carrying tasks that met their deadline;
    /// 1.0 when no task carries a deadline.
    #[must_use]
    pub fn deadline_hit_rate(&self) -> f64 {
        let with_deadline: Vec<&CompletedTask> =
            self.completed.iter().filter(|c| c.deadline.is_some()).collect();
        if with_deadline.is_empty() {
            return 1.0;
        }
        with_deadline.iter().filter(|c| c.met_deadline()).count() as f64
            / with_deadline.len() as f64
    }

    /// Mean end-to-end task latency (0 for an empty report).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(CompletedTask::latency).sum::<f64>() / self.completed.len() as f64
    }

    /// Streaming estimate of the `p`-quantile of task latency (`None`
    /// for an empty report).
    ///
    /// # Panics
    ///
    /// Panics unless `p` is strictly inside `(0, 1)`.
    #[must_use]
    pub fn latency_quantile(&self, p: f64) -> Option<f64> {
        let mut q = P2Quantile::new(p).expect("quantile must be in (0, 1)");
        for c in &self.completed {
            q.push(c.latency());
        }
        q.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(
        job: u32,
        submitted: f64,
        started: f64,
        finished: f64,
        dl: Option<f64>,
    ) -> CompletedTask {
        CompletedTask {
            task: TaskId::new(0),
            job: JobId::new(job),
            submitted_at: submitted,
            started_at: started,
            finished_at: finished,
            worker: WorkerId::new(0),
            deadline: dl,
        }
    }

    #[test]
    fn latency_and_queue_delay() {
        let t = task(0, 1.0, 2.0, 5.0, None);
        assert_eq!(t.queue_delay(), 1.0);
        assert_eq!(t.latency(), 4.0);
        assert!(t.met_deadline(), "no deadline counts as hit");
    }

    #[test]
    fn deadline_hit_rate_counts_only_deadline_tasks() {
        let report = ExecutionReport {
            completed: vec![
                task(0, 0.0, 0.0, 1.0, Some(2.0)), // hit
                task(0, 0.0, 0.0, 5.0, Some(2.0)), // miss
                task(1, 0.0, 0.0, 99.0, None),     // ignored
            ],
            makespan: 99.0,
            faults: FaultStats::default(),
        };
        assert!((report.deadline_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn job_completion_is_max_finish() {
        let report = ExecutionReport {
            completed: vec![
                task(0, 0.0, 0.0, 3.0, None),
                task(0, 0.0, 0.0, 7.0, None),
                task(1, 0.0, 0.0, 2.0, None),
            ],
            makespan: 7.0,
            faults: FaultStats::default(),
        };
        let jc = report.job_completion_times();
        assert_eq!(jc[&JobId::new(0)], 7.0);
        assert_eq!(jc[&JobId::new(1)], 2.0);
    }

    #[test]
    fn empty_report_defaults() {
        let r = ExecutionReport::default();
        assert_eq!(r.deadline_hit_rate(), 1.0);
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.latency_quantile(0.9), None);
    }

    #[test]
    fn latency_quantile_orders_sensibly() {
        let completed: Vec<CompletedTask> =
            (0..100).map(|i| task(0, 0.0, 0.0, 1.0 + f64::from(i), None)).collect();
        let report = ExecutionReport { completed, makespan: 100.0, faults: FaultStats::default() };
        let p50 = report.latency_quantile(0.5).unwrap();
        let p95 = report.latency_quantile(0.95).unwrap();
        assert!(p50 < p95);
        assert!((p50 - 50.0).abs() < 5.0, "p50 = {p50}");
        assert!(p95 > 90.0, "p95 = {p95}");
    }
}
