//! Resource vectors: the per-node constraint set `RC_k` of paper §II.

use std::fmt;

/// Capacities or requirements along the resource dimensions the paper
/// names (cores, memory, disk).
///
/// # Examples
///
/// ```
/// use sstd_runtime::ResourceVector;
///
/// let node = ResourceVector::new(4, 8_192, 100_000);
/// let task = ResourceVector::new(1, 2_048, 500);
/// assert!(task.fits_in(&node));
/// assert!(!node.fits_in(&task));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceVector {
    cores: u32,
    memory_mb: u64,
    disk_mb: u64,
}

impl ResourceVector {
    /// Creates a resource vector.
    #[must_use]
    pub const fn new(cores: u32, memory_mb: u64, disk_mb: u64) -> Self {
        Self { cores, memory_mb, disk_mb }
    }

    /// A typical single-task requirement: 1 core, 512 MB, 100 MB disk.
    #[must_use]
    pub const fn task_default() -> Self {
        Self::new(1, 512, 100)
    }

    /// CPU cores.
    #[must_use]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Memory in megabytes.
    #[must_use]
    pub const fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Disk in megabytes.
    #[must_use]
    pub const fn disk_mb(&self) -> u64 {
        self.disk_mb
    }

    /// Whether this requirement fits inside `capacity` on every dimension
    /// — the per-node constraint check `RC_k` of the problem formulation.
    #[must_use]
    pub const fn fits_in(&self, capacity: &ResourceVector) -> bool {
        self.cores <= capacity.cores
            && self.memory_mb <= capacity.memory_mb
            && self.disk_mb <= capacity.disk_mb
    }

    /// Component-wise subtraction, saturating at zero — the remaining
    /// capacity after placing a task.
    #[must_use]
    pub const fn saturating_sub(&self, used: &ResourceVector) -> Self {
        Self {
            cores: self.cores.saturating_sub(used.cores),
            memory_mb: self.memory_mb.saturating_sub(used.memory_mb),
            disk_mb: self.disk_mb.saturating_sub(used.disk_mb),
        }
    }

    /// Component-wise addition — releasing a task's resources.
    #[must_use]
    pub const fn add(&self, other: &ResourceVector) -> Self {
        Self {
            cores: self.cores + other.cores,
            memory_mb: self.memory_mb + other.memory_mb,
            disk_mb: self.disk_mb + other.disk_mb,
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}MB/{}MBdisk", self.cores, self.memory_mb, self.disk_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_every_dimension() {
        let cap = ResourceVector::new(2, 1024, 1000);
        assert!(ResourceVector::new(2, 1024, 1000).fits_in(&cap));
        assert!(!ResourceVector::new(3, 1, 1).fits_in(&cap));
        assert!(!ResourceVector::new(1, 2048, 1).fits_in(&cap));
        assert!(!ResourceVector::new(1, 1, 2000).fits_in(&cap));
    }

    #[test]
    fn subtract_and_release_roundtrip() {
        let cap = ResourceVector::new(4, 8192, 1000);
        let task = ResourceVector::task_default();
        let rem = cap.saturating_sub(&task);
        assert_eq!(rem.cores(), 3);
        assert_eq!(rem.add(&task), cap);
    }

    #[test]
    fn saturating_subtraction_never_underflows() {
        let small = ResourceVector::new(1, 10, 10);
        let big = ResourceVector::new(5, 100, 100);
        let r = small.saturating_sub(&big);
        assert_eq!(r, ResourceVector::new(0, 0, 0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ResourceVector::new(1, 2, 3).to_string(), "1c/2MB/3MBdisk");
    }
}
