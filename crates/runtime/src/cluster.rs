//! Cluster model: a heterogeneous pool of HTCondor-style nodes.

use crate::ResourceVector;

/// One machine in the pool.
///
/// `speed` scales task execution times (1.0 = reference machine; 2.0 runs
/// tasks twice as fast) — the heterogeneity the paper's §I calls out as
/// ignored by Hadoop-style schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    speed: f64,
    capacity: ResourceVector,
}

impl NodeSpec {
    /// Creates a node with a speed factor and resource capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `speed` is finite and positive.
    #[must_use]
    pub fn new(speed: f64, capacity: ResourceVector) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        Self { speed, capacity }
    }

    /// Relative execution speed (1.0 = reference).
    #[must_use]
    pub const fn speed(&self) -> f64 {
        self.speed
    }

    /// Resource capacity of the node.
    #[must_use]
    pub const fn capacity(&self) -> &ResourceVector {
        &self.capacity
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::new(1.0, ResourceVector::new(4, 8_192, 100_000))
    }
}

/// A pool of nodes workers can be placed on.
///
/// # Examples
///
/// ```
/// use sstd_runtime::Cluster;
///
/// let c = Cluster::notre_dame_like(16);
/// assert_eq!(c.len(), 16);
/// assert!(c.total_cores() >= 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
}

impl Cluster {
    /// Builds a cluster from explicit node specs.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        Self { nodes }
    }

    /// `n` identical nodes with the given speed and default capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `speed` is not positive.
    #[must_use]
    pub fn homogeneous(n: usize, speed: f64) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Self::new(vec![NodeSpec::new(speed, *NodeSpec::default().capacity()); n])
    }

    /// A heterogeneous pool shaped like the Notre Dame HTCondor cluster
    /// the paper used: a mix of fast servers, mid-range desktops and slow
    /// classroom machines in a 1:2:1 ratio, deterministic for a given `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn notre_dame_like(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let nodes = (0..n)
            .map(|i| match i % 4 {
                0 => NodeSpec::new(2.0, ResourceVector::new(16, 65_536, 500_000)), // server
                1 | 2 => NodeSpec::new(1.0, ResourceVector::new(4, 8_192, 100_000)), // desktop
                _ => NodeSpec::new(0.5, ResourceVector::new(2, 4_096, 50_000)),    // classroom
            })
            .collect();
        Self::new(nodes)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true for a constructed
    /// cluster; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node specs.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Total cores across the pool.
    #[must_use]
    pub fn total_cores(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.capacity().cores())).sum()
    }

    /// Node speeds for the first `k` worker placements, assigning workers
    /// round-robin over nodes (how Work Queue workers land on HTCondor
    /// slots).
    #[must_use]
    pub fn worker_speeds(&self, k: usize) -> Vec<f64> {
        (0..k).map(|i| self.nodes[i % self.nodes.len()].speed()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(3, 1.5);
        assert_eq!(c.len(), 3);
        assert!(c.nodes().iter().all(|n| n.speed() == 1.5));
    }

    #[test]
    fn heterogeneous_mix() {
        let c = Cluster::notre_dame_like(8);
        let speeds: Vec<f64> = c.nodes().iter().map(NodeSpec::speed).collect();
        assert!(speeds.contains(&2.0));
        assert!(speeds.contains(&1.0));
        assert!(speeds.contains(&0.5));
    }

    #[test]
    fn worker_speeds_wrap_round_robin() {
        let c = Cluster::homogeneous(2, 1.0);
        assert_eq!(c.worker_speeds(5).len(), 5);
    }

    #[test]
    fn deterministic_for_same_n() {
        assert_eq!(Cluster::notre_dame_like(6), Cluster::notre_dame_like(6));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        let _ = Cluster::homogeneous(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn bad_speed_panics() {
        let _ = NodeSpec::new(0.0, ResourceVector::task_default());
    }
}
