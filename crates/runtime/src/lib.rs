//! A Work Queue / HTCondor–style distributed execution substrate
//! (paper §IV).
//!
//! The SSTD system runs truth-discovery (TD) jobs as bags of tasks on an
//! elastic worker pool scheduled over a heterogeneous cluster. This crate
//! reproduces that machinery:
//!
//! - [`NodeSpec`] / [`Cluster`] — the HTCondor pool model: machines with
//!   per-node resource capacities and speed factors;
//! - [`TaskSpec`] / [`JobId`] — TD jobs split into tasks with data sizes,
//!   resource requirements and job priorities (the paper's
//!   `P_u = T_u / ΣT` Local Control Knob);
//! - [`TaskPool`] — deterministic stride scheduling proportional to job
//!   priority ("each task has the same probability of being processed by
//!   the worker", weighted by job priority);
//! - [`ExecutionModel`] — the execution-time and WCET model of paper
//!   Eq. 10–12 (`ET = TI + D·θ₁`, `WCET ≈ D·θ₂ / (WK·P_u)`);
//! - [`DesEngine`] — a discrete-event simulation backend with a virtual
//!   clock. The paper evaluates on a 1,900-machine HTCondor pool; the DES
//!   reproduces its queueing/scheduling dynamics deterministically on one
//!   machine (see DESIGN.md §3 for the substitution argument);
//! - [`ThreadedWorkQueue`] / [`ThreadedEngine`] — real master/worker
//!   backends on OS threads, proving the same scheduler executes real
//!   closures (the engine adds retries, timeouts and speculation);
//! - [`FaultPlan`] / [`RetryPolicy`] / [`FastAbort`] — a unified fault
//!   model shared by both backends: seeded deterministic injection of
//!   transient failures, worker crashes and stragglers, retry with
//!   exponential backoff, quarantine, and fast-abort straggler
//!   mitigation, with [`FaultStats`] accounting that always reconciles
//!   (see DESIGN.md "Fault model & recovery");
//! - [`AttemptLedger`] — the backend-agnostic per-task attempt state
//!   machine both backends delegate their retry/quarantine/fast-abort
//!   decisions to, so the policy exists exactly once;
//! - [`ExecutionBackend`] / [`JobBackend`] — the unified substrate trait
//!   every layer above the runtime programs against, with [`SimBackend`]
//!   adapting the DES to carry real task payloads.
//!
//! # Examples
//!
//! Simulate four workers executing two jobs with different priorities:
//!
//! ```
//! use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};
//!
//! let cluster = Cluster::homogeneous(4, 1.0);
//! let mut des = DesEngine::new(cluster, ExecutionModel::default(), 4);
//! for i in 0..8 {
//!     des.submit(TaskSpec::new(JobId::new(i % 2), 100.0));
//! }
//! des.set_job_priority(JobId::new(0), 3.0);
//! let report = des.run_to_completion();
//! assert_eq!(report.completed.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod backend;
mod cluster;
mod des;
mod fault;
mod ids;
mod pool;
mod report;
mod resources;
mod sched;
mod task;
pub mod telemetry;
mod threaded;
mod wcet;

pub use backend::{ExecutionBackend, JobBackend, SimBackend, TaskPayload};
pub use cluster::{Cluster, NodeSpec};
pub use des::{DesEngine, DesEvent};
pub use fault::{
    FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, IngestFault, RetryPolicy,
};
pub use ids::{JobId, TaskId, WorkerId};
pub use pool::TaskPool;
pub use report::{CompletedTask, ExecutionReport};
pub use resources::ResourceVector;
pub use sched::{AttemptLedger, AttemptLoss, LossVerdict};
pub use task::TaskSpec;
pub use telemetry::{LossCause, NoopRecorder, Recorder, SharedRecorder, TaskPhase, TimelineEvent};
pub use threaded::{ThreadedEngine, ThreadedWorkQueue};
pub use wcet::ExecutionModel;

/// The one-import surface for programming against the execution substrate:
/// the backend traits, both engines, the id/spec vocabulary, the unified
/// fault model, and the timeline-telemetry types.
///
/// # Examples
///
/// ```
/// use sstd_runtime::prelude::*;
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.set_recorder(Some(std::sync::Arc::new(NoopRecorder)));
/// des.submit(TaskSpec::new(JobId::new(0), 100.0));
/// assert_eq!(des.run_to_completion().completed.len(), 1);
/// ```
pub mod prelude {
    pub use crate::backend::{ExecutionBackend, JobBackend, SimBackend, TaskPayload};
    pub use crate::cluster::{Cluster, NodeSpec};
    pub use crate::des::DesEngine;
    pub use crate::fault::{
        FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, IngestFault, RetryPolicy,
    };
    pub use crate::ids::{JobId, TaskId, WorkerId};
    pub use crate::report::{CompletedTask, ExecutionReport};
    pub use crate::resources::ResourceVector;
    pub use crate::task::TaskSpec;
    pub use crate::telemetry::{
        LossCause, NoopRecorder, Recorder, SharedRecorder, TaskPhase, TimelineEvent,
    };
    pub use crate::threaded::{ThreadedEngine, ThreadedWorkQueue};
    pub use crate::wcet::ExecutionModel;
}
