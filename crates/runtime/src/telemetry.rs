//! Span-style task-timeline telemetry shared by both execution backends.
//!
//! The paper evaluates SSTD by *measuring* it — task turnaround on the
//! Work Queue pool, retry churn under faults, control actuation per tick —
//! so the runtime exposes a [`Recorder`] hook: a sink that both the DES
//! and the threaded engine feed with one [`TimelineEvent`] per lifecycle
//! step of every task attempt (queued → dispatched → failed/evicted →
//! exhausted/completed). Because fault decisions are pure functions of
//! `(seed, task, attempt)`, a DES run and a threaded run of the same
//! seeded [`FaultPlan`](crate::FaultPlan) emit *structurally identical*
//! per-task event sequences — the property `sstd-obs` exploits to diff
//! the two substrates.
//!
//! Recording is strictly opt-in: backends hold `Option<SharedRecorder>`
//! defaulting to `None`, so the disabled path costs one branch per event
//! site (verified by the `obs_overhead` bench guard). [`NoopRecorder`]
//! exists to measure exactly that hook overhead with the branch taken.

use crate::{JobId, TaskId, WorkerId};
use std::sync::Arc;

/// Why a task attempt was lost, unified across backends.
///
/// This is deliberately finer-grained than
/// [`FaultKind`](crate::FaultKind): it separates evictions and timeouts
/// (supervision losses) from plan-injected faults, so exported timelines
/// distinguish "the plan killed it" from "the master gave up on it".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LossCause {
    /// A transient failure: an injected fault or a caught panic.
    Transient,
    /// The worker crashed underneath the attempt (fault plan).
    Crash,
    /// A straggler: fast-aborted in the DES, or a speculative duplicate
    /// that lost the completion race in the threaded engine.
    Straggler,
    /// The worker was evicted (HTCondor preemption) mid-attempt.
    Evicted,
    /// The attempt exceeded the per-attempt wall-clock timeout.
    Timeout,
}

impl LossCause {
    /// A short stable label for exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Transient => "transient",
            Self::Crash => "crash",
            Self::Straggler => "straggler",
            Self::Evicted => "evicted",
            Self::Timeout => "timeout",
        }
    }
}

/// One step in a task's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskPhase {
    /// The task entered the queue (emitted once, at submission).
    Queued,
    /// An attempt started executing on a worker.
    Dispatched,
    /// An attempt was lost; the task may still retry.
    Failed(LossCause),
    /// The task exhausted its retry budget and was dropped.
    Exhausted,
    /// The task completed.
    Completed,
}

impl TaskPhase {
    /// A short stable label for exporters (`"queued"`, `"dispatched"`,
    /// `"failed:transient"`, …).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Dispatched => "dispatched",
            Self::Failed(LossCause::Transient) => "failed:transient",
            Self::Failed(LossCause::Crash) => "failed:crash",
            Self::Failed(LossCause::Straggler) => "failed:straggler",
            Self::Failed(LossCause::Evicted) => "failed:evicted",
            Self::Failed(LossCause::Timeout) => "failed:timeout",
            Self::Exhausted => "exhausted",
            Self::Completed => "completed",
        }
    }

    /// Whether this phase resolves the task for good: no further events
    /// for the task follow a terminal phase.
    #[must_use]
    pub const fn is_terminal(self) -> bool {
        matches!(self, Self::Completed | Self::Exhausted)
    }

    /// Whether this phase is a lost attempt (any [`LossCause`]).
    #[must_use]
    pub const fn is_failure(self) -> bool {
        matches!(self, Self::Failed(_))
    }
}

/// One timeline event: a task attempt crossing a lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// The task.
    pub task: TaskId,
    /// Its owning job.
    pub job: JobId,
    /// Zero-based attempt number (0 for [`TaskPhase::Queued`]; total
    /// attempts consumed for [`TaskPhase::Exhausted`]).
    pub attempt: u32,
    /// The worker involved, when one is (dispatch, failure, completion).
    pub worker: Option<WorkerId>,
    /// Backend-native timestamp: virtual seconds in the DES, engine
    /// seconds (scaled wall clock) in the threaded engine.
    pub at: f64,
    /// What happened.
    pub phase: TaskPhase,
}

/// A sink for [`TimelineEvent`]s.
///
/// Implementations must be cheap and non-blocking where possible: the
/// threaded engine records from worker threads while holding its state
/// lock. `sstd-obs` provides the standard sinks — the unified
/// `EventStore` trace log implements this trait directly, and its
/// `TimelineRecorder` adapter wraps one; [`NoopRecorder`] is the
/// do-nothing baseline.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Accepts one event. Called in backend event order.
    fn record(&self, event: &TimelineEvent);
}

/// A [`Recorder`] that drops every event — the baseline for measuring
/// the hook's own overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &TimelineEvent) {}
}

/// A shareable recorder handle, as installed via
/// [`ExecutionBackend::set_recorder`](crate::ExecutionBackend::set_recorder).
pub type SharedRecorder = Arc<dyn Recorder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let phases = [
            TaskPhase::Queued,
            TaskPhase::Dispatched,
            TaskPhase::Failed(LossCause::Transient),
            TaskPhase::Failed(LossCause::Crash),
            TaskPhase::Failed(LossCause::Straggler),
            TaskPhase::Failed(LossCause::Evicted),
            TaskPhase::Failed(LossCause::Timeout),
            TaskPhase::Exhausted,
            TaskPhase::Completed,
        ];
        let labels: std::collections::BTreeSet<&str> = phases.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), phases.len(), "labels must be unique");
        assert!(labels.contains("failed:evicted"));
    }

    #[test]
    fn terminal_and_failure_predicates_partition_the_phases() {
        assert!(TaskPhase::Completed.is_terminal());
        assert!(TaskPhase::Exhausted.is_terminal());
        assert!(!TaskPhase::Dispatched.is_terminal());
        assert!(TaskPhase::Failed(LossCause::Crash).is_failure());
        assert!(!TaskPhase::Failed(LossCause::Crash).is_terminal());
        assert!(!TaskPhase::Completed.is_failure());
    }

    #[test]
    fn noop_recorder_is_object_safe() {
        let rec: SharedRecorder = Arc::new(NoopRecorder);
        rec.record(&TimelineEvent {
            task: TaskId::new(0),
            job: JobId::new(0),
            attempt: 0,
            worker: None,
            at: 0.0,
            phase: TaskPhase::Queued,
        });
    }
}
