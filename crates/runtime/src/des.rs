//! Discrete-event simulation backend.
//!
//! The paper's cluster experiments ran on the Notre Dame HTCondor pool.
//! `DesEngine` reproduces the scheduling dynamics — queueing, priority
//! shares, heterogeneous worker speeds, init overhead, elastic worker
//! pools — under a virtual clock, so the cluster-scale figures (execution
//! time vs. data size, deadline hit rates, speedup curves) regenerate
//! deterministically on a single machine.
//!
//! Fault tolerance: the engine consumes the unified fault model of
//! [`crate::fault`]. A seeded [`FaultPlan`] injects transient task
//! failures, worker crashes (with respawn) and straggler slowdowns;
//! a [`RetryPolicy`] re-queues faulted attempts with exponential backoff
//! and caps; [`FastAbort`] re-queues attempts running beyond a multiple
//! of the online mean task time. All decisions are pure functions of the
//! seed, so fault runs replay byte-for-byte.

use crate::telemetry::{LossCause, SharedRecorder, TaskPhase, TimelineEvent};
use crate::{
    AttemptLedger, AttemptLoss, Cluster, CompletedTask, ExecutionBackend, ExecutionModel,
    ExecutionReport, FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, JobId, LossVerdict,
    RetryPolicy, TaskId, TaskPool, TaskSpec, WorkerId,
};
use std::collections::BTreeMap;

/// One entry of the simulator's lifecycle log — the observability stream
/// a real Work Queue master writes to its transaction log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesEvent {
    /// A task began executing on a worker.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// The executing worker.
        worker: WorkerId,
        /// Virtual start time.
        at: f64,
        /// Zero-based attempt number of this execution.
        attempt: u32,
    },
    /// A task finished.
    TaskCompleted {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// The executing worker.
        worker: WorkerId,
        /// Virtual completion time.
        at: f64,
    },
    /// A task attempt faulted (transient failure, worker loss, or a
    /// straggler fast-abort) and was re-queued or dropped.
    TaskFailed {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// The worker the attempt ran on.
        worker: WorkerId,
        /// What went wrong.
        kind: FaultKind,
        /// Zero-based attempt number that faulted.
        attempt: u32,
        /// Virtual fault time.
        at: f64,
    },
    /// A task exhausted its retry budget and was dropped.
    TaskExhausted {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// Attempts consumed before giving up.
        attempts: u32,
        /// Virtual time of the terminal failure.
        at: f64,
    },
    /// A worker was evicted (HTCondor preemption). The pool shrinks; the
    /// interrupted task, if any, is re-queued under its original id.
    WorkerEvicted {
        /// The evicted worker.
        worker: WorkerId,
        /// Virtual eviction time.
        at: f64,
        /// The task it was running, if any (re-queued under the same id).
        interrupted: Option<TaskId>,
    },
    /// A worker crashed under the fault plan; it respawns after the
    /// plan's restart delay.
    WorkerCrashed {
        /// The crashed worker.
        worker: WorkerId,
        /// Virtual crash time.
        at: f64,
        /// The task it was running (re-queued under the same id).
        interrupted: Option<TaskId>,
    },
    /// A crashed worker's replacement joined the pool.
    WorkerRespawned {
        /// The new worker.
        worker: WorkerId,
        /// Virtual join time.
        at: f64,
    },
    /// A worker was quarantined (blacklisted) after repeated faults.
    WorkerQuarantined {
        /// The quarantined worker.
        worker: WorkerId,
        /// Virtual quarantine time.
        at: f64,
    },
}

#[derive(Debug, Clone)]
struct Running {
    task: TaskId,
    spec: TaskSpec,
    submitted_at: f64,
    started_at: f64,
    finishes_at: f64,
    /// Zero-based attempt number of this execution.
    attempt: u32,
    /// When the attempt's injected transient fault manifests, if any.
    fails_at: Option<f64>,
    /// Whether the injected fault takes the worker down with it.
    crashes_worker: bool,
    /// When fast-abort kills this attempt, if armed.
    abort_at: Option<f64>,
}

#[derive(Debug, Clone)]
struct Worker {
    id: WorkerId,
    speed: f64,
    running: Option<Running>,
    /// A draining worker finishes its current task and accepts no more
    /// (how the Global Control Knob shrinks the pool).
    draining: bool,
}

/// The next simulation event, ordered deterministically: at equal times,
/// backoff releases fire before respawns, respawns before evictions, and
/// worker events (fault < abort < completion, then by worker index) last.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    Release,
    Respawn,
    Evict,
    Fail(usize),
    Abort(usize),
    Complete(usize),
}

/// Event-driven simulator of a Work Queue master over a cluster.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
/// des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
/// let report = des.run_to_completion();
/// // Two equal tasks on two workers finish together.
/// assert!((report.makespan - report.completed[0].finished_at).abs() < 1e-9);
/// ```
///
/// Injecting a deterministic fault schedule:
///
/// ```
/// use sstd_runtime::{Cluster, DesEngine, ExecutionModel, FaultPlan, JobId, TaskSpec};
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.set_fault_plan(FaultPlan::new(42).with_transient_rate(0.2));
/// for _ in 0..20 {
///     des.submit(TaskSpec::new(JobId::new(0), 100.0));
/// }
/// let report = des.run_to_completion();
/// assert_eq!(report.completed.len(), 20, "faults are retried, not lost");
/// assert!(report.faults.reconciles());
/// ```
#[derive(Debug)]
pub struct DesEngine {
    cluster: Cluster,
    model: ExecutionModel,
    pool: TaskPool,
    workers: Vec<Worker>,
    next_worker: u32,
    clock: f64,
    submit_times: BTreeMap<TaskId, f64>,
    completed: Vec<CompletedTask>,
    /// Scheduled worker evictions (HTCondor preemption), sorted by time.
    evictions: Vec<f64>,
    /// Scheduled worker respawns after fault-plan crashes, sorted by time.
    respawns: Vec<f64>,
    /// Faulted tasks waiting out their retry backoff:
    /// `(release_at, task, spec, original_submit_time)`, sorted.
    delayed: Vec<(f64, TaskId, TaskSpec, f64)>,
    /// Lifecycle log.
    events: Vec<DesEvent>,
    /// The shared retry/quarantine/fast-abort state machine
    /// ([`AttemptLedger`]); this backend only supplies the virtual clock
    /// and the event mechanics.
    ledger: AttemptLedger,
    /// Optional timeline sink; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
}

impl DesEngine {
    /// Creates a simulator with `num_workers` workers placed round-robin
    /// on `cluster`'s nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(cluster: Cluster, model: ExecutionModel, num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let mut engine = Self {
            cluster,
            model,
            pool: TaskPool::new(),
            workers: Vec::new(),
            next_worker: 0,
            clock: 0.0,
            submit_times: BTreeMap::new(),
            completed: Vec::new(),
            evictions: Vec::new(),
            respawns: Vec::new(),
            delayed: Vec::new(),
            events: Vec::new(),
            ledger: AttemptLedger::new(),
            recorder: None,
        };
        engine.grow_workers(num_workers);
        engine
    }

    fn grow_workers(&mut self, n: usize) {
        let speeds = self.cluster.worker_speeds(self.workers.len() + n);
        for _ in 0..n {
            let idx = self.next_worker as usize;
            self.workers.push(Worker {
                id: WorkerId::new(self.next_worker),
                speed: speeds[idx % speeds.len()],
                running: None,
                draining: false,
            });
            self.next_worker += 1;
        }
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.ledger.set_plan(plan);
    }

    /// Installs (or removes) a timeline recorder; see
    /// [`ExecutionBackend::set_recorder`].
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// The simulated cluster.
    #[must_use]
    pub const fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Emits one timeline event when a recorder is installed.
    fn record(
        &self,
        task: TaskId,
        job: JobId,
        attempt: u32,
        worker: Option<WorkerId>,
        at: f64,
        phase: TaskPhase,
    ) {
        if let Some(rec) = &self.recorder {
            rec.record(&TimelineEvent { task, job, attempt, worker, at, phase });
        }
    }

    /// Sets the retry/backoff/quarantine policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`RetryPolicy::validate`]).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.ledger.set_retry(retry);
    }

    /// Enables straggler fast-abort.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FastAbort::validate`]).
    pub fn set_fast_abort(&mut self, fast_abort: FastAbort) {
        self.ledger.set_fast_abort(fast_abort);
    }

    /// Current virtual time.
    #[must_use]
    pub const fn now(&self) -> f64 {
        self.clock
    }

    /// Number of workers currently accepting tasks.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.draining).count()
    }

    /// Pending (not yet started) tasks, including those waiting out a
    /// retry backoff.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pool.len() + self.delayed.len()
    }

    /// Tasks currently executing.
    #[must_use]
    pub fn running(&self) -> usize {
        self.workers.iter().filter(|w| w.running.is_some()).count()
    }

    /// Pending tasks of one job (queued or backing off) — the progress
    /// signal the PID controller samples.
    #[must_use]
    pub fn pending_of(&self, job: JobId) -> usize {
        self.pool.pending_of(job)
            + self.delayed.iter().filter(|(_, _, spec, _)| spec.job() == job).count()
    }

    /// Tasks completed so far.
    #[must_use]
    pub fn completed(&self) -> &[CompletedTask] {
        &self.completed
    }

    /// Tasks re-queued after losing an attempt to an eviction, crash,
    /// transient fault or fast-abort.
    #[must_use]
    pub const fn retries(&self) -> u64 {
        self.ledger.retries()
    }

    /// Failed-attempt accounting for this run.
    #[must_use]
    pub const fn fault_stats(&self) -> FaultStats {
        self.ledger.stats()
    }

    /// Tasks dropped after exhausting their retry budget.
    #[must_use]
    pub fn failed(&self) -> Vec<FailedTask> {
        self.ledger.failed().to_vec()
    }

    /// The lifecycle event log, in event order.
    #[must_use]
    pub fn events(&self) -> &[DesEvent] {
        &self.events
    }

    /// Schedules a worker eviction at virtual time `t` — the HTCondor
    /// failure mode: the pool reclaims a machine, the worker vanishes,
    /// and its in-flight task (if any) is lost and must be re-queued.
    /// Evictions target the busiest worker at the eviction instant; with
    /// all workers idle, an idle worker leaves instead. Evictions
    /// scheduled in the past fire immediately on the next event step.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is finite and non-negative.
    pub fn schedule_eviction(&mut self, t: f64) {
        assert!(t.is_finite() && t >= 0.0, "eviction time must be non-negative");
        self.evictions.push(t);
        self.evictions.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    }

    /// Fires one eviction: kill a worker (preferring a busy one),
    /// re-queue its task, and replace nothing — the pool shrinks, exactly
    /// like a Condor machine leaving.
    fn fire_eviction(&mut self, t: f64) {
        self.clock = self.clock.max(t);
        // Prefer the busy worker whose task started earliest (most sunk
        // work lost — the adversarial case); fall back to any worker.
        let victim = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.running.is_some())
            .min_by(|(_, a), (_, b)| {
                let sa = a.running.as_ref().expect("filtered busy").started_at;
                let sb = b.running.as_ref().expect("filtered busy").started_at;
                sa.partial_cmp(&sb).expect("finite times")
            })
            .map(|(i, _)| i)
            .or_else(|| (!self.workers.is_empty()).then_some(0));
        let Some(widx) = victim else { return };
        let mut interrupted = None;
        if let Some(run) = self.workers[widx].running.take() {
            // Re-queue the interrupted task under its original id,
            // preserving its submission time so latency accounting stays
            // honest, and without touching the job's stride pass.
            interrupted = Some(run.task);
            self.record(
                run.task,
                run.spec.job(),
                run.attempt,
                Some(self.workers[widx].id),
                t,
                TaskPhase::Failed(LossCause::Evicted),
            );
            self.ledger.account_loss(AttemptLoss::Crash, t - run.started_at);
            match self.ledger.settle_loss(run.task, run.spec.job(), AttemptLoss::Crash, "evicted") {
                LossVerdict::Retry { .. } => {
                    self.pool.requeue(run.task, run.spec);
                    self.submit_times.insert(run.task, run.submitted_at);
                }
                LossVerdict::Exhausted => self.exhaust(&run, t),
            }
        }
        self.events.push(DesEvent::WorkerEvicted {
            worker: self.workers[widx].id,
            at: t,
            interrupted,
        });
        self.workers.remove(widx);
        self.assign_idle_workers();
    }

    /// Submits a task at the current virtual time.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let job = spec.job();
        let id = self.pool.submit(spec);
        self.submit_times.insert(id, self.clock);
        self.record(id, job, 0, None, self.clock, TaskPhase::Queued);
        self.assign_idle_workers();
        id
    }

    /// Sets a job's priority (Local Control Knob).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite and positive.
    pub fn set_job_priority(&mut self, job: JobId, priority: f64) {
        self.pool.set_priority(job, priority);
    }

    /// Elastically resizes the worker pool (Global Control Knob). Growing
    /// adds workers immediately; shrinking drains the newest workers after
    /// their current task.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_num_workers(&mut self, n: usize) {
        assert!(n > 0, "need at least one worker");
        let active = self.num_workers();
        if n > active {
            // Reactivate draining workers first, then add new ones.
            let mut needed = n - active;
            for w in self.workers.iter_mut().rev() {
                if needed == 0 {
                    break;
                }
                if w.draining {
                    w.draining = false;
                    needed -= 1;
                }
            }
            if needed > 0 {
                self.grow_workers(needed);
            }
            self.assign_idle_workers();
        } else if n < active {
            let mut to_drain = active - n;
            for w in self.workers.iter_mut().rev() {
                if to_drain == 0 {
                    break;
                }
                if !w.draining {
                    w.draining = true;
                    to_drain -= 1;
                }
            }
            // Fully idle draining workers can be dropped right away.
            self.workers.retain(|w| !(w.draining && w.running.is_none()));
        }
    }

    /// Assigns pool tasks to idle, non-draining workers. Tasks whose
    /// resource requirements fit no node stay queued.
    fn assign_idle_workers(&mut self) {
        loop {
            let Some(widx) = self.workers.iter().position(|w| w.running.is_none() && !w.draining)
            else {
                return;
            };
            // Check the next task fits this worker's node; the worker
            // index maps round-robin onto cluster nodes.
            let Some((task, spec)) = self.pool.pop() else { return };
            let node = &self.cluster.nodes()[widx % self.cluster.len()];
            if !spec.requirements().fits_in(node.capacity()) {
                // Find any worker whose node fits; otherwise drop the task
                // back and stop (it will be retried on the next event).
                if let Some(other) = self.workers.iter().position(|w| {
                    w.running.is_none()
                        && !w.draining
                        && spec.requirements().fits_in(
                            self.cluster.nodes()[w.id.index() % self.cluster.len()].capacity(),
                        )
                }) {
                    self.start_on(other, task, spec);
                    continue;
                }
                // Re-queue under the same id and stop trying this round.
                self.pool.requeue(task, spec);
                return;
            }
            self.start_on(widx, task, spec);
        }
    }

    fn start_on(&mut self, widx: usize, task: TaskId, spec: TaskSpec) {
        let speed = self.workers[widx].speed;
        let (attempt, fault) = self.ledger.begin_attempt(task);
        let mut duration = self.model.task_time_on(&spec, speed);
        let mut fails_at = None;
        let mut crashes_worker = false;
        if let (Some(kind), Some(plan)) = (fault, self.ledger.plan()) {
            match kind {
                FaultKind::Straggler => duration *= plan.straggler_slowdown(),
                FaultKind::Transient => {
                    fails_at = Some(self.clock + duration * plan.fail_point());
                }
                FaultKind::WorkerCrash => {
                    fails_at = Some(self.clock + duration * plan.fail_point());
                    crashes_worker = true;
                }
            }
        }
        // Arm fast-abort once the running mean is warm: an attempt
        // projected past `k × mean` is killed at the threshold (the
        // master only observes elapsed time) unless this task has used
        // up its speculation budget.
        let abort_at = self.ledger.fast_abort_threshold().and_then(|threshold| {
            (duration > threshold && self.ledger.speculation_allowed(task))
                .then_some(self.clock + threshold)
        });
        let submitted_at = self.submit_times.remove(&task).unwrap_or(self.clock);
        self.events.push(DesEvent::TaskStarted {
            task,
            job: spec.job(),
            worker: self.workers[widx].id,
            at: self.clock,
            attempt,
        });
        self.record(
            task,
            spec.job(),
            attempt,
            Some(self.workers[widx].id),
            self.clock,
            TaskPhase::Dispatched,
        );
        self.workers[widx].running = Some(Running {
            task,
            spec,
            submitted_at,
            started_at: self.clock,
            finishes_at: self.clock + duration,
            attempt,
            fails_at,
            crashes_worker,
            abort_at,
        });
    }

    /// The earliest pending event, with a deterministic tie-break order.
    fn next_event(&self) -> Option<(f64, Pending)> {
        let mut best: Option<(f64, u8, usize, Pending)> = None;
        let mut consider = |t: f64, class: u8, widx: usize, p: Pending| {
            let better = match &best {
                None => true,
                Some((bt, bc, bw, _)) => (t, class, widx) < (*bt, *bc, *bw),
            };
            if better {
                best = Some((t, class, widx, p));
            }
        };
        if let Some(&(t, ..)) = self.delayed.first() {
            consider(t, 0, 0, Pending::Release);
        }
        if let Some(&t) = self.respawns.first() {
            consider(t, 1, 0, Pending::Respawn);
        }
        if let Some(&t) = self.evictions.first() {
            consider(t, 2, 0, Pending::Evict);
        }
        for (widx, w) in self.workers.iter().enumerate() {
            let Some(run) = &w.running else { continue };
            if let Some(t) = run.fails_at {
                consider(t, 3, widx, Pending::Fail(widx));
            }
            if let Some(t) = run.abort_at {
                // Only meaningful before the attempt's own fault/finish.
                if run.fails_at.is_none_or(|f| t < f) && t < run.finishes_at {
                    consider(t, 4, widx, Pending::Abort(widx));
                }
            }
            if run.fails_at.is_none_or(|f| run.finishes_at < f) {
                consider(run.finishes_at, 5, widx, Pending::Complete(widx));
            }
        }
        best.map(|(t, _, _, p)| (t, p))
    }

    /// Handles one non-completion event.
    fn dispatch(&mut self, sel: Pending, t: f64) {
        match sel {
            Pending::Release => {
                self.clock = self.clock.max(t);
                let (_, task, spec, submitted_at) = self.delayed.remove(0);
                self.pool.requeue(task, spec);
                self.submit_times.insert(task, submitted_at);
                self.assign_idle_workers();
            }
            Pending::Respawn => {
                self.clock = self.clock.max(t);
                self.respawns.remove(0);
                self.grow_workers(1);
                self.events.push(DesEvent::WorkerRespawned {
                    worker: WorkerId::new(self.next_worker - 1),
                    at: t,
                });
                self.assign_idle_workers();
            }
            Pending::Evict => {
                self.evictions.remove(0);
                self.fire_eviction(t);
            }
            Pending::Fail(widx) => self.fail_attempt(widx, t),
            Pending::Abort(widx) => self.abort_attempt(widx, t),
            Pending::Complete(widx) => {
                let _ = self.complete_attempt(widx, t);
            }
        }
    }

    /// An injected transient fault (or worker crash) fires on `widx`.
    fn fail_attempt(&mut self, widx: usize, t: f64) {
        self.clock = self.clock.max(t);
        let run = self.workers[widx].running.take().expect("faulting worker runs a task");
        let worker_id = self.workers[widx].id;
        let kind = if run.crashes_worker { FaultKind::WorkerCrash } else { FaultKind::Transient };
        self.events.push(DesEvent::TaskFailed {
            task: run.task,
            job: run.spec.job(),
            worker: worker_id,
            kind,
            attempt: run.attempt,
            at: t,
        });
        let cause = match kind {
            FaultKind::WorkerCrash => LossCause::Crash,
            _ => LossCause::Transient,
        };
        self.record(
            run.task,
            run.spec.job(),
            run.attempt,
            Some(worker_id),
            t,
            TaskPhase::Failed(cause),
        );
        match kind {
            FaultKind::Transient => {
                let loss = AttemptLoss::Transient { panicked: false };
                self.ledger.account_loss(loss, t - run.started_at);
                match self.ledger.settle_loss(
                    run.task,
                    run.spec.job(),
                    loss,
                    "transient-fault retries exhausted",
                ) {
                    LossVerdict::Retry { delay } => {
                        // Exponential backoff with deterministic jitter.
                        self.schedule_release(t + delay, run.task, run.spec, run.submitted_at);
                    }
                    LossVerdict::Exhausted => self.exhaust(&run, t),
                }
                self.note_worker_fault(widx, t);
            }
            FaultKind::WorkerCrash => {
                self.ledger.account_loss(AttemptLoss::Crash, t - run.started_at);
                // Losing the machine is not the task's fault: re-queue
                // immediately, bounded only by the hard cap.
                match self.ledger.settle_loss(
                    run.task,
                    run.spec.job(),
                    AttemptLoss::Crash,
                    "worker-crash retries exhausted",
                ) {
                    LossVerdict::Retry { .. } => {
                        self.pool.requeue(run.task, run.spec);
                        self.submit_times.insert(run.task, run.submitted_at);
                    }
                    LossVerdict::Exhausted => self.exhaust(&run, t),
                }
                self.events.push(DesEvent::WorkerCrashed {
                    worker: worker_id,
                    at: t,
                    interrupted: Some(run.task),
                });
                let delay = self.ledger.plan().map_or(1.0, |p| p.worker_restart_delay());
                self.respawns.push(t + delay);
                self.respawns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                self.workers.remove(widx);
            }
            FaultKind::Straggler => unreachable!("stragglers do not fail, they abort"),
        }
        self.assign_idle_workers();
    }

    /// Fast-abort fires: the attempt has run `k ×` the mean task time.
    fn abort_attempt(&mut self, widx: usize, t: f64) {
        self.clock = self.clock.max(t);
        let run = self.workers[widx].running.take().expect("aborting worker runs a task");
        let worker_id = self.workers[widx].id;
        self.ledger.account_loss(AttemptLoss::FastAbort, t - run.started_at);
        self.ledger.note_speculation(run.task);
        self.events.push(DesEvent::TaskFailed {
            task: run.task,
            job: run.spec.job(),
            worker: worker_id,
            kind: FaultKind::Straggler,
            attempt: run.attempt,
            at: t,
        });
        self.record(
            run.task,
            run.spec.job(),
            run.attempt,
            Some(worker_id),
            t,
            TaskPhase::Failed(LossCause::Straggler),
        );
        // Re-queue immediately: the retry usually lands on a healthy
        // worker (the plan decides per attempt). After the speculation
        // budget, the attempt is left to run to completion, so genuinely
        // long tasks always finish.
        match self.ledger.settle_loss(
            run.task,
            run.spec.job(),
            AttemptLoss::FastAbort,
            "fast-abort",
        ) {
            LossVerdict::Retry { .. } => {
                self.pool.requeue(run.task, run.spec);
                self.submit_times.insert(run.task, run.submitted_at);
            }
            LossVerdict::Exhausted => self.exhaust(&run, t),
        }
        self.note_worker_fault(widx, t);
        if self.workers.get(widx).is_some_and(|w| w.draining && w.running.is_none()) {
            self.workers.remove(widx);
        }
        self.assign_idle_workers();
    }

    /// Attributes a fault to a worker and quarantines it past the
    /// threshold (never the last worker standing).
    fn note_worker_fault(&mut self, widx: usize, t: f64) {
        let Some(worker) = self.workers.get(widx) else { return };
        let id = worker.id;
        if self.ledger.note_worker_fault(id, self.num_workers()) {
            self.events.push(DesEvent::WorkerQuarantined { worker: id, at: t });
            // Anything still on it (shouldn't be: faults strip the task
            // first) would be re-queued by the caller; just remove it.
            self.workers.remove(widx);
        }
    }

    /// Drops a task whose retry budget is spent. The ledger already
    /// recorded the terminal [`FailedTask`]; this handles the DES-side
    /// bookkeeping (latency map, event log).
    fn exhaust(&mut self, run: &Running, t: f64) {
        self.submit_times.remove(&run.task);
        let attempts = self.ledger.attempts_started(run.task);
        self.events.push(DesEvent::TaskExhausted {
            task: run.task,
            job: run.spec.job(),
            attempts,
            at: t,
        });
        self.record(run.task, run.spec.job(), attempts, None, t, TaskPhase::Exhausted);
    }

    /// Schedules a backoff release, keeping the queue sorted.
    fn schedule_release(&mut self, at: f64, task: TaskId, spec: TaskSpec, submitted_at: f64) {
        self.delayed.push((at, task, spec, submitted_at));
        self.delayed
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times").then(a.1.cmp(&b.1)));
    }

    /// Finishes the attempt on `widx` and returns its record.
    fn complete_attempt(&mut self, widx: usize, t: f64) -> CompletedTask {
        let run = self.workers[widx].running.take().expect("selected running worker");
        self.clock = self.clock.max(t);
        self.ledger.record_success(run.task, run.finishes_at - run.started_at);
        let done = CompletedTask {
            task: run.task,
            job: run.spec.job(),
            submitted_at: run.submitted_at,
            started_at: run.started_at,
            finished_at: run.finishes_at,
            worker: self.workers[widx].id,
            deadline: run.spec.deadline(),
        };
        self.completed.push(done);
        self.events.push(DesEvent::TaskCompleted {
            task: done.task,
            job: done.job,
            worker: done.worker,
            at: done.finished_at,
        });
        self.record(
            done.task,
            done.job,
            run.attempt,
            Some(done.worker),
            done.finished_at,
            TaskPhase::Completed,
        );
        if self.workers[widx].draining {
            self.workers.remove(widx);
        }
        self.assign_idle_workers();
        done
    }

    /// Advances to the next completion event, if any, firing scheduled
    /// evictions, faults, backoff releases and respawns that occur first.
    /// Returns the finished task.
    pub fn step(&mut self) -> Option<CompletedTask> {
        loop {
            let (t, sel) = self.next_event()?;
            if let Pending::Complete(widx) = sel {
                return Some(self.complete_attempt(widx, t));
            }
            self.dispatch(sel, t);
        }
    }

    /// Processes every event up to virtual time `t`, then sets the clock
    /// to `t`. Used by the feedback-control sampling loop.
    pub fn run_until(&mut self, t: f64) {
        while let Some((time, sel)) = self.next_event() {
            if time > t {
                break;
            }
            self.dispatch(sel, time);
        }
        self.clock = self.clock.max(t);
    }

    /// Runs until the pool, backoff queue and all workers are empty,
    /// returning the report.
    pub fn run_to_completion(&mut self) -> ExecutionReport {
        while self.step().is_some() {}
        ExecutionReport {
            completed: self.completed.clone(),
            makespan: self.clock,
            faults: self.ledger.stats(),
        }
    }
}

impl ExecutionBackend for DesEngine {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        DesEngine::submit(self, spec)
    }
    fn set_job_priority(&mut self, job: JobId, priority: f64) {
        DesEngine::set_job_priority(self, job, priority);
    }
    fn set_num_workers(&mut self, n: usize) {
        DesEngine::set_num_workers(self, n);
    }
    fn num_workers(&self) -> usize {
        DesEngine::num_workers(self)
    }
    fn pending(&self) -> usize {
        DesEngine::pending(self)
    }
    fn pending_of(&self, job: JobId) -> usize {
        DesEngine::pending_of(self, job)
    }
    fn running(&self) -> usize {
        DesEngine::running(self)
    }
    fn now(&self) -> f64 {
        DesEngine::now(self)
    }
    fn run_until(&mut self, t: f64) {
        DesEngine::run_until(self, t);
    }
    fn run_to_completion(&mut self) -> ExecutionReport {
        DesEngine::run_to_completion(self)
    }
    fn schedule_eviction(&mut self, t: f64) {
        DesEngine::schedule_eviction(self, t);
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        DesEngine::set_fault_plan(self, plan);
    }
    fn set_retry_policy(&mut self, retry: RetryPolicy) {
        DesEngine::set_retry_policy(self, retry);
    }
    fn set_fast_abort(&mut self, fast_abort: FastAbort) {
        DesEngine::set_fast_abort(self, fast_abort);
    }
    fn retries(&self) -> u64 {
        DesEngine::retries(self)
    }
    fn fault_stats(&self) -> FaultStats {
        DesEngine::fault_stats(self)
    }
    fn failed(&self) -> Vec<FailedTask> {
        DesEngine::failed(self)
    }
    fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        DesEngine::set_recorder(self, recorder);
    }
    fn backend_name(&self) -> &'static str {
        "des"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceVector;

    fn engine(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers.max(1), 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn single_task_timing() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert!((report.makespan - 1.0).abs() < 1e-9);
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].started_at, 0.0);
    }

    #[test]
    fn two_workers_halve_makespan() {
        let mk = |w: usize| {
            let mut des = engine(w);
            for _ in 0..8 {
                des.submit(TaskSpec::new(JobId::new(0), 100.0));
            }
            des.run_to_completion().makespan
        };
        assert!((mk(1) - 8.0).abs() < 1e-9);
        assert!((mk(2) - 4.0).abs() < 1e-9);
        assert!((mk(4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fast_nodes_finish_first() {
        let cluster = Cluster::new(vec![
            crate::NodeSpec::new(2.0, ResourceVector::new(4, 8192, 10_000)),
            crate::NodeSpec::new(1.0, ResourceVector::new(4, 8192, 10_000)),
        ]);
        let mut des = DesEngine::new(cluster, ExecutionModel::new(0.0, 0.01, 0.01), 2);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.submit(TaskSpec::new(JobId::new(1), 100.0));
        let report = des.run_to_completion();
        let times: Vec<f64> = report.completed.iter().map(|c| c.finished_at).collect();
        assert!((times[0] - 0.5).abs() < 1e-9, "fast worker: {times:?}");
        assert!((times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn priority_job_finishes_earlier() {
        let run = |hi_prio: bool| {
            let mut des = engine(1);
            for _ in 0..10 {
                des.submit(TaskSpec::new(JobId::new(0), 100.0));
                des.submit(TaskSpec::new(JobId::new(1), 100.0));
            }
            if hi_prio {
                des.set_job_priority(JobId::new(0), 8.0);
            }
            let report = des.run_to_completion();
            report.job_completion_times()[&JobId::new(0)]
        };
        assert!(run(true) < run(false), "priority should accelerate job 0");
    }

    #[test]
    fn init_overhead_is_charged_per_task() {
        let mut des =
            DesEngine::new(Cluster::homogeneous(1, 1.0), ExecutionModel::new(1.0, 0.0, 0.0), 1);
        for _ in 0..3 {
            des.submit(TaskSpec::new(JobId::new(0), 0.0));
        }
        let report = des.run_to_completion();
        assert!((report.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn elastic_growth_mid_run() {
        let mut des = engine(1);
        for _ in 0..10 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0)); // 1s each
        }
        des.run_until(2.0); // 2 done on 1 worker
        des.set_num_workers(4);
        let report = des.run_to_completion();
        // Remaining 8 tasks on 4 workers: 2 more seconds.
        assert!((report.makespan - 4.0).abs() < 1e-9, "makespan {}", report.makespan);
    }

    #[test]
    fn shrink_drains_gracefully() {
        let mut des = engine(4);
        for _ in 0..8 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        des.set_num_workers(1);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 8, "no task lost on shrink");
        assert_eq!(des.num_workers(), 1);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut des = engine(1);
        des.run_until(5.0);
        assert_eq!(des.now(), 5.0);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert!((report.completed[0].submitted_at - 5.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_task_waits_for_fitting_node() {
        let cluster = Cluster::new(vec![
            crate::NodeSpec::new(1.0, ResourceVector::new(1, 256, 100)),
            crate::NodeSpec::new(1.0, ResourceVector::new(16, 65_536, 100_000)),
        ]);
        let mut des = DesEngine::new(cluster, ExecutionModel::new(0.0, 0.01, 0.01), 2);
        // Needs the big node.
        des.submit(
            TaskSpec::new(JobId::new(0), 100.0)
                .with_requirements(ResourceVector::new(8, 32_768, 1_000)),
        );
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].worker.index() % 2, 1, "ran on the big node");
    }

    #[test]
    fn deadlines_recorded() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0).with_deadline(0.5)); // 1s task, misses
        des.submit(TaskSpec::new(JobId::new(0), 100.0).with_deadline(10.0)); // hits
        let report = des.run_to_completion();
        assert!((report.deadline_hit_rate() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers.max(1), 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn eviction_requeues_the_running_task() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0)); // 1s task
        des.schedule_eviction(0.5);
        des.set_num_workers(2); // replacement capacity arrives
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1, "no task lost");
        assert_eq!(des.retries(), 1);
        // The task restarted from scratch after the eviction.
        assert!(report.makespan >= 1.5 - 1e-9, "makespan {}", report.makespan);
        // Latency is measured from the original submission.
        assert!((report.completed[0].submitted_at - 0.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_preserves_task_identity() {
        let mut des = engine(1);
        let id = des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.schedule_eviction(0.5);
        des.set_num_workers(2);
        let report = des.run_to_completion();
        assert_eq!(report.completed[0].task, id, "requeue keeps the original id");
        // The interrupted attempt is accounted as a crash failure.
        assert_eq!(report.faults.crash_failures, 1);
        assert!(report.faults.reconciles(), "{}", report.faults);
    }

    #[test]
    fn eviction_of_idle_worker_shrinks_the_pool() {
        let mut des = engine(3);
        des.schedule_eviction(0.5);
        des.run_until(1.0); // fires while every worker is idle
        assert_eq!(des.num_workers(), 2);
        assert_eq!(des.retries(), 0, "idle eviction interrupts nothing");
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1);
    }

    #[test]
    fn run_until_fires_due_evictions() {
        let mut des = engine(2);
        des.submit(TaskSpec::new(JobId::new(0), 10_000.0)); // 100s task
        des.schedule_eviction(1.0);
        des.run_until(2.0);
        assert_eq!(des.num_workers(), 1, "eviction inside the window fired");
        assert_eq!(des.retries(), 1);
        assert_eq!(des.now(), 2.0);
    }

    #[test]
    fn eviction_targets_the_longest_running_task() {
        let mut des = engine(2);
        let a = des.submit(TaskSpec::new(JobId::new(0), 1_000.0)); // 10s, starts at 0
        des.run_until(0.5);
        let b = des.submit(TaskSpec::new(JobId::new(1), 1_000.0)); // starts at 0.5
        des.schedule_eviction(1.0);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 2);
        // Task `a` (earliest start) was interrupted; `b` ran through.
        let b_done = report.completed.iter().find(|c| c.job == JobId::new(1)).unwrap();
        assert!((b_done.finished_at - 10.5).abs() < 1e-9, "b at {}", b_done.finished_at);
        let _ = (a, b);
    }

    #[test]
    fn losing_every_worker_strands_pending_tasks() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.schedule_eviction(0.2);
        let report = des.run_to_completion();
        // The cluster died: nothing completes, tasks remain queued.
        assert!(report.completed.is_empty());
        assert_eq!(des.pending(), 2);
        // Capacity returns → work drains.
        des.set_num_workers(1);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn no_task_is_ever_lost_under_eviction_storms(
            evictions in prop::collection::vec(0.0f64..20.0, 0..5),
            tasks in 1usize..20,
            workers in 2usize..8,
        ) {
            let mut des = engine(workers);
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32 % 3), 100.0));
            }
            for &t in &evictions {
                des.schedule_eviction(t);
            }
            // Keep at least one worker alive by re-adding capacity after
            // the last eviction could have fired.
            des.run_until(25.0);
            des.set_num_workers(workers);
            let report = des.run_to_completion();
            prop_assert_eq!(report.completed.len(), tasks, "retries: {}", des.retries());
        }
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Work conservation under arbitrary resize churn: however the
        /// pool is grown/shrunk mid-run, every submitted task completes
        /// exactly once.
        #[test]
        fn resize_churn_never_loses_or_duplicates_tasks(
            resizes in prop::collection::vec((0.0f64..10.0, 1usize..12), 0..6),
            tasks in 1usize..25,
        ) {
            let mut des = DesEngine::new(
                Cluster::homogeneous(4, 1.0),
                ExecutionModel::new(0.0, 0.01, 0.01),
                4,
            );
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32 % 4), 150.0));
            }
            let mut ordered = resizes.clone();
            ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (t, n) in ordered {
                des.run_until(t);
                des.set_num_workers(n);
            }
            let report = des.run_to_completion();
            prop_assert_eq!(report.completed.len(), tasks);
            // Exactly-once: no task id appears twice.
            let mut ids: Vec<_> = report.completed.iter().map(|c| c.task).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), tasks);
        }

        /// Timestamps are always sane: start ≥ submit, finish > start.
        #[test]
        fn completion_timestamps_are_ordered(
            tasks in 1usize..20,
            workers in 1usize..6,
        ) {
            let mut des = DesEngine::new(
                Cluster::homogeneous(workers, 1.0),
                ExecutionModel::default(),
                workers,
            );
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32), 50.0));
            }
            let report = des.run_to_completion();
            for c in &report.completed {
                prop_assert!(c.started_at >= c.submitted_at - 1e-12);
                prop_assert!(c.finished_at > c.started_at);
                prop_assert!(c.finished_at <= report.makespan + 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers.max(1), 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn transient_faults_are_retried_to_completion() {
        let mut des = engine(2);
        des.set_fault_plan(FaultPlan::new(11).with_transient_rate(0.3));
        for i in 0..30 {
            des.submit(TaskSpec::new(JobId::new(i % 3), 100.0));
        }
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 30, "faulted tasks are retried, not lost");
        let stats = report.faults;
        assert!(stats.transient_failures > 0, "the plan injected faults: {stats}");
        assert!(stats.reconciles(), "{stats}");
        assert!(stats.wasted_time > 0.0);
        assert_eq!(stats.successes, 30);
        assert!(des.retries() >= stats.transient_failures);
    }

    #[test]
    fn backoff_delays_the_retry() {
        let mut des = engine(1);
        // Rate 1 on attempt 0 only is impossible to express directly, so
        // use a plan where the first task faults (seed chosen by search
        // is fragile — instead assert the general property: any faulted
        // run's completions all land after the pure-compute makespan).
        des.set_fault_plan(FaultPlan::new(5).with_transient_rate(0.5));
        des.set_retry_policy(RetryPolicy {
            backoff_base: 0.5,
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        for _ in 0..10 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0)); // 1s each
        }
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 10);
        let faults = report.faults.transient_failures;
        assert!(faults > 0, "rate 0.5 over 10 tasks must fault: {}", report.faults);
        // Each fault burns fail_point × 1s of worker time; on a single
        // worker that waste is serial, so it adds straight to the
        // makespan. (Backoff delays only the faulted task — the worker
        // runs other tasks meanwhile — so it is not additive here.)
        let wasted = report.faults.wasted_time;
        assert!((wasted - 0.5 * faults as f64).abs() < 1e-9, "wasted {wasted} for {faults} faults");
        assert!(
            report.makespan > 10.0 + wasted - 1e-9,
            "makespan {} with {} faults",
            report.makespan,
            faults
        );
    }

    #[test]
    fn certain_faults_exhaust_the_retry_budget() {
        let mut des = engine(2);
        des.set_fault_plan(FaultPlan::new(3).with_transient_rate(1.0));
        des.set_retry_policy(RetryPolicy { max_attempts: 3, ..RetryPolicy::default() });
        for _ in 0..5 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        let report = des.run_to_completion();
        assert!(report.completed.is_empty(), "every attempt faults");
        assert_eq!(des.failed().len(), 5, "all tasks reported failed");
        let stats = report.faults;
        assert_eq!(stats.exhausted_tasks, 5);
        assert_eq!(stats.attempts, 15, "exactly max_attempts per task");
        assert!(stats.reconciles(), "{stats}");
        for f in des.failed() {
            assert_eq!(f.attempts, 3);
            assert!(f.error.contains("exhausted"));
        }
    }

    #[test]
    fn worker_crashes_respawn_and_the_work_survives() {
        let mut des = engine(3);
        des.set_fault_plan(FaultPlan::new(9).with_crash_rate(0.2).with_restart_delay(0.5));
        for i in 0..24 {
            des.submit(TaskSpec::new(JobId::new(i % 2), 100.0));
        }
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 24, "crashes never lose tasks");
        let stats = report.faults;
        assert!(stats.crash_failures > 0, "the plan injected crashes: {stats}");
        assert!(stats.reconciles(), "{stats}");
        // Respawns kept the pool alive.
        assert!(des.num_workers() >= 1);
        let respawns =
            des.events().iter().filter(|e| matches!(e, DesEvent::WorkerRespawned { .. })).count()
                as u64;
        assert_eq!(respawns, stats.crash_failures, "one respawn per crash");
    }

    #[test]
    fn fast_abort_rescues_stragglers() {
        let run = |mitigate: bool| {
            let mut des = engine(4);
            des.set_fault_plan(FaultPlan::new(17).with_stragglers(0.15, 20.0));
            if mitigate {
                des.set_fast_abort(FastAbort {
                    multiplier: 3.0,
                    min_samples: 4,
                    max_speculations: 2,
                });
            }
            for i in 0..40 {
                des.submit(TaskSpec::new(JobId::new(i % 4), 100.0));
            }
            des.run_to_completion()
        };
        let plain = run(false);
        let mitigated = run(true);
        assert_eq!(plain.completed.len(), 40);
        assert_eq!(mitigated.completed.len(), 40);
        assert!(mitigated.faults.straggler_aborts > 0, "{}", mitigated.faults);
        assert!(mitigated.faults.reconciles(), "{}", mitigated.faults);
        assert!(
            mitigated.makespan < plain.makespan,
            "fast-abort should beat stragglers: {} vs {}",
            mitigated.makespan,
            plain.makespan
        );
    }

    #[test]
    fn quarantine_blacklists_flaky_workers() {
        let mut des = engine(4);
        des.set_fault_plan(FaultPlan::new(23).with_transient_rate(0.4));
        des.set_retry_policy(RetryPolicy {
            quarantine_threshold: 2,
            max_attempts: 50,
            ..RetryPolicy::default()
        });
        for i in 0..40 {
            des.submit(TaskSpec::new(JobId::new(i % 2), 100.0));
        }
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 40);
        assert!(report.faults.quarantined_workers > 0, "{}", report.faults);
        assert!(des.num_workers() >= 1, "never quarantines the last worker");
        assert!(report.faults.reconciles(), "{}", report.faults);
    }

    #[test]
    fn fault_runs_replay_byte_for_byte() {
        let run = || {
            let mut des = engine(3);
            des.set_fault_plan(
                FaultPlan::new(77)
                    .with_transient_rate(0.15)
                    .with_crash_rate(0.05)
                    .with_stragglers(0.05, 10.0),
            );
            des.set_fast_abort(FastAbort::default());
            des.schedule_eviction(2.0);
            for i in 0..25 {
                des.submit(TaskSpec::new(JobId::new(i % 3), 120.0));
            }
            let report = des.run_to_completion();
            (format!("{:?}", des.events()), format!("{report:?}"), des.retries())
        };
        let (events_a, report_a, retries_a) = run();
        let (events_b, report_b, retries_b) = run();
        assert_eq!(events_a, events_b, "event logs must be identical");
        assert_eq!(report_a, report_b, "reports must be identical");
        assert_eq!(retries_a, retries_b);
    }

    #[test]
    fn pending_includes_backoff_queue() {
        let mut des = engine(1);
        des.set_fault_plan(FaultPlan::new(5).with_transient_rate(1.0));
        des.set_retry_policy(RetryPolicy {
            max_attempts: 10,
            backoff_base: 100.0,
            backoff_cap: 100.0,
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        // Step to the first fault: the task sits in the backoff queue.
        des.run_until(1.0);
        assert_eq!(des.pending(), 1, "backing-off task still counts as pending");
        assert_eq!(des.pending_of(JobId::new(0)), 1);
        assert_eq!(des.running(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Under arbitrary seeded fault mixes, the books always balance
        /// and no task is both completed and failed (exactly-once).
        #[test]
        fn accounting_reconciles_under_arbitrary_fault_mixes(
            seed in 0u64..1000,
            transient in 0.0f64..0.3,
            crash in 0.0f64..0.1,
            straggler in 0.0f64..0.1,
            tasks in 1usize..20,
            workers in 1usize..5,
        ) {
            let mut des = engine(workers);
            des.set_fault_plan(
                FaultPlan::new(seed)
                    .with_transient_rate(transient)
                    .with_crash_rate(crash)
                    .with_stragglers(straggler, 10.0),
            );
            des.set_fast_abort(FastAbort::default());
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32 % 3), 100.0));
            }
            let report = des.run_to_completion();
            let stats = report.faults;
            prop_assert!(stats.reconciles(), "{}", stats);
            prop_assert_eq!(
                report.completed.len() + des.failed().len(),
                tasks,
                "every task completes or is reported failed"
            );
            let mut ids: Vec<_> = report.completed.iter().map(|c| c.task).collect();
            ids.extend(des.failed().iter().map(|f| f.task));
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), tasks, "exactly-once outcome per task");
        }
    }
}

#[cfg(test)]
mod event_log_tests {
    use super::*;

    #[test]
    fn starts_precede_completions_per_task() {
        let mut des =
            DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::new(0.0, 0.01, 0.01), 2);
        for _ in 0..6 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        let _ = des.run_to_completion();
        let mut started = std::collections::BTreeSet::new();
        let mut completed = 0;
        for e in des.events() {
            match *e {
                DesEvent::TaskStarted { task, .. } => {
                    started.insert(task);
                }
                DesEvent::TaskCompleted { task, .. } => {
                    assert!(started.contains(&task), "completion before start for {task}");
                    completed += 1;
                }
                _ => {}
            }
        }
        assert_eq!(completed, 6);
    }

    #[test]
    fn evictions_appear_in_the_log() {
        let mut des =
            DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::new(0.0, 0.01, 0.01), 2);
        des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
        des.schedule_eviction(1.0);
        let _ = des.run_to_completion();
        let evictions: Vec<&DesEvent> =
            des.events().iter().filter(|e| matches!(e, DesEvent::WorkerEvicted { .. })).collect();
        assert_eq!(evictions.len(), 1);
        if let DesEvent::WorkerEvicted { interrupted, at, .. } = evictions[0] {
            assert!(interrupted.is_some(), "busy worker was interrupted");
            assert!((at - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn event_times_are_monotone() {
        let mut des = DesEngine::new(Cluster::homogeneous(3, 1.0), ExecutionModel::default(), 3);
        for i in 0..9 {
            des.submit(TaskSpec::new(JobId::new(i % 2), 50.0 * f64::from(i + 1)));
        }
        let _ = des.run_to_completion();
        let times: Vec<f64> = des
            .events()
            .iter()
            .map(|e| match *e {
                DesEvent::TaskStarted { at, .. }
                | DesEvent::TaskCompleted { at, .. }
                | DesEvent::TaskFailed { at, .. }
                | DesEvent::TaskExhausted { at, .. }
                | DesEvent::WorkerEvicted { at, .. }
                | DesEvent::WorkerCrashed { at, .. }
                | DesEvent::WorkerRespawned { at, .. }
                | DesEvent::WorkerQuarantined { at, .. } => at,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{times:?}");
    }

    #[test]
    fn fault_events_carry_attempt_numbers() {
        let mut des =
            DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::new(0.0, 0.01, 0.01), 2);
        des.set_fault_plan(FaultPlan::new(13).with_transient_rate(0.5));
        for _ in 0..10 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        let _ = des.run_to_completion();
        let mut seen_fault = false;
        for e in des.events() {
            if let DesEvent::TaskFailed { kind, attempt, .. } = *e {
                seen_fault = true;
                assert_eq!(kind, FaultKind::Transient);
                assert!(attempt < RetryPolicy::default().max_attempts);
            }
        }
        assert!(seen_fault, "rate 0.5 over 10 tasks should fault somewhere");
    }
}
