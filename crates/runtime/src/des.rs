//! Discrete-event simulation backend.
//!
//! The paper's cluster experiments ran on the Notre Dame HTCondor pool.
//! `DesEngine` reproduces the scheduling dynamics — queueing, priority
//! shares, heterogeneous worker speeds, init overhead, elastic worker
//! pools — under a virtual clock, so the cluster-scale figures (execution
//! time vs. data size, deadline hit rates, speedup curves) regenerate
//! deterministically on a single machine.

use crate::{
    Cluster, CompletedTask, ExecutionModel, ExecutionReport, JobId, TaskId, TaskPool, TaskSpec,
    WorkerId,
};
use std::collections::BTreeMap;

/// One entry of the simulator's lifecycle log — the observability stream
/// a real Work Queue master writes to its transaction log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesEvent {
    /// A task began executing on a worker.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// The executing worker.
        worker: WorkerId,
        /// Virtual start time.
        at: f64,
    },
    /// A task finished.
    TaskCompleted {
        /// The task.
        task: TaskId,
        /// Its owning job.
        job: JobId,
        /// The executing worker.
        worker: WorkerId,
        /// Virtual completion time.
        at: f64,
    },
    /// A worker was evicted (HTCondor preemption).
    WorkerEvicted {
        /// The evicted worker.
        worker: WorkerId,
        /// Virtual eviction time.
        at: f64,
        /// The task it was running, if any (re-queued under a new id).
        interrupted: Option<TaskId>,
    },
}

#[derive(Debug, Clone)]
struct Running {
    task: TaskId,
    spec: TaskSpec,
    submitted_at: f64,
    started_at: f64,
    finishes_at: f64,
}

#[derive(Debug, Clone)]
struct Worker {
    id: WorkerId,
    speed: f64,
    running: Option<Running>,
    /// A draining worker finishes its current task and accepts no more
    /// (how the Global Control Knob shrinks the pool).
    draining: bool,
}

/// Event-driven simulator of a Work Queue master over a cluster.
///
/// # Examples
///
/// ```
/// use sstd_runtime::{Cluster, DesEngine, ExecutionModel, JobId, TaskSpec};
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
/// des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
/// let report = des.run_to_completion();
/// // Two equal tasks on two workers finish together.
/// assert!((report.makespan - report.completed[0].finished_at).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct DesEngine {
    cluster: Cluster,
    model: ExecutionModel,
    pool: TaskPool,
    workers: Vec<Worker>,
    next_worker: u32,
    clock: f64,
    submit_times: BTreeMap<TaskId, f64>,
    completed: Vec<CompletedTask>,
    /// Scheduled worker evictions (HTCondor preemption), sorted by time.
    evictions: Vec<f64>,
    /// Tasks restarted after losing their worker.
    retries: u64,
    /// Lifecycle log.
    events: Vec<DesEvent>,
}

impl DesEngine {
    /// Creates a simulator with `num_workers` workers placed round-robin
    /// on `cluster`'s nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    #[must_use]
    pub fn new(cluster: Cluster, model: ExecutionModel, num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let mut engine = Self {
            cluster,
            model,
            pool: TaskPool::new(),
            workers: Vec::new(),
            next_worker: 0,
            clock: 0.0,
            submit_times: BTreeMap::new(),
            completed: Vec::new(),
            evictions: Vec::new(),
            retries: 0,
            events: Vec::new(),
        };
        engine.grow_workers(num_workers);
        engine
    }

    fn grow_workers(&mut self, n: usize) {
        let speeds = self.cluster.worker_speeds(self.workers.len() + n);
        for _ in 0..n {
            let idx = self.next_worker as usize;
            self.workers.push(Worker {
                id: WorkerId::new(self.next_worker),
                speed: speeds[idx % speeds.len()],
                running: None,
                draining: false,
            });
            self.next_worker += 1;
        }
    }

    /// Current virtual time.
    #[must_use]
    pub const fn now(&self) -> f64 {
        self.clock
    }

    /// Number of workers currently accepting tasks.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.iter().filter(|w| !w.draining).count()
    }

    /// Pending (not yet started) tasks.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pool.len()
    }

    /// Tasks currently executing.
    #[must_use]
    pub fn running(&self) -> usize {
        self.workers.iter().filter(|w| w.running.is_some()).count()
    }

    /// Pending tasks of one job — the progress signal the PID controller
    /// samples.
    #[must_use]
    pub fn pending_of(&self, job: JobId) -> usize {
        self.pool.pending_of(job)
    }

    /// Tasks completed so far.
    #[must_use]
    pub fn completed(&self) -> &[CompletedTask] {
        &self.completed
    }

    /// Tasks restarted after an eviction killed their worker mid-run.
    #[must_use]
    pub const fn retries(&self) -> u64 {
        self.retries
    }

    /// The lifecycle event log, in event order.
    #[must_use]
    pub fn events(&self) -> &[DesEvent] {
        &self.events
    }

    /// Schedules a worker eviction at virtual time `t` — the HTCondor
    /// failure mode: the pool reclaims a machine, the worker vanishes,
    /// and its in-flight task (if any) is lost and must be re-queued.
    /// Evictions target the busiest worker at the eviction instant; with
    /// all workers idle, an idle worker leaves instead. Evictions
    /// scheduled in the past fire immediately on the next event step.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is finite and non-negative.
    pub fn schedule_eviction(&mut self, t: f64) {
        assert!(t.is_finite() && t >= 0.0, "eviction time must be non-negative");
        self.evictions.push(t);
        self.evictions.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    }

    /// Fires one eviction: kill a worker (preferring a busy one),
    /// re-queue its task, and replace nothing — the pool shrinks, exactly
    /// like a Condor machine leaving.
    fn fire_eviction(&mut self, t: f64) {
        self.clock = self.clock.max(t);
        // Prefer the busy worker whose task started earliest (most sunk
        // work lost — the adversarial case); fall back to any worker.
        let victim = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.running.is_some())
            .min_by(|(_, a), (_, b)| {
                let sa = a.running.as_ref().expect("filtered busy").started_at;
                let sb = b.running.as_ref().expect("filtered busy").started_at;
                sa.partial_cmp(&sb).expect("finite times")
            })
            .map(|(i, _)| i)
            .or_else(|| (!self.workers.is_empty()).then_some(0));
        let Some(widx) = victim else { return };
        let mut interrupted = None;
        if let Some(run) = self.workers[widx].running.take() {
            // Re-queue the interrupted task, preserving its original
            // submission time so latency accounting stays honest.
            interrupted = Some(run.task);
            let requeued = self.pool.submit(run.spec);
            self.submit_times.insert(requeued, run.submitted_at);
            self.retries += 1;
        }
        self.events.push(DesEvent::WorkerEvicted {
            worker: self.workers[widx].id,
            at: t,
            interrupted,
        });
        self.workers.remove(widx);
        self.assign_idle_workers();
    }

    /// Submits a task at the current virtual time.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        let id = self.pool.submit(spec);
        self.submit_times.insert(id, self.clock);
        self.assign_idle_workers();
        id
    }

    /// Sets a job's priority (Local Control Knob).
    ///
    /// # Panics
    ///
    /// Panics unless `priority` is finite and positive.
    pub fn set_job_priority(&mut self, job: JobId, priority: f64) {
        self.pool.set_priority(job, priority);
    }

    /// Elastically resizes the worker pool (Global Control Knob). Growing
    /// adds workers immediately; shrinking drains the newest workers after
    /// their current task.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn set_num_workers(&mut self, n: usize) {
        assert!(n > 0, "need at least one worker");
        let active = self.num_workers();
        if n > active {
            // Reactivate draining workers first, then add new ones.
            let mut needed = n - active;
            for w in self.workers.iter_mut().rev() {
                if needed == 0 {
                    break;
                }
                if w.draining {
                    w.draining = false;
                    needed -= 1;
                }
            }
            if needed > 0 {
                self.grow_workers(needed);
            }
            self.assign_idle_workers();
        } else if n < active {
            let mut to_drain = active - n;
            for w in self.workers.iter_mut().rev() {
                if to_drain == 0 {
                    break;
                }
                if !w.draining {
                    w.draining = true;
                    to_drain -= 1;
                }
            }
            // Fully idle draining workers can be dropped right away.
            self.workers.retain(|w| !(w.draining && w.running.is_none()));
        }
    }

    /// Assigns pool tasks to idle, non-draining workers. Tasks whose
    /// resource requirements fit no node stay queued.
    fn assign_idle_workers(&mut self) {
        loop {
            let Some(widx) = self
                .workers
                .iter()
                .position(|w| w.running.is_none() && !w.draining)
            else {
                return;
            };
            // Check the next task fits this worker's node; the worker
            // index maps round-robin onto cluster nodes.
            let Some((task, spec)) = self.pool.pop() else { return };
            let node = &self.cluster.nodes()[widx % self.cluster.len()];
            if !spec.requirements().fits_in(node.capacity()) {
                // Find any worker whose node fits; otherwise drop the task
                // back and stop (it will be retried on the next event).
                if let Some(other) = self.workers.iter().position(|w| {
                    w.running.is_none()
                        && !w.draining
                        && spec
                            .requirements()
                            .fits_in(self.cluster.nodes()[w.id.index() % self.cluster.len()].capacity())
                }) {
                    self.start_on(other, task, spec);
                    continue;
                }
                // Re-queue and stop trying this round.
                let requeued = self.pool.submit(spec);
                let t = self.submit_times.remove(&task).unwrap_or(self.clock);
                self.submit_times.insert(requeued, t);
                return;
            }
            self.start_on(widx, task, spec);
        }
    }

    fn start_on(&mut self, widx: usize, task: TaskId, spec: TaskSpec) {
        let speed = self.workers[widx].speed;
        let duration = self.model.task_time_on(&spec, speed);
        let submitted_at = self.submit_times.remove(&task).unwrap_or(self.clock);
        self.events.push(DesEvent::TaskStarted {
            task,
            job: spec.job(),
            worker: self.workers[widx].id,
            at: self.clock,
        });
        self.workers[widx].running = Some(Running {
            task,
            spec,
            submitted_at,
            started_at: self.clock,
            finishes_at: self.clock + duration,
        });
    }

    /// Advances to the next completion event, if any, firing scheduled
    /// evictions that occur first. Returns the finished task.
    pub fn step(&mut self) -> Option<CompletedTask> {
        loop {
            let next_completion = self
                .workers
                .iter()
                .filter_map(|w| w.running.as_ref().map(|r| r.finishes_at))
                .fold(f64::INFINITY, f64::min);
            match self.evictions.first().copied() {
                Some(ev) if ev <= next_completion => {
                    self.evictions.remove(0);
                    self.fire_eviction(ev);
                    // An eviction may have been the only pending event;
                    // re-evaluate.
                }
                _ => break,
            }
        }
        let widx = self
            .workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.running.as_ref().map(|r| (i, r.finishes_at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(i, _)| i)?;
        let run = self.workers[widx].running.take().expect("selected running worker");
        self.clock = self.clock.max(run.finishes_at);
        let done = CompletedTask {
            task: run.task,
            job: run.spec.job(),
            submitted_at: run.submitted_at,
            started_at: run.started_at,
            finished_at: run.finishes_at,
            worker: self.workers[widx].id,
            deadline: run.spec.deadline(),
        };
        self.completed.push(done);
        self.events.push(DesEvent::TaskCompleted {
            task: done.task,
            job: done.job,
            worker: done.worker,
            at: done.finished_at,
        });
        if self.workers[widx].draining {
            self.workers.remove(widx);
        }
        self.assign_idle_workers();
        Some(done)
    }

    /// Processes every completion and eviction event up to virtual time
    /// `t`, then sets the clock to `t`. Used by the feedback-control
    /// sampling loop.
    pub fn run_until(&mut self, t: f64) {
        loop {
            let next_completion = self
                .workers
                .iter()
                .filter_map(|w| w.running.as_ref().map(|r| r.finishes_at))
                .fold(f64::INFINITY, f64::min);
            let next_eviction = self.evictions.first().copied().unwrap_or(f64::INFINITY);
            let next = next_completion.min(next_eviction);
            if next > t {
                break;
            }
            if next_eviction <= next_completion {
                self.evictions.remove(0);
                self.fire_eviction(next_eviction);
            } else {
                let _ = self.step();
            }
        }
        self.clock = self.clock.max(t);
    }

    /// Runs until the pool and all workers are empty, returning the
    /// report.
    pub fn run_to_completion(&mut self) -> ExecutionReport {
        while self.step().is_some() {}
        ExecutionReport { completed: self.completed.clone(), makespan: self.clock }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceVector;

    fn engine(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers.max(1), 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn single_task_timing() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert!((report.makespan - 1.0).abs() < 1e-9);
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].started_at, 0.0);
    }

    #[test]
    fn two_workers_halve_makespan() {
        let mk = |w: usize| {
            let mut des = engine(w);
            for _ in 0..8 {
                des.submit(TaskSpec::new(JobId::new(0), 100.0));
            }
            des.run_to_completion().makespan
        };
        assert!((mk(1) - 8.0).abs() < 1e-9);
        assert!((mk(2) - 4.0).abs() < 1e-9);
        assert!((mk(4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fast_nodes_finish_first() {
        let cluster = Cluster::new(vec![
            crate::NodeSpec::new(2.0, ResourceVector::new(4, 8192, 10_000)),
            crate::NodeSpec::new(1.0, ResourceVector::new(4, 8192, 10_000)),
        ]);
        let mut des = DesEngine::new(cluster, ExecutionModel::new(0.0, 0.01, 0.01), 2);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.submit(TaskSpec::new(JobId::new(1), 100.0));
        let report = des.run_to_completion();
        let times: Vec<f64> = report.completed.iter().map(|c| c.finished_at).collect();
        assert!((times[0] - 0.5).abs() < 1e-9, "fast worker: {times:?}");
        assert!((times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn priority_job_finishes_earlier() {
        let run = |hi_prio: bool| {
            let mut des = engine(1);
            for _ in 0..10 {
                des.submit(TaskSpec::new(JobId::new(0), 100.0));
                des.submit(TaskSpec::new(JobId::new(1), 100.0));
            }
            if hi_prio {
                des.set_job_priority(JobId::new(0), 8.0);
            }
            let report = des.run_to_completion();
            report.job_completion_times()[&JobId::new(0)]
        };
        assert!(run(true) < run(false), "priority should accelerate job 0");
    }

    #[test]
    fn init_overhead_is_charged_per_task() {
        let mut des = DesEngine::new(
            Cluster::homogeneous(1, 1.0),
            ExecutionModel::new(1.0, 0.0, 0.0),
            1,
        );
        for _ in 0..3 {
            des.submit(TaskSpec::new(JobId::new(0), 0.0));
        }
        let report = des.run_to_completion();
        assert!((report.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn elastic_growth_mid_run() {
        let mut des = engine(1);
        for _ in 0..10 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0)); // 1s each
        }
        des.run_until(2.0); // 2 done on 1 worker
        des.set_num_workers(4);
        let report = des.run_to_completion();
        // Remaining 8 tasks on 4 workers: 2 more seconds.
        assert!((report.makespan - 4.0).abs() < 1e-9, "makespan {}", report.makespan);
    }

    #[test]
    fn shrink_drains_gracefully() {
        let mut des = engine(4);
        for _ in 0..8 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        des.set_num_workers(1);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 8, "no task lost on shrink");
        assert_eq!(des.num_workers(), 1);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut des = engine(1);
        des.run_until(5.0);
        assert_eq!(des.now(), 5.0);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert!((report.completed[0].submitted_at - 5.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_task_waits_for_fitting_node() {
        let cluster = Cluster::new(vec![
            crate::NodeSpec::new(1.0, ResourceVector::new(1, 256, 100)),
            crate::NodeSpec::new(1.0, ResourceVector::new(16, 65_536, 100_000)),
        ]);
        let mut des = DesEngine::new(cluster, ExecutionModel::new(0.0, 0.01, 0.01), 2);
        // Needs the big node.
        des.submit(
            TaskSpec::new(JobId::new(0), 100.0)
                .with_requirements(ResourceVector::new(8, 32_768, 1_000)),
        );
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1);
        assert_eq!(report.completed[0].worker.index() % 2, 1, "ran on the big node");
    }

    #[test]
    fn deadlines_recorded() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0).with_deadline(0.5)); // 1s task, misses
        des.submit(TaskSpec::new(JobId::new(0), 100.0).with_deadline(10.0)); // hits
        let report = des.run_to_completion();
        assert!((report.deadline_hit_rate() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod eviction_tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers.max(1), 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn eviction_requeues_the_running_task() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0)); // 1s task
        des.schedule_eviction(0.5);
        des.set_num_workers(2); // replacement capacity arrives
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1, "no task lost");
        assert_eq!(des.retries(), 1);
        // The task restarted from scratch after the eviction.
        assert!(report.makespan >= 1.5 - 1e-9, "makespan {}", report.makespan);
        // Latency is measured from the original submission.
        assert!((report.completed[0].submitted_at - 0.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_of_idle_worker_shrinks_the_pool() {
        let mut des = engine(3);
        des.schedule_eviction(0.5);
        des.run_until(1.0); // fires while every worker is idle
        assert_eq!(des.num_workers(), 2);
        assert_eq!(des.retries(), 0, "idle eviction interrupts nothing");
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 1);
    }

    #[test]
    fn run_until_fires_due_evictions() {
        let mut des = engine(2);
        des.submit(TaskSpec::new(JobId::new(0), 10_000.0)); // 100s task
        des.schedule_eviction(1.0);
        des.run_until(2.0);
        assert_eq!(des.num_workers(), 1, "eviction inside the window fired");
        assert_eq!(des.retries(), 1);
        assert_eq!(des.now(), 2.0);
    }

    #[test]
    fn eviction_targets_the_longest_running_task() {
        let mut des = engine(2);
        let a = des.submit(TaskSpec::new(JobId::new(0), 1_000.0)); // 10s, starts at 0
        des.run_until(0.5);
        let b = des.submit(TaskSpec::new(JobId::new(1), 1_000.0)); // starts at 0.5
        des.schedule_eviction(1.0);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 2);
        // Task `a` (earliest start) was interrupted; `b` ran through.
        let b_done = report.completed.iter().find(|c| c.job == JobId::new(1)).unwrap();
        assert!((b_done.finished_at - 10.5).abs() < 1e-9, "b at {}", b_done.finished_at);
        let _ = (a, b);
    }

    #[test]
    fn losing_every_worker_strands_pending_tasks() {
        let mut des = engine(1);
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.submit(TaskSpec::new(JobId::new(0), 100.0));
        des.schedule_eviction(0.2);
        let report = des.run_to_completion();
        // The cluster died: nothing completes, tasks remain queued.
        assert!(report.completed.is_empty());
        assert_eq!(des.pending(), 2);
        // Capacity returns → work drains.
        des.set_num_workers(1);
        let report = des.run_to_completion();
        assert_eq!(report.completed.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn no_task_is_ever_lost_under_eviction_storms(
            evictions in prop::collection::vec(0.0f64..20.0, 0..5),
            tasks in 1usize..20,
            workers in 2usize..8,
        ) {
            let mut des = engine(workers);
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32 % 3), 100.0));
            }
            for &t in &evictions {
                des.schedule_eviction(t);
            }
            // Keep at least one worker alive by re-adding capacity after
            // the last eviction could have fired.
            des.run_until(25.0);
            des.set_num_workers(workers);
            let report = des.run_to_completion();
            prop_assert_eq!(report.completed.len(), tasks, "retries: {}", des.retries());
        }
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Work conservation under arbitrary resize churn: however the
        /// pool is grown/shrunk mid-run, every submitted task completes
        /// exactly once.
        #[test]
        fn resize_churn_never_loses_or_duplicates_tasks(
            resizes in prop::collection::vec((0.0f64..10.0, 1usize..12), 0..6),
            tasks in 1usize..25,
        ) {
            let mut des = DesEngine::new(
                Cluster::homogeneous(4, 1.0),
                ExecutionModel::new(0.0, 0.01, 0.01),
                4,
            );
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32 % 4), 150.0));
            }
            let mut ordered = resizes.clone();
            ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (t, n) in ordered {
                des.run_until(t);
                des.set_num_workers(n);
            }
            let report = des.run_to_completion();
            prop_assert_eq!(report.completed.len(), tasks);
            // Exactly-once: no task id appears twice.
            let mut ids: Vec<_> = report.completed.iter().map(|c| c.task).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), tasks);
        }

        /// Timestamps are always sane: start ≥ submit, finish > start.
        #[test]
        fn completion_timestamps_are_ordered(
            tasks in 1usize..20,
            workers in 1usize..6,
        ) {
            let mut des = DesEngine::new(
                Cluster::homogeneous(workers, 1.0),
                ExecutionModel::default(),
                workers,
            );
            for i in 0..tasks {
                des.submit(TaskSpec::new(JobId::new(i as u32), 50.0));
            }
            let report = des.run_to_completion();
            for c in &report.completed {
                prop_assert!(c.started_at >= c.submitted_at - 1e-12);
                prop_assert!(c.finished_at > c.started_at);
                prop_assert!(c.finished_at <= report.makespan + 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod event_log_tests {
    use super::*;

    #[test]
    fn starts_precede_completions_per_task() {
        let mut des = DesEngine::new(
            Cluster::homogeneous(2, 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            2,
        );
        for _ in 0..6 {
            des.submit(TaskSpec::new(JobId::new(0), 100.0));
        }
        let _ = des.run_to_completion();
        let mut started = std::collections::BTreeSet::new();
        let mut completed = 0;
        for e in des.events() {
            match *e {
                DesEvent::TaskStarted { task, .. } => {
                    started.insert(task);
                }
                DesEvent::TaskCompleted { task, .. } => {
                    assert!(started.contains(&task), "completion before start for {task}");
                    completed += 1;
                }
                DesEvent::WorkerEvicted { .. } => {}
            }
        }
        assert_eq!(completed, 6);
    }

    #[test]
    fn evictions_appear_in_the_log() {
        let mut des = DesEngine::new(
            Cluster::homogeneous(2, 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            2,
        );
        des.submit(TaskSpec::new(JobId::new(0), 1_000.0));
        des.schedule_eviction(1.0);
        let _ = des.run_to_completion();
        let evictions: Vec<&DesEvent> = des
            .events()
            .iter()
            .filter(|e| matches!(e, DesEvent::WorkerEvicted { .. }))
            .collect();
        assert_eq!(evictions.len(), 1);
        if let DesEvent::WorkerEvicted { interrupted, at, .. } = evictions[0] {
            assert!(interrupted.is_some(), "busy worker was interrupted");
            assert!((at - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn event_times_are_monotone() {
        let mut des = DesEngine::new(
            Cluster::homogeneous(3, 1.0),
            ExecutionModel::default(),
            3,
        );
        for i in 0..9 {
            des.submit(TaskSpec::new(JobId::new(i % 2), 50.0 * f64::from(i + 1)));
        }
        let _ = des.run_to_completion();
        let times: Vec<f64> = des
            .events()
            .iter()
            .map(|e| match *e {
                DesEvent::TaskStarted { at, .. }
                | DesEvent::TaskCompleted { at, .. }
                | DesEvent::WorkerEvicted { at, .. } => at,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{times:?}");
    }
}
