//! Backend-agnostic scheduling policy: the shared per-task attempt state
//! machine.
//!
//! Both execution backends — the virtual-clock [`crate::DesEngine`] and
//! the OS-thread [`crate::ThreadedEngine`] — must make the *same*
//! decisions about a faulted attempt: whether to retry it, how long to
//! back off, when a task's budget is exhausted, when a flaky worker gets
//! quarantined, and how every started attempt is reconciled in
//! [`FaultStats`]. Before this module each backend carried its own copy of
//! that machinery; now the policy lives once in [`AttemptLedger`] and each
//! backend supplies only its clock and execution mechanism (event
//! dispatching in the DES, threads and condvars in the threaded engine).
//!
//! The ledger is deliberately passive: it never schedules anything itself.
//! A backend reports lifecycle transitions (`begin_attempt`,
//! `record_success`, `account_loss` + `settle_loss`) and acts on the
//! returned [`LossVerdict`] with its own re-queue/backoff mechanics, so
//! time stays backend-native (virtual seconds in the DES, scaled real
//! seconds in the threaded engine).

use crate::fault::splitmix64;
use crate::{
    FailedTask, FastAbort, FaultKind, FaultPlan, FaultStats, JobId, RetryPolicy, TaskId, WorkerId,
};
use sstd_stats::OnlineStats;
use std::collections::BTreeMap;

/// Why a started attempt ended without a recorded success. Maps one-to-one
/// onto the failure/abort counters of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptLoss {
    /// A transient failure: injected by the [`FaultPlan`], or a panic
    /// caught in the threaded backend (`panicked` distinguishes the two).
    Transient {
        /// Whether the loss was a caught panic (threaded backend).
        panicked: bool,
    },
    /// The executing worker died mid-attempt (injected crash or scheduled
    /// eviction); the machine is at fault, not the task.
    Crash,
    /// The attempt was killed by straggler fast-abort.
    FastAbort,
    /// The attempt was abandoned after exceeding the wall-clock timeout
    /// (threaded backend).
    Timeout,
}

/// The ledger's verdict on a lost attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossVerdict {
    /// Re-queue the task after `delay` backend-native seconds (`0` means
    /// immediately). The retry has already been counted.
    Retry {
        /// Backoff before the task becomes runnable again.
        delay: f64,
    },
    /// The retry budget is spent: the task has been recorded in
    /// [`AttemptLedger::failed`] and must not be re-queued.
    Exhausted,
}

/// The shared attempt state machine: retry bookkeeping, backoff,
/// quarantine counting, fast-abort budgets and [`FaultStats`]
/// reconciliation, factored out of both backends.
///
/// Invariant: every attempt opened with [`begin_attempt`] is closed by
/// exactly one of [`record_success`], [`record_lost_duplicate`] or
/// [`account_loss`], which is what keeps
/// [`FaultStats::reconciles`] true on both backends.
///
/// [`begin_attempt`]: AttemptLedger::begin_attempt
/// [`record_success`]: AttemptLedger::record_success
/// [`record_lost_duplicate`]: AttemptLedger::record_lost_duplicate
/// [`account_loss`]: AttemptLedger::account_loss
#[derive(Debug, Default)]
pub struct AttemptLedger {
    /// Injected fault schedule, if any.
    plan: Option<FaultPlan>,
    /// Retry/backoff/quarantine policy.
    retry: RetryPolicy,
    /// Straggler mitigation, if enabled.
    fast_abort: Option<FastAbort>,
    /// Started attempts per live task (also the next attempt's zero-based
    /// index).
    attempts: BTreeMap<TaskId, u32>,
    /// Fast-aborts / speculations consumed per live task.
    speculations: BTreeMap<TaskId, u32>,
    /// Faults attributed to each worker (for quarantine).
    worker_faults: BTreeMap<WorkerId, u32>,
    /// Failed-attempt accounting.
    stats: FaultStats,
    /// Online mean/variance of successful attempt durations (drives
    /// fast-abort).
    durations: OnlineStats,
    /// Tasks dropped after exhausting their retry budget.
    failed: Vec<FailedTask>,
    /// Tasks re-queued after losing an attempt (any cause).
    retries: u64,
}

impl AttemptLedger {
    /// Creates an empty ledger with the default [`RetryPolicy`], no fault
    /// plan and no fast-abort.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// The installed fault schedule, if any.
    #[must_use]
    pub const fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Sets the retry/backoff/quarantine policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`RetryPolicy::validate`]).
    /// This setter cannot propagate — both engines call it mid-setup on an
    /// already-constructed backend — so it uses the panicking wrapper.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        retry.assert_valid();
        self.retry = retry;
    }

    /// The active retry policy.
    #[must_use]
    pub const fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Enables straggler fast-abort.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FastAbort::validate`]).
    /// Like [`set_retry`](Self::set_retry), this setter cannot propagate
    /// and uses the panicking wrapper.
    pub fn set_fast_abort(&mut self, fast_abort: FastAbort) {
        fast_abort.assert_valid();
        self.fast_abort = Some(fast_abort);
    }

    /// The active fast-abort configuration, if enabled.
    #[must_use]
    pub const fn fast_abort(&self) -> Option<FastAbort> {
        self.fast_abort
    }

    /// Opens an attempt: bumps the task's attempt counter and the global
    /// attempt count, and returns the zero-based attempt index together
    /// with the fault the plan injects into it (if any).
    pub fn begin_attempt(&mut self, task: TaskId) -> (u32, Option<FaultKind>) {
        let counter = self.attempts.entry(task).or_insert(0);
        let attempt = *counter;
        *counter += 1;
        self.stats.attempts += 1;
        let fault = self.plan.and_then(|p| p.decide(task, attempt));
        (attempt, fault)
    }

    /// Attempts started so far for `task`.
    #[must_use]
    pub fn attempts_started(&self, task: TaskId) -> u32 {
        self.attempts.get(&task).copied().unwrap_or(0)
    }

    /// Closes an attempt as the task's recorded success: feeds the online
    /// duration mean and clears the task's per-attempt bookkeeping.
    pub fn record_success(&mut self, task: TaskId, duration: f64) {
        self.stats.successes += 1;
        self.durations.push(duration);
        self.attempts.remove(&task);
        self.speculations.remove(&task);
    }

    /// Closes an attempt that completed *after* its task was already done
    /// — a speculative duplicate that lost the race. The work is wasted
    /// and accounted as a straggler abort.
    pub fn record_lost_duplicate(&mut self, elapsed: f64) {
        self.stats.straggler_aborts += 1;
        self.stats.wasted_time += elapsed;
    }

    /// Closes a lost attempt in the stats: counts the loss by kind and the
    /// `elapsed` backend-native seconds it burned. Separate from
    /// [`settle_loss`](Self::settle_loss) because a backend may account a
    /// loss whose task is still covered by a sibling attempt (speculative
    /// duplicate or queued retry) and therefore needs no verdict.
    pub fn account_loss(&mut self, loss: AttemptLoss, elapsed: f64) {
        self.stats.wasted_time += elapsed;
        match loss {
            AttemptLoss::Transient { panicked } => {
                self.stats.transient_failures += 1;
                if panicked {
                    self.stats.panics += 1;
                }
            }
            AttemptLoss::Crash => self.stats.crash_failures += 1,
            AttemptLoss::FastAbort => self.stats.straggler_aborts += 1,
            AttemptLoss::Timeout => self.stats.timeout_aborts += 1,
        }
    }

    /// Decides a lost attempt's fate: retry (with the policy's backoff and
    /// deterministic jitter) or exhaustion. Crash losses are bounded only
    /// by the generous hard cap — losing a machine is not the task's fault
    /// — and retry immediately; fast-aborts are budgeted upfront via
    /// [`speculation_allowed`](Self::speculation_allowed) and always
    /// re-queue; everything else burns the `max_attempts` budget and backs
    /// off exponentially.
    pub fn settle_loss(
        &mut self,
        task: TaskId,
        job: JobId,
        loss: AttemptLoss,
        error: &str,
    ) -> LossVerdict {
        let started = self.attempts.get(&task).copied().unwrap_or(1);
        let cap = match loss {
            AttemptLoss::Crash => self.retry.hard_attempt_cap(),
            AttemptLoss::FastAbort => u32::MAX,
            AttemptLoss::Transient { .. } | AttemptLoss::Timeout => self.retry.max_attempts,
        };
        if started >= cap {
            self.stats.exhausted_tasks += 1;
            self.failed.push(FailedTask { task, job, attempts: started, error: error.to_string() });
            LossVerdict::Exhausted
        } else {
            self.retries += 1;
            let delay = match loss {
                AttemptLoss::Crash | AttemptLoss::FastAbort => 0.0,
                AttemptLoss::Transient { .. } | AttemptLoss::Timeout => {
                    let salt = splitmix64(self.plan.map_or(0, |p| p.seed()) ^ task.index() as u64);
                    self.retry.backoff(started, salt)
                }
            };
            LossVerdict::Retry { delay }
        }
    }

    /// Attributes a fault to `worker` and decides quarantine: returns
    /// `true` when the worker crossed the policy threshold and
    /// `alive_workers > 1` (never the last worker standing). The caller
    /// removes the worker from its pool; the quarantine is already counted
    /// in the stats.
    pub fn note_worker_fault(&mut self, worker: WorkerId, alive_workers: usize) -> bool {
        if self.retry.quarantine_threshold == 0 {
            return false;
        }
        let count = {
            let c = self.worker_faults.entry(worker).or_insert(0);
            *c += 1;
            *c
        };
        if count >= self.retry.quarantine_threshold && alive_workers > 1 {
            self.stats.quarantined_workers += 1;
            true
        } else {
            false
        }
    }

    /// Consumes one unit of `task`'s speculation budget (a fast-abort in
    /// the DES, a speculative duplicate in the threaded backend).
    pub fn note_speculation(&mut self, task: TaskId) {
        *self.speculations.entry(task).or_insert(0) += 1;
    }

    /// Speculations consumed by `task` so far.
    #[must_use]
    pub fn speculations_used(&self, task: TaskId) -> u32 {
        self.speculations.get(&task).copied().unwrap_or(0)
    }

    /// Whether `task` still has speculation budget left (`false` when
    /// fast-abort is disabled).
    #[must_use]
    pub fn speculation_allowed(&self, task: TaskId) -> bool {
        self.fast_abort.is_some_and(|fa| self.speculations_used(task) < fa.max_speculations)
    }

    /// The fast-abort duration threshold (`multiplier × mean completed
    /// duration`), once enabled and warmed past `min_samples` completions.
    #[must_use]
    pub fn fast_abort_threshold(&self) -> Option<f64> {
        let fa = self.fast_abort?;
        (self.durations.count() >= fa.min_samples).then(|| fa.multiplier * self.durations.mean())
    }

    /// Online statistics over successful attempt durations.
    #[must_use]
    pub const fn durations(&self) -> &OnlineStats {
        &self.durations
    }

    /// Failed-attempt accounting so far.
    #[must_use]
    pub const fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Tasks dropped after exhausting their retry budget.
    #[must_use]
    pub fn failed(&self) -> &[FailedTask] {
        &self.failed
    }

    /// Tasks re-queued after losing an attempt (any cause).
    #[must_use]
    pub const fn retries(&self) -> u64 {
        self.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_reconcile_across_outcomes() {
        let mut ledger = AttemptLedger::new();
        let (a0, _) = ledger.begin_attempt(TaskId::new(0));
        assert_eq!(a0, 0);
        ledger.record_success(TaskId::new(0), 1.0);
        let (a1, _) = ledger.begin_attempt(TaskId::new(1));
        assert_eq!(a1, 0);
        ledger.account_loss(AttemptLoss::Transient { panicked: false }, 0.5);
        let verdict = ledger.settle_loss(
            TaskId::new(1),
            JobId::new(0),
            AttemptLoss::Transient { panicked: false },
            "injected",
        );
        assert!(matches!(verdict, LossVerdict::Retry { .. }));
        assert!(ledger.stats().reconciles(), "{}", ledger.stats());
        assert_eq!(ledger.retries(), 1);
    }

    #[test]
    fn transient_losses_exhaust_at_max_attempts() {
        let mut ledger = AttemptLedger::new();
        ledger.set_retry(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() });
        let task = TaskId::new(7);
        let job = JobId::new(1);
        let loss = AttemptLoss::Transient { panicked: false };
        let _ = ledger.begin_attempt(task);
        ledger.account_loss(loss, 0.1);
        assert!(matches!(ledger.settle_loss(task, job, loss, "boom"), LossVerdict::Retry { .. }));
        let _ = ledger.begin_attempt(task);
        ledger.account_loss(loss, 0.1);
        assert_eq!(ledger.settle_loss(task, job, loss, "boom"), LossVerdict::Exhausted);
        assert_eq!(ledger.failed().len(), 1);
        assert_eq!(ledger.failed()[0].attempts, 2);
        assert_eq!(ledger.stats().exhausted_tasks, 1);
        assert!(ledger.stats().reconciles(), "{}", ledger.stats());
    }

    #[test]
    fn crash_losses_retry_immediately_under_the_hard_cap() {
        let mut ledger = AttemptLedger::new();
        ledger.set_retry(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() });
        let task = TaskId::new(3);
        // Far past max_attempts, but crashes only hit the hard cap.
        for _ in 0..10 {
            let _ = ledger.begin_attempt(task);
            ledger.account_loss(AttemptLoss::Crash, 0.2);
            let verdict = ledger.settle_loss(task, JobId::new(0), AttemptLoss::Crash, "crash");
            assert_eq!(verdict, LossVerdict::Retry { delay: 0.0 });
        }
        assert!(ledger.stats().reconciles());
        assert_eq!(ledger.stats().crash_failures, 10);
    }

    #[test]
    fn backoff_is_deterministic_per_task() {
        let mut a = AttemptLedger::new();
        let mut b = AttemptLedger::new();
        for ledger in [&mut a, &mut b] {
            ledger.set_plan(FaultPlan::new(9));
            let _ = ledger.begin_attempt(TaskId::new(5));
        }
        let loss = AttemptLoss::Transient { panicked: false };
        let va = a.settle_loss(TaskId::new(5), JobId::new(0), loss, "x");
        let vb = b.settle_loss(TaskId::new(5), JobId::new(0), loss, "x");
        assert_eq!(va, vb, "same seed and task must yield the same backoff");
    }

    #[test]
    fn quarantine_counts_and_spares_the_last_worker() {
        let mut ledger = AttemptLedger::new();
        ledger.set_retry(RetryPolicy { quarantine_threshold: 2, ..RetryPolicy::default() });
        let w = WorkerId::new(4);
        assert!(!ledger.note_worker_fault(w, 4));
        assert!(ledger.note_worker_fault(w, 4), "second fault crosses the threshold");
        assert_eq!(ledger.stats().quarantined_workers, 1);
        let lone = WorkerId::new(9);
        assert!(!ledger.note_worker_fault(lone, 1));
        assert!(!ledger.note_worker_fault(lone, 1), "the last worker is never quarantined");
    }

    #[test]
    fn quarantine_still_fires_after_task_exhaustion() {
        // Interplay: a task exhausting its retry budget on a flaky worker
        // must not reset the worker's fault count — the worker still gets
        // quarantined once it crosses the threshold, even though the task
        // that pushed it there is already recorded as failed.
        let mut ledger = AttemptLedger::new();
        ledger.set_retry(RetryPolicy {
            max_attempts: 1,
            quarantine_threshold: 2,
            ..RetryPolicy::default()
        });
        let task = TaskId::new(0);
        let w = WorkerId::new(1);
        let loss = AttemptLoss::Transient { panicked: false };
        let _ = ledger.begin_attempt(task);
        ledger.account_loss(loss, 0.1);
        assert_eq!(ledger.settle_loss(task, JobId::new(0), loss, "boom"), LossVerdict::Exhausted);
        assert!(!ledger.note_worker_fault(w, 3), "first fault is under the threshold");
        // A second task faults on the same worker after the first task is
        // already exhausted.
        let task2 = TaskId::new(1);
        let _ = ledger.begin_attempt(task2);
        ledger.account_loss(loss, 0.1);
        assert_eq!(ledger.settle_loss(task2, JobId::new(0), loss, "boom"), LossVerdict::Exhausted);
        assert!(ledger.note_worker_fault(w, 3), "exhaustion does not shield the worker");
        assert_eq!(ledger.stats().quarantined_workers, 1);
        assert_eq!(ledger.stats().exhausted_tasks, 2);
        assert!(ledger.stats().reconciles(), "{}", ledger.stats());
    }

    #[test]
    fn speculation_budget_gates_fast_abort() {
        let mut ledger = AttemptLedger::new();
        assert!(!ledger.speculation_allowed(TaskId::new(0)), "disabled without fast-abort");
        ledger.set_fast_abort(FastAbort { multiplier: 2.0, min_samples: 1, max_speculations: 1 });
        assert!(ledger.speculation_allowed(TaskId::new(0)));
        ledger.note_speculation(TaskId::new(0));
        assert!(!ledger.speculation_allowed(TaskId::new(0)), "budget spent");
        assert!(ledger.fast_abort_threshold().is_none(), "mean not warm yet");
        ledger.record_success(TaskId::new(1), 2.0);
        let threshold = ledger.fast_abort_threshold().expect("warm after min_samples");
        assert!((threshold - 4.0).abs() < 1e-12);
    }
}
