//! Task specifications: the unit of work a worker executes.

use crate::{JobId, ResourceVector};

/// One task of a truth-discovery job.
///
/// The Dynamic Task Manager "divides the data of each TD job equally
/// between its tasks" (paper §IV-C4); `data_size` is the task's share (in
/// abstract data units — tweets, in the experiments).
///
/// # Examples
///
/// ```
/// use sstd_runtime::{JobId, TaskSpec};
///
/// let t = TaskSpec::new(JobId::new(0), 250.0);
/// assert_eq!(t.data_size(), 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    job: JobId,
    data_size: f64,
    requirements: ResourceVector,
    /// Optional application deadline (virtual seconds from submission of
    /// the batch) used for hit-rate reporting.
    deadline: Option<f64>,
}

impl TaskSpec {
    /// Creates a task for `job` carrying `data_size` units of data, with
    /// default resource requirements.
    ///
    /// # Panics
    ///
    /// Panics unless `data_size` is finite and non-negative.
    #[must_use]
    pub fn new(job: JobId, data_size: f64) -> Self {
        assert!(data_size.is_finite() && data_size >= 0.0, "data size must be non-negative");
        Self { job, data_size, requirements: ResourceVector::task_default(), deadline: None }
    }

    /// Sets explicit resource requirements.
    #[must_use]
    pub fn with_requirements(mut self, req: ResourceVector) -> Self {
        self.requirements = req;
        self
    }

    /// Attaches a soft deadline (virtual seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `deadline` is finite and positive.
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        assert!(deadline.is_finite() && deadline > 0.0, "deadline must be positive");
        self.deadline = Some(deadline);
        self
    }

    /// The owning TD job.
    #[must_use]
    pub const fn job(&self) -> JobId {
        self.job
    }

    /// The task's data share.
    #[must_use]
    pub const fn data_size(&self) -> f64 {
        self.data_size
    }

    /// Resource requirements.
    #[must_use]
    pub const fn requirements(&self) -> &ResourceVector {
        &self.requirements
    }

    /// The soft deadline, if any.
    #[must_use]
    pub const fn deadline(&self) -> Option<f64> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let t = TaskSpec::new(JobId::new(2), 10.0)
            .with_requirements(ResourceVector::new(2, 1024, 10))
            .with_deadline(5.0);
        assert_eq!(t.job(), JobId::new(2));
        assert_eq!(t.requirements().cores(), 2);
        assert_eq!(t.deadline(), Some(5.0));
    }

    #[test]
    fn zero_data_is_allowed() {
        let t = TaskSpec::new(JobId::new(0), 0.0);
        assert_eq!(t.data_size(), 0.0);
        assert_eq!(t.deadline(), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_data_panics() {
        let _ = TaskSpec::new(JobId::new(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_panics() {
        let _ = TaskSpec::new(JobId::new(0), 1.0).with_deadline(0.0);
    }
}
