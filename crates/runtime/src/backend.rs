//! The unified execution-substrate abstraction.
//!
//! [`ExecutionBackend`] is the contract shared by the virtual-clock
//! simulator ([`DesEngine`]) and the OS-thread backend
//! ([`crate::ThreadedEngine`]): submit prioritized tasks, tune the fault
//! machinery (plan / retry / fast-abort / worker count), drive time
//! forward, and drain an [`ExecutionReport`]. Everything above the runtime
//! — the DTM control loop, the evaluation experiments, the benchmarks —
//! is written against this trait, so either backend is a drop-in for the
//! other.
//!
//! [`JobBackend`] extends the contract with *real* work: tasks carry a
//! re-executable closure payload whose results are drained after the run.
//! The threaded engine executes payloads natively; [`SimBackend`] adapts
//! the DES by executing each completed task's payload at harvest time, so
//! the claims-as-tasks bridge (`sstd_core::distributed`) runs unchanged on
//! both substrates.

use crate::telemetry::SharedRecorder;
use crate::{
    DesEngine, ExecutionReport, FailedTask, FastAbort, FaultPlan, FaultStats, JobId, TaskId,
    TaskSpec,
};
use sstd_types::error::{BackendError, SstdError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A unit of real work attached to a task. `Fn` (not `FnOnce`) and shared,
/// so a faulted attempt can be re-executed.
pub type TaskPayload<R> = Arc<dyn Fn() -> R + Send + Sync + 'static>;

/// The common surface of an execution substrate: a Work Queue-style
/// master that accepts prioritized tasks, survives faults under a seeded
/// plan, and reports reconciled execution statistics.
///
/// The trait is object-safe: control loops can hold `&mut dyn
/// ExecutionBackend` and drive simulation or real threads identically.
/// Time is backend-native — virtual seconds in the DES, scaled wall-clock
/// seconds in the threaded engine — but the *semantics* of every method
/// match across backends (same retry policy, same fault accounting, same
/// completed-task multiset under a given [`FaultPlan`]).
///
/// # Examples
///
/// ```
/// use sstd_runtime::{Cluster, DesEngine, ExecutionBackend, ExecutionModel, JobId, TaskSpec};
///
/// fn drive(backend: &mut dyn ExecutionBackend) -> usize {
///     for _ in 0..4 {
///         backend.submit(TaskSpec::new(JobId::new(0), 100.0));
///     }
///     backend.set_job_priority(JobId::new(0), 2.0);
///     backend.run_to_completion().completed.len()
/// }
///
/// let mut des = DesEngine::new(Cluster::homogeneous(2, 1.0), ExecutionModel::default(), 2);
/// assert_eq!(drive(&mut des), 4, "all tasks complete through the trait object");
/// ```
pub trait ExecutionBackend {
    /// Submits a task for execution, returning its identity.
    fn submit(&mut self, spec: TaskSpec) -> TaskId;

    /// Sets a job's priority (Local Control Knob). Higher runs earlier.
    fn set_job_priority(&mut self, job: JobId, priority: f64);

    /// Elastically resizes the worker pool (Global Control Knob).
    fn set_num_workers(&mut self, n: usize);

    /// Workers currently accepting tasks.
    fn num_workers(&self) -> usize;

    /// Pending (not yet started) tasks, including those waiting out a
    /// retry backoff.
    fn pending(&self) -> usize;

    /// Pending tasks of one job — the progress signal the PID controller
    /// samples.
    fn pending_of(&self, job: JobId) -> usize;

    /// Task attempts currently executing.
    fn running(&self) -> usize;

    /// The backend's current time in backend-native seconds.
    fn now(&self) -> f64;

    /// Drives the backend until its clock reaches `t` (backend-native
    /// seconds), performing any supervision due in the window.
    fn run_until(&mut self, t: f64);

    /// Runs until every submitted task has completed or terminally
    /// failed, returning the execution report.
    fn run_to_completion(&mut self) -> ExecutionReport;

    /// Schedules a worker eviction (HTCondor preemption) at time `t`.
    fn schedule_eviction(&mut self, t: f64);

    /// Installs a deterministic fault-injection schedule.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// Sets the retry/backoff/quarantine policy.
    fn set_retry_policy(&mut self, retry: crate::RetryPolicy);

    /// Enables straggler fast-abort.
    fn set_fast_abort(&mut self, fast_abort: FastAbort);

    /// Tasks re-queued after losing an attempt (any cause).
    fn retries(&self) -> u64;

    /// Failed-attempt accounting for the run so far.
    fn fault_stats(&self) -> FaultStats;

    /// Tasks dropped after exhausting their retry budget.
    fn failed(&self) -> Vec<FailedTask>;

    /// Installs (or, with `None`, removes) a timeline [`Recorder`]: the
    /// backend emits one [`TimelineEvent`] per task-lifecycle step —
    /// queued, dispatched, failed/evicted, exhausted, completed — with
    /// worker ids and backend-native timestamps. Recording defaults to
    /// off and costs one branch per event site when disabled.
    ///
    /// [`Recorder`]: crate::telemetry::Recorder
    /// [`TimelineEvent`]: crate::telemetry::TimelineEvent
    fn set_recorder(&mut self, recorder: Option<SharedRecorder>);

    /// A short human-readable backend label (for experiment output).
    fn backend_name(&self) -> &'static str;
}

/// An [`ExecutionBackend`] whose tasks carry real payloads: each submitted
/// task owns a re-executable closure, and the `(job, result)` pairs of
/// completed tasks are drained after the run. This is the surface the
/// claims-as-tasks bridge builds on.
pub trait JobBackend<R>: ExecutionBackend {
    /// Submits a task whose attempts execute `work`; the result of the
    /// winning attempt is collected for [`drain_results`].
    ///
    /// # Errors
    ///
    /// [`SstdError::Backend`] when the backend cannot honor the
    /// submission — e.g. the spec's resource requirements fit no node of
    /// the simulated cluster, which would otherwise queue the task
    /// forever.
    ///
    /// [`drain_results`]: JobBackend::drain_results
    fn submit_job(&mut self, spec: TaskSpec, work: TaskPayload<R>) -> Result<TaskId, SstdError>;

    /// Drains the `(job, result)` pairs collected so far, in completion
    /// order.
    fn drain_results(&mut self) -> Vec<(JobId, R)>;
}

/// Adapts the [`DesEngine`] into a [`JobBackend`]: scheduling, faults and
/// retries play out under the virtual clock, and each task's payload is
/// executed exactly once — when the simulator records the task's
/// completion — so results match a real run while wasted (faulted)
/// attempts cost only virtual time.
pub struct SimBackend<R> {
    des: DesEngine,
    payloads: BTreeMap<TaskId, TaskPayload<R>>,
    results: Vec<(JobId, R)>,
    /// Index into `des.completed()` up to which payloads have run.
    harvested: usize,
}

impl<R> std::fmt::Debug for SimBackend<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBackend")
            .field("des", &self.des)
            .field("pending_payloads", &self.payloads.len())
            .field("harvested", &self.harvested)
            .finish_non_exhaustive()
    }
}

impl<R> SimBackend<R> {
    /// Wraps a configured simulator.
    #[must_use]
    pub fn new(des: DesEngine) -> Self {
        Self { des, payloads: BTreeMap::new(), results: Vec::new(), harvested: 0 }
    }

    /// The wrapped simulator.
    #[must_use]
    pub const fn des(&self) -> &DesEngine {
        &self.des
    }

    /// Executes the payloads of tasks the simulator completed since the
    /// last harvest, in completion order.
    fn harvest(&mut self) {
        while self.harvested < self.des.completed().len() {
            let done = self.des.completed()[self.harvested];
            self.harvested += 1;
            if let Some(work) = self.payloads.remove(&done.task) {
                self.results.push((done.job, work()));
            }
        }
    }
}

impl<R> ExecutionBackend for SimBackend<R> {
    fn submit(&mut self, spec: TaskSpec) -> TaskId {
        self.des.submit(spec)
    }
    fn set_job_priority(&mut self, job: JobId, priority: f64) {
        self.des.set_job_priority(job, priority);
    }
    fn set_num_workers(&mut self, n: usize) {
        self.des.set_num_workers(n);
    }
    fn num_workers(&self) -> usize {
        self.des.num_workers()
    }
    fn pending(&self) -> usize {
        self.des.pending()
    }
    fn pending_of(&self, job: JobId) -> usize {
        self.des.pending_of(job)
    }
    fn running(&self) -> usize {
        self.des.running()
    }
    fn now(&self) -> f64 {
        self.des.now()
    }
    fn run_until(&mut self, t: f64) {
        self.des.run_until(t);
        self.harvest();
    }
    fn run_to_completion(&mut self) -> ExecutionReport {
        let report = self.des.run_to_completion();
        self.harvest();
        report
    }
    fn schedule_eviction(&mut self, t: f64) {
        self.des.schedule_eviction(t);
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.des.set_fault_plan(plan);
    }
    fn set_retry_policy(&mut self, retry: crate::RetryPolicy) {
        self.des.set_retry_policy(retry);
    }
    fn set_fast_abort(&mut self, fast_abort: FastAbort) {
        self.des.set_fast_abort(fast_abort);
    }
    fn retries(&self) -> u64 {
        self.des.retries()
    }
    fn fault_stats(&self) -> FaultStats {
        self.des.fault_stats()
    }
    fn failed(&self) -> Vec<FailedTask> {
        self.des.failed()
    }
    fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.des.set_recorder(recorder);
    }
    fn backend_name(&self) -> &'static str {
        "des"
    }
}

impl<R> JobBackend<R> for SimBackend<R> {
    fn submit_job(&mut self, spec: TaskSpec, work: TaskPayload<R>) -> Result<TaskId, SstdError> {
        // A spec that fits no node would sit in the pool forever (the DES
        // has no node churn that could ever place it): refuse it up front
        // instead of hanging `run_to_completion`.
        let fits_somewhere = self
            .des
            .cluster()
            .nodes()
            .iter()
            .any(|node| spec.requirements().fits_in(node.capacity()));
        if !fits_somewhere {
            return Err(BackendError::new(
                "submit",
                format!(
                    "task requirements {:?} fit no node of the simulated cluster",
                    spec.requirements()
                ),
            )
            .into());
        }
        let id = self.des.submit(spec);
        self.payloads.insert(id, work);
        Ok(id)
    }

    fn drain_results(&mut self) -> Vec<(JobId, R)> {
        self.harvest();
        std::mem::take(&mut self.results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ExecutionModel, RetryPolicy};

    fn des(workers: usize) -> DesEngine {
        DesEngine::new(
            Cluster::homogeneous(workers, 1.0),
            ExecutionModel::new(0.0, 0.01, 0.01),
            workers,
        )
    }

    #[test]
    fn sim_backend_executes_each_payload_exactly_once_despite_faults() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut backend = SimBackend::new(des(2));
        backend.set_fault_plan(FaultPlan::new(11).with_transient_rate(0.3));
        backend.set_retry_policy(RetryPolicy::default());
        let calls = Arc::new(AtomicU32::new(0));
        for i in 0..20u32 {
            let calls = Arc::clone(&calls);
            backend
                .submit_job(
                    TaskSpec::new(JobId::new(i % 2), 100.0),
                    Arc::new(move || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        i
                    }),
                )
                .expect("spec fits the cluster");
        }
        let report = backend.run_to_completion();
        assert_eq!(report.completed.len(), 20);
        assert!(report.faults.transient_failures > 0, "{}", report.faults);
        let results = backend.drain_results();
        assert_eq!(results.len(), 20);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            20,
            "payloads run once per completion, not per attempt"
        );
    }

    #[test]
    fn harvest_follows_incremental_run_until() {
        let mut backend = SimBackend::new(des(1));
        for i in 0..4u32 {
            backend
                .submit_job(TaskSpec::new(JobId::new(0), 100.0), Arc::new(move || i))
                .expect("spec fits the cluster");
        }
        backend.run_until(2.5); // 1s per task on one worker: 2 done
        assert_eq!(backend.drain_results().len(), 2);
        let _ = backend.run_to_completion();
        assert_eq!(backend.drain_results().len(), 2, "remaining two harvested");
    }

    #[test]
    fn oversized_submissions_are_refused_not_stranded() {
        use crate::ResourceVector;
        let mut backend: SimBackend<u32> = SimBackend::new(des(2));
        let spec = TaskSpec::new(JobId::new(0), 100.0).with_requirements(ResourceVector::new(
            1024,
            u64::MAX,
            u64::MAX,
        ));
        let err = backend.submit_job(spec, Arc::new(|| 1)).expect_err("no node can fit this");
        assert!(err.as_backend().is_some(), "{err}");
        assert!(err.to_string().contains("fit no node"), "{err}");
        // The backend stays usable for sane work.
        backend
            .submit_job(TaskSpec::new(JobId::new(0), 100.0), Arc::new(|| 2))
            .expect("normal spec fits");
        assert_eq!(backend.run_to_completion().completed.len(), 1);
    }

    #[test]
    fn backend_names_distinguish_substrates() {
        let backend: SimBackend<()> = SimBackend::new(des(1));
        assert_eq!(backend.backend_name(), "des");
    }
}
