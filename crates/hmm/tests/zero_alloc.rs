//! Counting-allocator regression test: after warm-up, the `_into`
//! kernels must not touch the heap at all.
//!
//! The library crate forbids `unsafe`; this integration test is its own
//! crate, so it can install a counting [`GlobalAlloc`] to observe every
//! allocation the kernels make. The counter is a const-initialized
//! thread-local `Cell` accessed through `try_with`, so the hook itself
//! never allocates (and never recurses through TLS initialization).

use sstd_hmm::{
    forward_backward_into, viterbi_into, BaumWelch, CategoricalEmission, DecodeWorkspace,
    EmWorkspace, Hmm, SymmetricGaussianEmission,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter update is a
// plain thread-local Cell write with no allocation or unwinding.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_so_far() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Runs `hot` once after `warmup` has sized every buffer, and returns how
/// many heap allocations the hot pass performed.
fn allocations_in(mut hot: impl FnMut()) -> u64 {
    let before = allocations_so_far();
    hot();
    allocations_so_far() - before
}

#[test]
fn em_and_decode_are_allocation_free_after_warmup_gaussian() {
    let obs: Vec<f64> = (0..256)
        .map(|t| {
            let sign = if (t / 32) % 2 == 0 { 1.0 } else { -1.0 };
            sign * (3.0 + 0.25 * ((t % 5) as f64 - 2.0))
        })
        .collect();
    let mut model = Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        SymmetricGaussianEmission::new(2.0, 1.5).unwrap(),
    )
    .unwrap();
    // tolerance 0 never converges early, so every warm iteration runs the
    // full E-step + in-place M-step.
    let trainer = BaumWelch::default().max_iterations(4).tolerance(0.0);
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();

    // Warm-up: size every buffer to this problem shape.
    let _ = trainer.train_into(&mut model, &obs, &mut em);
    let _ = forward_backward_into(&model, &obs, &mut em);
    let _ = viterbi_into(&model, &obs, &mut decode);

    let n = allocations_in(|| {
        for _ in 0..10 {
            let _ = forward_backward_into(&model, &obs, &mut em);
            let _ = viterbi_into(&model, &obs, &mut decode);
            let _ = trainer.train_into(&mut model, &obs, &mut em);
        }
    });
    assert_eq!(n, 0, "warm Gaussian EM/decode iterations must not allocate ({n} allocations)");
}

#[test]
fn em_and_decode_are_allocation_free_after_warmup_categorical() {
    let obs: Vec<usize> =
        (0..200).map(|t| usize::from((t / 25) % 2 == (t % 3 == 0) as usize)).collect();
    let mut model = Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.8, 0.2], vec![0.2, 0.8]],
        CategoricalEmission::new(vec![vec![0.7, 0.3], vec![0.25, 0.75]]).unwrap(),
    )
    .unwrap();
    let trainer = BaumWelch::default().max_iterations(4).tolerance(0.0);
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();

    let _ = trainer.train_into(&mut model, &obs, &mut em);
    let _ = forward_backward_into(&model, &obs, &mut em);
    let _ = viterbi_into(&model, &obs, &mut decode);

    let n = allocations_in(|| {
        for _ in 0..10 {
            let _ = forward_backward_into(&model, &obs, &mut em);
            let _ = viterbi_into(&model, &obs, &mut decode);
            let _ = trainer.train_into(&mut model, &obs, &mut em);
        }
    });
    assert_eq!(n, 0, "warm categorical EM/decode iterations must not allocate ({n} allocations)");
}

#[test]
fn workspaces_grow_then_stop_allocating_across_shapes() {
    // A workspace that has seen the *largest* shape must absorb smaller
    // shapes without further allocation.
    let model = Hmm::new(
        vec![0.5, 0.5],
        vec![vec![0.9, 0.1], vec![0.1, 0.9]],
        SymmetricGaussianEmission::new(2.0, 1.0).unwrap(),
    )
    .unwrap();
    let long: Vec<f64> = (0..512).map(|t| if t % 2 == 0 { 2.0 } else { -2.0 }).collect();
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();
    let _ = forward_backward_into(&model, &long, &mut em);
    let _ = viterbi_into(&model, &long, &mut decode);

    let n = allocations_in(|| {
        for len in [1usize, 7, 63, 256, 511] {
            let _ = forward_backward_into(&model, &long[..len], &mut em);
            let _ = viterbi_into(&model, &long[..len], &mut decode);
        }
    });
    assert_eq!(n, 0, "shrinking the problem shape must reuse the grown buffers");
}
