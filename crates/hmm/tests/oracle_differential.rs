//! Differential + metamorphic properties of the HMM machinery against
//! the brute-force enumeration oracles, on seeded generated cases.
//!
//! Any failure prints a `TESTKIT_SEED=… TESTKIT_CASES=1` line that
//! replays the exact (already minimized) counterexample.

use sstd_hmm::{forward_backward, viterbi, BaumWelch, CategoricalEmission, Hmm};
use sstd_testkit::{check, domain, gens, oracle, Gen};

/// Number of cases per differential suite (overridable via
/// `TESTKIT_CASES`).
const CASES: usize = 1_000;

#[test]
fn viterbi_is_score_optimal_vs_enumeration() {
    check("viterbi_is_score_optimal_vs_enumeration", CASES, &domain::hmm_case(8), |case| {
        let hmm = case.hmm();
        let got = viterbi(&hmm, &case.obs);
        let best = oracle::hmm::best_path(&hmm, &case.obs);
        let got_score = oracle::hmm::log_joint(&hmm, &case.obs, &got);
        let best_score = oracle::hmm::log_joint(&hmm, &case.obs, &best);
        if got_score < best_score - 1e-9 {
            return Err(format!(
                "DP path {got:?} (score {got_score}) is beaten by {best:?} (score {best_score})"
            ));
        }
        // When the optimum is unique by a clear margin, the DP must also
        // return the oracle's exact path, not merely an equal-scoring one.
        if (got_score - best_score).abs() <= 1e-9 && got != best {
            let margin_unique = {
                let n = hmm.num_states();
                let mut better_or_equal = 0usize;
                let mut stack: Vec<Vec<usize>> = vec![vec![]];
                for _ in 0..case.obs.len() {
                    let mut next = Vec::new();
                    for s in &stack {
                        for i in 0..n {
                            let mut e = s.clone();
                            e.push(i);
                            next.push(e);
                        }
                    }
                    stack = next;
                }
                for s in &stack {
                    if oracle::hmm::log_joint(&hmm, &case.obs, s) >= best_score - 1e-9 {
                        better_or_equal += 1;
                    }
                }
                better_or_equal == 1
            };
            if margin_unique {
                return Err(format!("unique optimum {best:?} but DP returned {got:?}"));
            }
        }
        Ok(())
    });
}

#[test]
fn viterbi_matches_oracle_on_long_two_state_chains() {
    // The oracle's advertised envelope: all 2^T sequences for T <= 12.
    let gen: Gen<(Vec<usize>, f64)> =
        gens::pair(gens::vec_of(gens::usize_in(0, 1), 1, 12), gens::f64_in(0.55, 0.95));
    check("viterbi_matches_oracle_on_long_two_state_chains", 300, &gen, |(obs, stay)| {
        let hmm = Hmm::new(
            vec![0.5, 0.5],
            vec![vec![*stay, 1.0 - stay], vec![1.0 - stay, *stay]],
            CategoricalEmission::new(vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap(),
        )
        .unwrap();
        let got = viterbi(&hmm, obs);
        let best = oracle::hmm::best_path(&hmm, obs);
        let got_score = oracle::hmm::log_joint(&hmm, obs, &got);
        let best_score = oracle::hmm::log_joint(&hmm, obs, &best);
        if (got_score - best_score).abs() > 1e-9 {
            Err(format!("T={}: DP score {got_score} != oracle score {best_score}", obs.len()))
        } else {
            Ok(())
        }
    });
}

#[test]
fn forward_likelihood_matches_direct_sum() {
    check("forward_likelihood_matches_direct_sum", CASES, &domain::hmm_case(8), |case| {
        let hmm = case.hmm();
        let scaled = forward_backward(&hmm, &case.obs).log_likelihood;
        let direct = oracle::hmm::log_likelihood(&hmm, &case.obs);
        let tol = 1e-8 * (1.0 + direct.abs());
        if (scaled - direct).abs() > tol {
            Err(format!("scaled forward ll {scaled} != direct-sum ll {direct}"))
        } else {
            Ok(())
        }
    });
}

#[test]
fn posteriors_match_enumeration_and_normalize() {
    check("posteriors_match_enumeration_and_normalize", CASES, &domain::hmm_case(8), |case| {
        let hmm = case.hmm();
        let gamma = forward_backward(&hmm, &case.obs).gamma;
        let expected = oracle::hmm::posteriors(&hmm, &case.obs);
        for (t, (got, want)) in gamma.iter().zip(&expected).enumerate() {
            let row_sum: f64 = got.iter().sum();
            if (row_sum - 1.0).abs() > 1e-9 {
                return Err(format!("gamma[{t}] sums to {row_sum}"));
            }
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                if (g - w).abs() > 1e-8 {
                    return Err(format!("gamma[{t}][{i}] = {g}, enumeration says {w}"));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn baum_welch_likelihood_is_monotone_and_rows_stay_stochastic() {
    check(
        "baum_welch_likelihood_is_monotone_and_rows_stay_stochastic",
        CASES,
        &domain::hmm_case(8),
        |case| {
            let mut model = case.hmm();
            let mut prev = f64::NEG_INFINITY;
            for step in 0..5 {
                let out = BaumWelch::default().max_iterations(1).train(model, &case.obs);
                // Metamorphic: each EM iteration may not decrease the
                // data log-likelihood (up to the probability floor).
                if out.log_likelihood < prev - 1e-6 {
                    return Err(format!(
                        "EM step {step} decreased the likelihood: {prev} -> {}",
                        out.log_likelihood
                    ));
                }
                prev = out.log_likelihood;
                model = out.model;
                // Normalization invariants after every update.
                let init_sum: f64 = model.init().iter().sum();
                if (init_sum - 1.0).abs() > 1e-9 {
                    return Err(format!("step {step}: init sums to {init_sum}"));
                }
                for (i, row) in model.trans().iter().enumerate() {
                    let s: f64 = row.iter().sum();
                    if (s - 1.0).abs() > 1e-9 {
                        return Err(format!("step {step}: trans row {i} sums to {s}"));
                    }
                }
                let m = model.emission().num_symbols();
                for i in 0..model.num_states() {
                    let s: f64 = (0..m).map(|k| model.emission().prob(i, k)).sum();
                    if (s - 1.0).abs() > 1e-9 {
                        return Err(format!("step {step}: emission row {i} sums to {s}"));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn trained_model_never_scores_below_its_start() {
    check("trained_model_never_scores_below_its_start", 300, &domain::hmm_case(8), |case| {
        let initial = case.hmm();
        let before = forward_backward(&initial, &case.obs).log_likelihood;
        let out = BaumWelch::default().max_iterations(10).train(initial, &case.obs);
        let after = forward_backward(&out.model, &case.obs).log_likelihood;
        if after < before - 1e-6 {
            Err(format!("training regressed the likelihood: {before} -> {after}"))
        } else {
            Ok(())
        }
    });
}
