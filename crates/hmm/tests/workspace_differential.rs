//! Differential properties of the zero-allocation `_into` kernels
//! against their allocating wrappers, on seeded generated cases.
//!
//! One `EmWorkspace`/`DecodeWorkspace` pair is reused across *all* cases
//! deliberately: the property under test is not just "same numbers on a
//! fresh arena" but "a workspace dirtied by an arbitrary previous case
//! (different shape included) never leaks into the next result". The
//! contract is bit-equality — the workspace kernels are refactorings of
//! the same arithmetic.
//!
//! Any failure prints a `TESTKIT_SEED=… TESTKIT_CASES=1` line that
//! replays the exact (already minimized) counterexample.

use sstd_hmm::{BaumWelch, DecodeWorkspace, EmWorkspace};
use sstd_testkit::{check, domain, oracle};

/// Number of cases per differential suite (overridable via
/// `TESTKIT_CASES`).
const CASES: usize = 1_000;

#[test]
fn workspace_kernels_are_bit_identical_to_allocating_wrappers() {
    let mut em = EmWorkspace::new();
    let mut decode = DecodeWorkspace::new();
    check(
        "workspace_kernels_are_bit_identical_to_allocating_wrappers",
        CASES,
        &domain::hmm_case(16),
        |case| oracle::check_workspace_kernels(&case.hmm(), &case.obs, &mut em, &mut decode),
    );
}

#[test]
fn workspace_training_is_bit_identical_to_allocating_training() {
    let mut em = EmWorkspace::new();
    // tolerance 0 forces the full iteration budget, so every M-step path
    // (π, A, and emission re-estimation) runs on every case.
    let trainer = BaumWelch::default().max_iterations(8).tolerance(0.0);
    check(
        "workspace_training_is_bit_identical_to_allocating_training",
        CASES,
        &domain::hmm_case(12),
        |case| oracle::check_workspace_training(&trainer, &case.hmm(), &case.obs, &mut em),
    );
}
